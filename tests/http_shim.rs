//! Property tests for the `httpd` shim's HTTP/1.1 parser: arbitrary header
//! sets round-trip through serialize → parse, a request split at **every**
//! byte boundary is `Partial` (never `Invalid`, never a panic — the
//! restartable-parsing contract the server's read loop depends on), and
//! oversized or malformed request lines are rejected with `Invalid` (which
//! the server maps to 400) rather than a crash.

use httpd::{parse_request, Method, Parse, Request};
use proptest::prelude::*;

/// Builds a header name from draw bytes: `X-` plus token characters, so the
/// generated names never collide with framing headers (`Content-Length`,
/// `Transfer-Encoding`, `Connection`).
fn header_name(bytes: &[u8]) -> String {
    const TOKEN: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.!#$%&'*+^`|~";
    let mut name = String::from("X-");
    for &b in bytes {
        name.push(TOKEN[b as usize % TOKEN.len()] as char);
    }
    name
}

/// Builds a header value from draw bytes: visible ASCII only, so the value
/// survives the parser's whitespace trimming unchanged.
fn header_value(bytes: &[u8]) -> String {
    bytes.iter().map(|&b| (0x21 + b % (0x7f - 0x21)) as char).collect()
}

fn request_with_headers(headers: &[(String, String)], body: &[u8]) -> Request {
    let mut request = Request::new(Method::Get, "/info");
    request.headers = headers.to_vec();
    request.body = body.to_vec();
    request
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary header sets round-trip: serialize → parse preserves names,
    /// values, order and the body.
    #[test]
    fn arbitrary_header_sets_round_trip(
        name_draws in prop::collection::vec(prop::collection::vec(0u8..255, 1..12), 0..8),
        value_draws in prop::collection::vec(prop::collection::vec(0u8..255, 0..24), 0..8),
        body in prop::collection::vec(0u8..255, 0..64),
    ) {
        let headers: Vec<(String, String)> = name_draws
            .iter()
            .zip(value_draws.iter().chain(std::iter::repeat(&Vec::new())))
            .map(|(n, v)| (header_name(n), header_value(v)))
            .collect();
        let request = request_with_headers(&headers, &body);
        let bytes = request.to_bytes();

        match parse_request(&bytes) {
            Parse::Complete { message, consumed } => {
                prop_assert_eq!(consumed, bytes.len());
                prop_assert_eq!(&message.method, &Method::Get);
                prop_assert_eq!(message.target.as_str(), "/info");
                prop_assert_eq!(&message.body, &body);
                // The serializer appends Content-Length when a body is
                // present; everything before it is our headers, in order.
                prop_assert_eq!(&message.headers[..headers.len()], &headers[..]);
                for (name, value) in &headers {
                    prop_assert_eq!(message.header(name), Some(value.as_str()));
                    prop_assert_eq!(message.header(&name.to_uppercase()), Some(value.as_str()));
                }
            }
            other => prop_assert!(false, "round trip failed: {:?}", other),
        }
    }

    /// A valid request torn at every byte boundary parses as `Partial` for
    /// every proper prefix — never `Invalid`, never `Complete`, never a
    /// panic. This is exactly the contract that lets the server re-parse an
    /// accumulating buffer after each `read()`.
    #[test]
    fn torn_reads_are_partial_at_every_split_point(
        name_draws in prop::collection::vec(prop::collection::vec(0u8..255, 1..8), 0..4),
        body in prop::collection::vec(0u8..255, 0..32),
    ) {
        let headers: Vec<(String, String)> = name_draws
            .iter()
            .enumerate()
            .map(|(i, n)| (header_name(n), format!("value-{i}")))
            .collect();
        let request = request_with_headers(&headers, &body);
        let bytes = request.to_bytes();

        for split in 0..bytes.len() {
            match parse_request(&bytes[..split]) {
                Parse::Partial => {}
                Parse::Complete { .. } => {
                    prop_assert!(false, "complete at {split} of {}", bytes.len());
                }
                Parse::Invalid(error) => {
                    prop_assert!(false, "invalid at {split} of {}: {error}", bytes.len());
                }
            }
        }
        prop_assert!(matches!(parse_request(&bytes), Parse::Complete { .. }));
    }

    /// Oversized request lines are rejected as `Invalid` — both once the
    /// full line is buffered and already from the still-unterminated prefix
    /// beyond the limit (so a hostile peer cannot balloon the buffer).
    #[test]
    fn oversized_request_lines_are_rejected(excess in 1usize..2048) {
        let target: String = std::iter::once('/')
            .chain(std::iter::repeat('a').take(httpd::parser::MAX_START_LINE + excess))
            .collect();
        let bytes = Request::new(Method::Get, &target).to_bytes();
        prop_assert!(matches!(parse_request(&bytes), Parse::Invalid(_)));
        // The unterminated prefix (no newline yet) is already rejected.
        let head_only = &bytes[..bytes.len().min(httpd::parser::MAX_START_LINE + excess)];
        prop_assert!(matches!(parse_request(head_only), Parse::Invalid(_)));
    }

    /// Arbitrary byte soup never panics the parser: every outcome is one of
    /// the three parse states.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..255, 0..512)) {
        match parse_request(&bytes) {
            Parse::Partial | Parse::Complete { .. } | Parse::Invalid(_) => {}
        }
        // Terminating the soup as a head section must still not panic.
        let mut terminated = bytes.clone();
        terminated.extend_from_slice(b"\r\n\r\n");
        match parse_request(&terminated) {
            Parse::Partial | Parse::Complete { .. } | Parse::Invalid(_) => {}
        }
    }
}

#[test]
fn malformed_request_lines_are_invalid_not_partial() {
    for bad in [
        "GET\r\n\r\n",
        "GET  /two-spaces HTTP/1.1\r\n\r\n",
        "GET / HTTP/9.9\r\n\r\n",
        "G\u{7f}T / HTTP/1.1\r\n\r\n",
        "GET relative HTTP/1.1\r\n\r\n",
    ] {
        assert!(
            matches!(parse_request(bad.as_bytes()), Parse::Invalid(_)),
            "accepted {bad:?}"
        );
    }
}

#[test]
fn too_many_headers_are_rejected() {
    let mut text = String::from("GET / HTTP/1.1\r\n");
    for i in 0..httpd::parser::MAX_HEADERS + 1 {
        text.push_str(&format!("X-H{i}: v\r\n"));
    }
    text.push_str("\r\n");
    assert!(matches!(parse_request(text.as_bytes()), Parse::Invalid(_)));
}
