//! Property tests of the host-sharded programme partition
//! (`docs/SHARDING.md`):
//!
//! (a) the union of the per-host deltas, replayed from epoch 0, equals the
//!     global programme at every timestep,
//! (b) every cross-host pair appears in exactly its two endpoint shards and
//!     every same-host pair in exactly one, and
//! (c) the partition is invariant under host-count re-pinning of the
//!     round-robin placement: it is a pure function of the nodes' stable pin
//!     indices modulo the host count, and relabelling the hosts permutes the
//!     per-host deltas accordingly.

use celestial::pipeline::PipelineMode;
use celestial::Coordinator;
use celestial_constellation::{BoundingBox, Constellation, GroundStation, Shell};
use celestial_netem::shard::{PlacementPolicy, ShardPlan};
use celestial_netem::ProgrammeDelta;
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::ids::NodeId;
use celestial_types::time::SimDuration;
use celestial_types::{Bandwidth, Latency};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn constellation() -> Constellation {
    Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation")
}

fn sharded_coordinator(hosts: u32, interval_s: f64) -> Coordinator {
    Coordinator::with_options(
        constellation(),
        SimDuration::from_secs_f64(interval_s),
        PipelineMode::Synchronous,
        Some(ShardPlan::new(hosts)),
    )
}

type Programme = BTreeMap<(NodeId, NodeId), (Latency, Bandwidth)>;

fn replay(map: &mut Programme, delta: &ProgrammeDelta) {
    for pair in delta.added.iter().chain(&delta.changed) {
        map.insert((pair.a, pair.b), (pair.latency, pair.bandwidth));
    }
    for pair in &delta.removed {
        map.remove(pair);
    }
}

/// Rebuilds the expected per-host partition of a global delta from nothing
/// but the placement pinning — the independent reference the store's
/// in-walk partition is checked against.
fn partition_reference(delta: &ProgrammeDelta, hosts: u32) -> Vec<ProgrammeDelta> {
    let plan = ShardPlan::new(hosts);
    let mut out: Vec<ProgrammeDelta> = (0..hosts)
        .map(|_| ProgrammeDelta {
            epoch: delta.epoch,
            ..ProgrammeDelta::default()
        })
        .collect();
    let shards = |a: NodeId, b: NodeId| {
        let (ha, hb) = plan.shards_of_pair(a, b);
        (ha.index(), hb.map(|h| h.index()))
    };
    for pair in &delta.added {
        let (ha, hb) = shards(pair.a, pair.b);
        out[ha].added.push(*pair);
        if let Some(hb) = hb {
            out[hb].added.push(*pair);
        }
    }
    for pair in &delta.changed {
        let (ha, hb) = shards(pair.a, pair.b);
        out[ha].changed.push(*pair);
        if let Some(hb) = hb {
            out[hb].changed.push(*pair);
        }
    }
    for &(a, b) in &delta.removed {
        let (ha, hb) = shards(a, b);
        out[ha].removed.push((a, b));
        if let Some(hb) = hb {
            out[hb].removed.push((a, b));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Property (a): replaying every host's delta stream from epoch 0 and
    /// taking the union reproduces the global programme at every timestep,
    /// for arbitrary host counts, start times and update intervals — and the
    /// mirrored copies of a cross-host pair always agree on the programmed
    /// values.
    #[test]
    fn union_of_host_replays_equals_the_global_programme(
        hosts in 1u32..9,
        t0 in 0.0f64..2000.0,
        interval in 0.5f64..10.0,
        steps in 3usize..6,
    ) {
        let mut coordinator = sharded_coordinator(hosts, interval);
        let mut global: Programme = BTreeMap::new();
        let mut per_host: Vec<Programme> = vec![BTreeMap::new(); hosts as usize];
        for step in 0..steps {
            coordinator.update(t0 + step as f64 * interval).expect("update");
            replay(&mut global, coordinator.programme_delta());
            let host_deltas = coordinator.host_deltas();
            prop_assert_eq!(host_deltas.len(), hosts as usize);
            for (replayed, delta) in per_host.iter_mut().zip(host_deltas) {
                replay(replayed, delta);
            }
            let mut union: Programme = BTreeMap::new();
            for replayed in &per_host {
                for (&pair, &value) in replayed {
                    if let Some(existing) = union.insert(pair, value) {
                        prop_assert_eq!(
                            existing, value,
                            "mirrored copies of {:?} disagree at step {}", pair, step
                        );
                    }
                }
            }
            prop_assert_eq!(&union, &global, "union diverged at step {}", step);
        }
    }
}

/// Property (b): every entry of the global delta appears in exactly its
/// endpoint shards — twice when the endpoints live on different hosts, once
/// when they share one — and shards never contain a foreign pair.
#[test]
fn every_pair_lands_in_exactly_its_endpoint_shards() {
    let hosts = 4u32;
    let plan = ShardPlan::new(hosts);
    let mut coordinator = sharded_coordinator(hosts, 1.0);
    let mut cross_seen = 0usize;
    let mut local_seen = 0usize;
    for step in 0..25 {
        coordinator.update(f64::from(step)).expect("update");
        let global = coordinator.programme_delta();
        let host_deltas = coordinator.host_deltas();

        // Count occurrences of every entry across all shards.
        let mut count: BTreeMap<(NodeId, NodeId, u8), usize> = BTreeMap::new();
        for (host, delta) in host_deltas.iter().enumerate() {
            for pair in &delta.added {
                let (ha, hb) = plan.shards_of_pair(pair.a, pair.b);
                assert!(
                    ha.index() == host || hb.map(|h| h.index()) == Some(host),
                    "shard {host} holds foreign pair {}-{}", pair.a, pair.b
                );
                *count.entry((pair.a, pair.b, 0)).or_default() += 1;
            }
            for pair in &delta.changed {
                *count.entry((pair.a, pair.b, 1)).or_default() += 1;
            }
            for &(a, b) in &delta.removed {
                *count.entry((a, b, 2)).or_default() += 1;
            }
        }
        let mut check = |a: NodeId, b: NodeId, kind: u8| {
            let expected = if plan.host_of(a) == plan.host_of(b) {
                local_seen += 1;
                1
            } else {
                cross_seen += 1;
                2
            };
            assert_eq!(
                count.remove(&(a, b, kind)),
                Some(expected),
                "pair {a}-{b} (kind {kind}) multiplicity at step {step}"
            );
        };
        for pair in &global.added {
            check(pair.a, pair.b, 0);
        }
        for pair in &global.changed {
            check(pair.a, pair.b, 1);
        }
        for &(a, b) in &global.removed {
            check(a, b, 2);
        }
        assert!(count.is_empty(), "shards contain entries absent from the global delta: {count:?}");
    }
    // The constellation exercised both classes, so the test wasn't vacuous.
    assert!(cross_seen > 0, "no cross-host pairs seen");
    assert!(local_seen > 0, "no same-host pairs seen");
}

/// Property (c): the partition is a pure function of the nodes' stable pin
/// indices modulo the host count. For every host count it matches the
/// reference rebuilt from the pinning alone, and relabelling the hosts with
/// any permutation permutes the per-host deltas with it.
#[test]
fn partition_is_invariant_under_host_count_re_pinning() {
    let policy = PlacementPolicy::RoundRobin;
    for hosts in [1u32, 2, 3, 5, 8] {
        let mut coordinator = sharded_coordinator(hosts, 1.0);
        for step in 0..8 {
            coordinator.update(f64::from(step)).expect("update");
            let global = coordinator.programme_delta();
            let reference = partition_reference(global, hosts);
            assert_eq!(
                coordinator.host_deltas(),
                &reference[..],
                "partition diverged from the pin-derived reference at {hosts} hosts, step {step}"
            );
            // Pin stability: the shard of every entry is pin % hosts — the
            // pin itself does not depend on the host count.
            for pair in global.added.iter().chain(&global.changed) {
                let plan = ShardPlan::new(hosts);
                assert_eq!(plan.host_of(pair.a).index(), policy.pin(pair.a) % hosts as usize);
                assert_eq!(plan.host_of(pair.b).index(), policy.pin(pair.b) % hosts as usize);
            }
            // Relabelling invariance: bucketing by π(host) yields exactly
            // the π-permuted per-host deltas, for a non-trivial permutation.
            let permutation: Vec<usize> =
                (0..hosts as usize).map(|h| (h + 1) % hosts as usize).collect();
            let mut permuted: Vec<ProgrammeDelta> = (0..hosts)
                .map(|_| ProgrammeDelta {
                    epoch: global.epoch,
                    ..ProgrammeDelta::default()
                })
                .collect();
            for (host, delta) in reference.iter().enumerate() {
                permuted[permutation[host]] = delta.clone();
            }
            for (host, delta) in coordinator.host_deltas().iter().enumerate() {
                assert_eq!(
                    &permuted[permutation[host]], delta,
                    "relabelling broke the partition at {hosts} hosts"
                );
            }
        }
    }
}
