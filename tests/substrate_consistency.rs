//! Cross-crate consistency tests: the orbital mechanics, constellation
//! calculation and network emulation must agree with each other.

use celestial_constellation::{BoundingBox, Constellation, GroundStation, LinkKind, Shell};
use celestial_netem::packet::Packet;
use celestial_netem::VirtualNetwork;
use celestial_sgp4::frames::eci_to_ecef;
use celestial_sgp4::Propagator;
use celestial_sgp4::WalkerShell;
use celestial_types::constants::{EARTH_RADIUS_KM, SPEED_OF_LIGHT_KM_S};
use celestial_types::geo::Geodetic;
use celestial_types::ids::NodeId;
use celestial_types::time::SimInstant;
use celestial_types::{Bandwidth, Latency};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn constellation_positions_match_direct_propagation() {
    let shell = Shell::from_walker(WalkerShell::iridium());
    let elements = shell.satellite_elements();
    let constellation = Constellation::builder()
        .shell(shell)
        .build()
        .expect("constellation");
    let t_seconds = 247.0;
    let state = constellation.state_at(t_seconds).expect("state");
    for (i, element) in elements.iter().enumerate().step_by(7) {
        let direct = Propagator::new(element.clone())
            .propagate_minutes(t_seconds / 60.0)
            .expect("propagation");
        let expected = eci_to_ecef(direct.position_eci, t_seconds / 60.0);
        let from_state = state
            .position(NodeId::satellite(0, i as u32))
            .expect("position");
        assert!(
            expected.distance_to(&from_state) < 1e-6,
            "satellite {i} diverges"
        );
    }
}

#[test]
fn link_latencies_match_distance_over_speed_of_light() {
    let constellation = Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6, -0.19, 0.0)))
        .build()
        .expect("constellation");
    let state = constellation.state_at(60.0).expect("state");
    assert!(!state.links.is_empty());
    for link in &state.links {
        let a = state.position(link.a).expect("position");
        let b = state.position(link.b).expect("position");
        let distance = a.distance_to(&b);
        assert!((distance - link.distance_km).abs() < 1e-6);
        let expected_latency_us = distance / SPEED_OF_LIGHT_KM_S * 1e6;
        assert!((link.latency.as_micros() as f64 - expected_latency_us).abs() <= 1.0);
        if link.kind == LinkKind::Isl {
            // ISL endpoints are both at shell altitude.
            assert!((a.norm() - EARTH_RADIUS_KM - 550.0).abs() < 5.0);
        }
    }
}

#[test]
fn programmed_network_reproduces_constellation_latency_between_stations() {
    // Program a virtual network from the constellation's shortest path and
    // check that a packet experiences exactly that latency.
    let constellation = Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("constellation");
    let state = constellation.state_at(0.0).expect("state");
    let accra = NodeId::ground_station(0);
    let abuja = NodeId::ground_station(1);
    let latency = state
        .latency_between(accra, abuja)
        .expect("nodes exist")
        .expect("connected");

    let mut network = VirtualNetwork::new();
    network.program_pair(accra, abuja, latency, Bandwidth::from_gbps(10));
    let packet = Packet::new(accra, abuja, 1_250);
    let mut rng = StdRng::seed_from_u64(1);
    let deliveries = network.send(&packet, SimInstant::EPOCH, &mut rng);
    assert_eq!(deliveries.len(), 1);
    let arrival_ms = deliveries[0].0.as_secs_f64() * 1e3;
    let programmed_ms = latency.quantized_tenth_ms().as_millis_f64();
    // Serialisation of 1250 bytes at 10 Gb/s adds a microsecond.
    assert!(
        (arrival_ms - programmed_ms).abs() < 0.01,
        "arrival {arrival_ms} ms vs programmed {programmed_ms} ms"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ground_station_visibility_respects_min_elevation(
        lat in -60.0f64..60.0,
        lon in -180.0f64..180.0,
        t in 0.0f64..3000.0,
        min_elevation in 10.0f64..45.0,
    ) {
        let shell = Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16))
            .with_min_elevation_deg(min_elevation);
        let constellation = Constellation::builder()
            .shell(shell)
            .ground_station(GroundStation::new("station", Geodetic::new(lat, lon, 0.0)))
            .build()
            .expect("constellation");
        let state = constellation.state_at(t).expect("state");
        let station_pos = state.position(NodeId::ground_station(0)).expect("position");
        for link in state.links.iter().filter(|l| l.kind == LinkKind::GroundStationLink) {
            let sat_pos = state.position(link.b.as_satellite().map(NodeId::Satellite).unwrap_or(link.b))
                .or_else(|_| state.position(link.a))
                .expect("satellite position");
            let elevation = station_pos.elevation_angle_deg(&sat_pos);
            prop_assert!(elevation >= min_elevation - 1e-6,
                "satellite visible at {elevation}° < {min_elevation}°");
        }
    }

    #[test]
    fn latency_newtype_and_link_model_agree(distance_km in 1.0f64..10_000.0) {
        let latency = Latency::from_distance_km(distance_km);
        let expected_ms = distance_km / SPEED_OF_LIGHT_KM_S * 1e3;
        prop_assert!((latency.as_millis_f64() - expected_ms).abs() < 0.001);
    }
}
