//! Lockstep tests of the scenario engine (`docs/SCENARIOS.md`): a generated
//! tenant pinned inside a 64-tenant scenario fleet must be **bit-identical**
//! to the same generated application run solo — the same per-epoch block
//! counters, probe latencies, message and network counters — across
//! {synchronous, pipelined} pipelines × {global, sharded} network planes,
//! even while every *other* generated tenant runs a fault schedule. This is
//! the paper's fig. 6 reproducibility claim generalised from two
//! hand-written applications to arbitrary generated scenarios.

mod common;

use celestial::config::{ScenarioBlock, ScenarioBlockKind, ScenarioConfig, TestbedConfig};
use celestial::pipeline::PipelineMode;
use celestial::{EpochCompute, Testbed};
use celestial_apps::workload::CbrSource;
use celestial_apps::ScenarioTenant;
use celestial_machines::{FaultEvent, FaultKind};
use celestial_types::ids::NodeId;
use celestial_types::time::SimInstant;
use common::lockstep::{
    assert_lockstep, run_scenario_fleet, run_scenario_solo, scenario_config,
};
use proptest::prelude::*;

const TENANTS: u32 = 64;
const PINNED: usize = 19;
// Long enough for the accra–abuja ground pair to get a programmed path
// (epoch ~55 of this constellation), so the CBR and failover blocks see
// delivered traffic inside the comparison, not just the satellite-bound
// mobile and CDN probes.
const DURATION_S: f64 = 75.0;

/// The noise schedule the 63 *other* tenants run: a mid-run crash with
/// recovery on accra (which flips the failover block of those tenants onto
/// its backup) and a lasting degradation on abuja. The pinned tenant gets no
/// faults and must match a fault-free solo run exactly.
fn noise_faults() -> Vec<FaultEvent> {
    vec![
        FaultEvent {
            node: NodeId::ground_station(0),
            at: SimInstant::from_secs_f64(5.0),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(9.0)),
        },
        FaultEvent {
            node: NodeId::ground_station(1),
            at: SimInstant::from_secs_f64(11.0),
            kind: FaultKind::Degradation { cpu_share_percent: 10 },
            recover_at: None,
        },
    ]
}

fn assert_pinned_scenario_matches_solo(mode: PipelineMode, sharded: bool) {
    let hosts = if sharded { 4 } else { 1 };
    let config = scenario_config(23, DURATION_S, mode, hosts, sharded, TENANTS);
    let solo = run_scenario_solo(&config, PINNED as u32);
    assert!(!solo.rtts_ms.is_empty(), "the solo run must observe probe traffic");
    assert!(
        solo.epochs.iter().any(|line| line.contains("buoys")),
        "the journal must carry per-block counters"
    );

    let pinned = run_scenario_fleet(&config, PINNED, noise_faults());
    let label = format!(
        "scenario tenant {PINNED}/{TENANTS} ({} / {})",
        mode.name(),
        if sharded { "sharded" } else { "global" },
    );
    assert_lockstep(&label, &solo, &pinned);
}

#[test]
fn pinned_scenario_tenant_is_bit_identical_to_solo_synchronous_global() {
    assert_pinned_scenario_matches_solo(PipelineMode::Synchronous, false);
}

#[test]
fn pinned_scenario_tenant_is_bit_identical_to_solo_synchronous_sharded() {
    assert_pinned_scenario_matches_solo(PipelineMode::Synchronous, true);
}

#[test]
fn pinned_scenario_tenant_is_bit_identical_to_solo_pipelined_global() {
    assert_pinned_scenario_matches_solo(PipelineMode::Pipelined, false);
}

#[test]
fn pinned_scenario_tenant_is_bit_identical_to_solo_pipelined_sharded() {
    assert_pinned_scenario_matches_solo(PipelineMode::Pipelined, true);
}

/// Two runs of the identical scenario fleet observe the identical world:
/// nothing in the engine leaks wall-clock, iteration-order or
/// address-dependent state into a generated tenant.
#[test]
fn repeated_scenario_runs_are_bit_identical() {
    let config = scenario_config(23, 20.0, PipelineMode::Synchronous, 1, false, 16);
    let first = run_scenario_fleet(&config, 5, noise_faults());
    let second = run_scenario_fleet(&config, 5, noise_faults());
    assert_lockstep("repeated scenario run", &first, &second);
}

/// A scenario tenant observes the world only through the info database and
/// its network plane, both pure functions of the per-epoch deltas — so
/// thread-count invariance of the epoch computation is thread-count
/// invariance of every generated scenario. Proven here on the scenario
/// configuration's own constellation, one worker against five.
#[test]
fn scenario_epochs_are_thread_count_invariant() {
    let config = scenario_config(23, DURATION_S, PipelineMode::Synchronous, 1, false, TENANTS);
    let constellation = Testbed::new(&config).expect("testbed").constellation().clone();
    let mut one = EpochCompute::with_threads(constellation.clone(), 1);
    let mut many = EpochCompute::with_threads(constellation, 5);
    for step in 0..8 {
        let t = f64::from(step);
        let d1 = one.compute(t).expect("epoch");
        let d2 = many.compute(t).expect("epoch");
        assert_eq!(d1, d2, "scenario epoch delta diverged at t={t}");
        assert_eq!(one.state(), many.state(), "scenario state diverged at t={t}");
    }
}

/// The shipped `examples/scenario.toml` composes a thousand-tenant,
/// million-user scenario entirely in TOML: all five block kinds, 1,024
/// generated tenants, ≥1M aggregate users, and the whole fleet of guest
/// applications generates from it.
#[test]
fn the_example_toml_composes_a_thousand_tenant_scenario() {
    let toml = include_str!("../examples/scenario.toml");
    let config = TestbedConfig::from_toml(toml).expect("examples/scenario.toml parses");
    let scenario = config.scenario.as_ref().expect("the example defines [scenario]");
    assert_eq!(scenario.tenants, 1_024);
    assert!(scenario.aggregate_users() >= 1_000_000, "a million aggregate users");
    let kinds: std::collections::BTreeSet<&str> =
        scenario.blocks.iter().map(|b| b.kind.name()).collect();
    assert!(kinds.len() >= 4, "composes at least four distinct block kinds, got {kinds:?}");

    let fleet = ScenarioTenant::generate(&config).expect("the fleet generates");
    assert_eq!(fleet.len(), 1_024);
    let users: u64 = fleet.iter().map(ScenarioTenant::users).sum();
    assert_eq!(users, scenario.aggregate_users());
    assert_eq!(fleet[1_023].name(), "scenario-1023");
}

/// A single-block CBR scenario's aggregate byte account follows the exact
/// CBR law at the aggregate event index: the run-long total equals
/// `cumulative_bytes(total_events)`, byte-for-byte — the whole-run analogue
/// of the windowed `packets_between` telescoping.
#[test]
fn scenario_byte_accounting_follows_the_exact_cbr_law() {
    // The accra–abuja pair only gets a programmed path from epoch ~55 of
    // this constellation, so run long enough for probes to actually arrive.
    let mut config = scenario_config(7, 75.0, PipelineMode::Synchronous, 1, false, 1);
    let block = ScenarioBlock {
        kind: ScenarioBlockKind::Cbr,
        name: "calls".to_owned(),
        population: 1_000,
        bitrate_bps: 1_000_003,
        interval_ms: 30.0,
        ..ScenarioBlock::default()
    };
    config.scenario = Some(ScenarioConfig { tenants: 1, blocks: vec![block.clone()] });
    config.validate().expect("valid config");

    let mut app = ScenarioTenant::for_index(&config, 0).expect("generates");
    let mut testbed = Testbed::new(&config).expect("testbed");
    testbed.run(&mut app).expect("run");

    assert!(app.total_events() > 0, "the population must emit");
    assert!(app.deliveries() > 0, "probes must arrive");
    let cbr = CbrSource::new(block.bitrate_bps, block.interval());
    assert_eq!(
        app.total_bytes(),
        cbr.cumulative_bytes(app.total_events()),
        "aggregate bytes must follow the exact per-event CBR law"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Arbitrary generated scenarios are bit-reproducible **and** isolated:
    /// for random block kinds, populations and intervals, a pinned tenant
    /// inside the generated fleet matches its own solo run exactly, and two
    /// fleet runs match each other.
    #[test]
    fn arbitrary_generated_scenarios_are_bit_reproducible(
        seed in 0u64..10_000,
        kind_a in 0usize..5,
        kind_b in 0usize..5,
        pop_a in 1u64..5_000,
        pop_b in 1u64..5_000,
        ivl_a in 15.0f64..1_500.0,
        ivl_b in 15.0f64..1_500.0,
    ) {
        let mut config = scenario_config(seed, 10.0, PipelineMode::Synchronous, 1, false, 3);
        let blocks = vec![
            ScenarioBlock {
                kind: ScenarioBlockKind::ALL[kind_a],
                name: "a".to_owned(),
                population: pop_a,
                interval_ms: ivl_a,
                ..ScenarioBlock::default()
            },
            ScenarioBlock {
                kind: ScenarioBlockKind::ALL[kind_b],
                name: "b".to_owned(),
                population: pop_b,
                interval_ms: ivl_b,
                ..ScenarioBlock::default()
            },
        ];
        let tenants = 3;
        config.scenario = Some(ScenarioConfig { tenants, blocks });
        config.validate().expect("valid generated config");

        let solo = run_scenario_solo(&config, 1);
        let pinned = run_scenario_fleet(&config, 1, noise_faults());
        assert_lockstep("generated scenario solo vs fleet", &solo, &pinned);
        let again = run_scenario_fleet(&config, 1, noise_faults());
        assert_lockstep("generated scenario repeat", &pinned, &again);
    }
}
