//! Lockstep and consistency tests for the serving plane (`docs/SERVE.md`):
//! a pipelined coordinator must serve **bit-identical** HTTP responses to a
//! synchronous one on every deterministic route at every epoch, and readers
//! hammering the plane across many epoch boundaries must never observe a
//! torn epoch — every reply must be consistent with exactly one published
//! snapshot.

use celestial::config::ServeConfig;
use celestial::pipeline::PipelineMode;
use celestial::Coordinator;
use celestial_serve::ServePlane;
use celestial_types::time::SimDuration;
use httpd::Client;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

mod common;
use common::lockstep::{serve_constellation, serve_journal, SERVE_ROUTES};

/// The serving plane is part of the determinism contract: a pipelined run
/// answers every deterministic route with the same bytes as a synchronous
/// run, at every one of 30 epochs — and repeating the synchronous run
/// reproduces the journal exactly.
#[test]
fn pipelined_serve_responses_are_bit_identical_to_synchronous() {
    let sync = serve_journal(PipelineMode::Synchronous, 30);
    let pipe = serve_journal(PipelineMode::Pipelined, 30);
    assert_eq!(sync.len(), pipe.len());
    for (line, (a, b)) in sync.iter().zip(&pipe).enumerate() {
        assert_eq!(a, b, "serve journal diverged at line {line}");
    }
    let again = serve_journal(PipelineMode::Synchronous, 30);
    assert_eq!(sync, again, "synchronous serve journal not reproducible");
}

/// The journal covers the full error taxonomy end to end: every epoch
/// answers 200 on the real routes, 404 on the unknown route and 400 on the
/// malformed parameter (auth and rate limiting are off by default; their
/// 401/429 legs live in the serve crate's own tests).
#[test]
fn serve_journal_carries_the_error_taxonomy() {
    let journal = serve_journal(PipelineMode::Synchronous, 3);
    assert_eq!(journal.len(), 3 * SERVE_ROUTES.len());
    for chunk in journal.chunks(SERVE_ROUTES.len()) {
        assert!(chunk[0].contains("/self -> 200"), "{}", chunk[0]);
        assert!(chunk[6].contains("/bogus -> 404"), "{}", chunk[6]);
        assert!(chunk[7].contains("/sat/x/1 -> 400"), "{}", chunk[7]);
    }
}

fn epoch_of(body: &[u8]) -> u64 {
    let value: Value =
        serde_json::from_str(std::str::from_utf8(body).expect("utf-8 body")).expect("json body");
    value
        .get("snapshot_epoch")
        .and_then(Value::as_u64)
        .expect("snapshot_epoch stamped")
}

/// Reader threads hammer `/self` over HTTP while the coordinator publishes
/// 60 epoch boundaries. Every reply must be bit-identical to the reference
/// body of the epoch it claims (`snapshot_epoch`) — a reply mixing two
/// epochs' state, or claiming an epoch that was never published, fails.
/// Each connection must also observe epochs monotonically.
#[test]
fn hammering_readers_never_observe_a_torn_epoch() {
    const EPOCHS: u32 = 60;
    const ROUTE: &str = "/self";
    const HEADERS: &[(&str, &str)] = &[("x-celestial-node", "0.gst")];

    // Reference pass: one body per epoch from an identical coordinator.
    let interval = SimDuration::from_secs(1);
    let mut reference = Coordinator::new(serve_constellation(), interval);
    let store = reference.enable_snapshots();
    let plane = ServePlane::start(&ServeConfig::default(), store).expect("reference plane");
    let mut client = Client::connect(plane.addr()).expect("connect");
    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
    for epoch in 0..EPOCHS {
        reference.update(f64::from(epoch)).expect("update");
        let reply = client.get_with_headers(ROUTE, HEADERS).expect("reference request");
        assert_eq!(reply.status, 200);
        assert_eq!(epoch_of(&reply.body), u64::from(epoch) + 1);
        expected.insert(u64::from(epoch) + 1, reply.body);
    }
    drop(plane);

    // Hammer pass: readers race the publisher across the same 60 boundaries.
    // Rate limiting is off — the hammer loop is far hotter than any refill.
    let mut coordinator = Coordinator::new(serve_constellation(), interval);
    let store = coordinator.enable_snapshots();
    coordinator.update(0.0).expect("first update");
    let config = ServeConfig {
        rate_limit_per_epoch: 0,
        ..ServeConfig::default()
    };
    let plane = ServePlane::start(&config, store).expect("hammer plane");
    let addr = plane.addr();
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connect");
                let mut bodies = Vec::new();
                let mut last_epoch = 0;
                // Keep reading until the publisher finishes, with a floor of
                // 50 requests so a starved thread (1-core runners) still
                // exercises the check.
                while !stop.load(Ordering::Relaxed) || bodies.len() < 50 {
                    let reply = client.get_with_headers(ROUTE, HEADERS).expect("reader request");
                    assert_eq!(reply.status, 200);
                    let epoch = epoch_of(&reply.body);
                    assert!(
                        epoch >= last_epoch,
                        "epoch went backwards on one connection: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    bodies.push(reply.body);
                }
                bodies
            })
        })
        .collect();

    for epoch in 1..EPOCHS {
        coordinator.update(f64::from(epoch)).expect("update");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);

    let mut observed_epochs = std::collections::BTreeSet::new();
    for reader in readers {
        for body in reader.join().expect("reader thread") {
            let epoch = epoch_of(&body);
            let reference_body = expected
                .get(&epoch)
                .unwrap_or_else(|| panic!("reply claims unpublished epoch {epoch}"));
            assert_eq!(
                &body, reference_body,
                "torn reply at epoch {epoch}: body does not match that epoch's reference"
            );
            observed_epochs.insert(epoch);
        }
    }
    assert!(
        observed_epochs.len() >= 2,
        "readers only ever saw {observed_epochs:?}; the race never materialised"
    );
    assert_eq!(coordinator.update_count(), u64::from(EPOCHS));
}
