//! Integration tests of the delta-based network-programming engine: the
//! per-epoch `{added, changed, removed}` change sets must compose — replaying
//! them from epoch 0 reproduces the full programme at every timestep — and
//! applying them to a [`VirtualNetwork`] keeps its rule table in lockstep
//! with the coordinator's programme.

use celestial::Coordinator;
use celestial_constellation::{BoundingBox, Constellation, GroundStation, Shell};
use celestial_netem::VirtualNetwork;
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::ids::NodeId;
use celestial_types::time::SimDuration;
use celestial_types::{Bandwidth, Latency};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn coordinator(update_interval_s: f64) -> Coordinator {
    let constellation = Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation");
    Coordinator::new(constellation, SimDuration::from_secs_f64(update_interval_s))
}

type Programme = BTreeMap<(NodeId, NodeId), (Latency, Bandwidth)>;

fn as_map(coordinator: &Coordinator) -> Programme {
    coordinator
        .network_programme()
        .expect("programme after update")
        .into_iter()
        .map(|p| ((p.a, p.b), (p.latency, p.bandwidth)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Replaying the cumulative deltas from epoch 0 reproduces the full
    /// programme at every timestep, for arbitrary experiment start times and
    /// update intervals.
    #[test]
    fn cumulative_deltas_replay_to_the_full_programme(
        t0 in 0.0f64..3000.0,
        interval in 0.2f64..20.0,
        steps in 3usize..7,
    ) {
        let mut coordinator = coordinator(interval);
        let mut replayed: Programme = BTreeMap::new();
        for step in 0..steps {
            coordinator.update(t0 + step as f64 * interval).expect("update");
            let delta = coordinator.programme_delta();
            prop_assert_eq!(delta.epoch, step as u64 + 1);
            for pair in &delta.added {
                let previous = replayed.insert((pair.a, pair.b), (pair.latency, pair.bandwidth));
                prop_assert!(previous.is_none(), "added pair {}-{} was already programmed", pair.a, pair.b);
            }
            for pair in &delta.changed {
                let previous = replayed.insert((pair.a, pair.b), (pair.latency, pair.bandwidth));
                prop_assert!(previous.is_some(), "changed pair {}-{} was never programmed", pair.a, pair.b);
                prop_assert_ne!(
                    previous.expect("checked above"),
                    (pair.latency, pair.bandwidth),
                    "changed pair carries unchanged values"
                );
            }
            for (a, b) in &delta.removed {
                prop_assert!(replayed.remove(&(*a, *b)).is_some(), "removed pair {a}-{b} was never programmed");
            }
            prop_assert_eq!(&replayed, &as_map(&coordinator), "replay diverged at step {}", step);
        }
    }
}

/// Applying each epoch's delta to a virtual network keeps the rule table in
/// lockstep with the full programme: every programmed pair reachable with the
/// programme's exact delay and bandwidth, and not a single extra rule.
#[test]
fn applying_deltas_keeps_the_network_in_sync_with_the_programme() {
    let mut coordinator = coordinator(2.0);
    // Single-host overlay, no placements: no latency compensation, so the
    // programmed delay equals the pair's (already quantized) latency.
    let mut network = VirtualNetwork::new();
    for step in 0..6 {
        coordinator.update(f64::from(step) * 2.0).expect("update");
        network.apply_delta(coordinator.programme_delta());
        let programme = coordinator.network_programme().expect("programme");
        assert!(!programme.is_empty());
        assert_eq!(
            network.tc().rule_count(),
            2 * programme.len(),
            "rule table out of sync at step {step}"
        );
        for pair in &programme {
            assert!(network.is_reachable(pair.a, pair.b));
            assert!(network.is_reachable(pair.b, pair.a));
            assert_eq!(network.tc().delay(pair.a, pair.b), Some(pair.latency));
            assert_eq!(network.tc().bandwidth(pair.a, pair.b), Some(pair.bandwidth));
        }
    }
}
