//! Lockstep tests of the multi-tenant fan-out: a tenant pinned inside a
//! 16-tenant fleet must be **bit-identical** to the same configuration run
//! solo — the same per-epoch journal, RTTs, message and network counters —
//! across {synchronous, pipelined} pipelines × {global, sharded} network
//! planes, even while every *other* tenant runs a fault schedule. This is
//! the isolation contract of `docs/TENANTS.md`: one pipeline serving N
//! testbeds changes nothing any single testbed observes.

mod common;

use celestial::pipeline::PipelineMode;
use celestial_machines::{FaultEvent, FaultKind};
use celestial_types::ids::NodeId;
use celestial_types::time::SimInstant;
use common::lockstep::{
    assert_lockstep, config, megascale_config, megascale_enabled, run_config, run_fleet_config,
};

const TENANTS: u32 = 16;
const PINNED: usize = 7;
const DURATION_S: f64 = 105.0;

/// The noise schedule the 15 *other* tenants run: a mid-run crash with
/// recovery on accra and a lasting degradation on abuja. The pinned tenant
/// gets no faults and must match a fault-free solo run exactly.
fn noise_faults() -> Vec<FaultEvent> {
    vec![
        FaultEvent {
            node: NodeId::ground_station(0),
            at: SimInstant::from_secs_f64(5.0),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(9.0)),
        },
        FaultEvent {
            node: NodeId::ground_station(1),
            at: SimInstant::from_secs_f64(11.0),
            kind: FaultKind::Degradation { cpu_share_percent: 10 },
            recover_at: None,
        },
    ]
}

fn assert_pinned_tenant_matches_solo(mode: PipelineMode, sharded: bool) {
    let hosts = if sharded { 4 } else { 1 };
    let config = config(11, DURATION_S, mode, hosts, sharded);
    let solo = run_config(&config, Vec::new());
    assert!(!solo.rtts_ms.is_empty(), "the solo run must observe traffic");

    let pinned = run_fleet_config(&config, TENANTS, PINNED, noise_faults());
    let label = format!(
        "tenant {PINNED}/{TENANTS} ({} / {})",
        mode.name(),
        if sharded { "sharded" } else { "global" },
    );
    assert_lockstep(&label, &solo, &pinned);
}

#[test]
fn pinned_tenant_is_bit_identical_to_solo_synchronous_global() {
    assert_pinned_tenant_matches_solo(PipelineMode::Synchronous, false);
}

#[test]
fn pinned_tenant_is_bit_identical_to_solo_synchronous_sharded() {
    assert_pinned_tenant_matches_solo(PipelineMode::Synchronous, true);
}

#[test]
fn pinned_tenant_is_bit_identical_to_solo_pipelined_global() {
    assert_pinned_tenant_matches_solo(PipelineMode::Pipelined, false);
}

#[test]
fn pinned_tenant_is_bit_identical_to_solo_pipelined_sharded() {
    assert_pinned_tenant_matches_solo(PipelineMode::Pipelined, true);
}

/// The megascale leg (gated behind `CELESTIAL_MEGASCALE=1`): a pinned
/// tenant inside a 4-tenant fleet on a 72×22 Starlink-class shell over 10
/// epochs must match a fault-free solo run exactly, in both pipeline modes
/// — the fan-out and the scoped solve compose (see `docs/MEGASCALE.md`).
#[test]
fn megascale_pinned_tenant_is_bit_identical_to_solo() {
    if !megascale_enabled() {
        eprintln!("skipping: set CELESTIAL_MEGASCALE=1 to run the 72×22 leg");
        return;
    }
    for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
        let config = megascale_config(11, 10.0, mode, 1, false);
        let solo = run_config(&config, Vec::new());
        assert!(!solo.rtts_ms.is_empty(), "the solo run must observe traffic");
        let pinned = run_fleet_config(&config, 4, 2, noise_faults());
        assert_lockstep(&format!("megascale tenant 2/4 ({})", mode.name()), &solo, &pinned);
    }
}
