//! End-to-end integration tests spanning every crate of the workspace:
//! configuration → constellation → coordinator → machines → network →
//! applications.

use celestial::config::{HostConfig, TestbedConfig};
use celestial::estimator::{CostModel, ResourceEstimator};
use celestial::testbed::{AppContext, GuestApplication, Testbed};
use celestial_apps::meetup::{BridgeDeployment, MeetupConfig, MeetupExperiment};
use celestial_constellation::{BoundingBox, GroundStation, Shell};
use celestial_netem::packet::Packet;
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::ids::NodeId;
use celestial_types::time::SimDuration;

const FULL_CONFIG_TOML: &str = r#"
seed = 2022
update-interval-s = 2.0
duration-s = 45.0
path-algorithm = "dijkstra"

[bounding-box]
lat-min = -5.0
lat-max = 20.0
lon-min = -10.0
lon-max = 20.0

[[host]]
cores = 32
memory-mib = 32768

[[host]]
cores = 32
memory-mib = 32768

[[host]]
cores = 32
memory-mib = 32768

[[shell]]
altitude-km = 550.0
inclination-deg = 53.0
planes = 72
satellites-per-plane = 22
phase-offset = 17
vcpus = 2
memory-mib = 512

[[ground-station]]
name = "accra"
lat = 5.6037
lon = -0.187
vcpus = 4
memory-mib = 4096

[[ground-station]]
name = "abuja"
lat = 9.0765
lon = 7.3986
vcpus = 4
memory-mib = 4096

[[ground-station]]
name = "yaounde"
lat = 3.848
lon = 11.5021
vcpus = 4
memory-mib = 4096

[[ground-station]]
name = "johannesburg-dc"
lat = -26.2041
lon = 28.0473
vcpus = 8
memory-mib = 8192
"#;

#[test]
fn toml_configuration_drives_a_full_meetup_experiment() {
    let config = TestbedConfig::from_toml(FULL_CONFIG_TOML).expect("valid TOML");
    assert_eq!(config.shells[0].satellite_count(), 1584);
    let mut testbed = Testbed::new(&config).expect("testbed");
    let mut app = MeetupExperiment::new(MeetupConfig::new(BridgeDeployment::Satellite));
    testbed.run(&mut app).expect("run");

    let latencies = app.all_latencies_ms();
    assert!(latencies.len() > 2_000, "only {} samples", latencies.len());
    let stats = celestial_sim::metrics::summarize(&latencies);
    // The headline claim of the paper's §4: the satellite bridge keeps the
    // conference within a few tens of milliseconds.
    assert!(stats.median < 25.0, "median {} ms", stats.median);
    // The coordinator kept updating throughout the run.
    assert!(testbed.coordinator().update_count() >= 20);
    // Utilisation traces exist for every host and stay within bounds.
    for series in testbed.host_cpu_series() {
        assert!(!series.is_empty());
        assert!(series.values().iter().all(|v| (0.0..=100.0).contains(v)));
    }
    for series in testbed.host_memory_series() {
        assert!(series.values().iter().all(|v| (0.0..=100.0).contains(v)));
    }
}

#[test]
fn dns_info_api_and_estimator_agree_with_the_running_testbed() {
    let config = TestbedConfig::from_toml(FULL_CONFIG_TOML).expect("valid TOML");
    let mut testbed = Testbed::new(&config).expect("testbed");

    struct Nop;
    impl GuestApplication for Nop {}
    testbed.run(&mut Nop).expect("run");

    // DNS resolves satellites and ground stations to unique addresses.
    let accra_ip = testbed.dns().resolve("accra.gst.celestial").expect("accra");
    let sat_ip = testbed.dns().resolve("100.0.celestial").expect("satellite");
    assert_ne!(accra_ip, sat_ip);

    // The info API answers guest queries from the coordinator's database.
    let database = testbed.coordinator().database();
    let api = celestial::info_api::InfoApi::new(database);
    let info = api
        .handle_path(NodeId::ground_station(0), "/info")
        .expect("info route");
    assert_eq!(info["satellites"], 1584);
    let path = api
        .handle_path(NodeId::ground_station(0), "/path/accra.gst/abuja.gst")
        .expect("path route");
    assert_eq!(path["connected"], true);
    assert!(path["latency_ms"].as_f64().unwrap() > 0.0);

    // The resource estimator's prediction is consistent with what actually
    // got booted during the run.
    let estimate = ResourceEstimator::estimate(&config);
    let booted: usize = testbed
        .managers()
        .iter()
        .map(|m| m.host().machine_count())
        .sum();
    assert!(booted > 0);
    assert!(
        (booted as f64) < estimate.expected_active_satellites * 4.0 + 10.0,
        "booted {booted}, estimated {}",
        estimate.expected_active_satellites
    );

    // The cost model reproduces the paper's two-orders-of-magnitude saving.
    let model = CostModel::default();
    assert!(model.saving_factor(3, 4409, 15.0) > 100.0);
}

/// A CDN-prefetch-style application that exercises machine suspension: it
/// sends a payload to every *active* satellite every 10 seconds and counts
/// how many are reachable.
#[derive(Default)]
struct ActiveSatelliteSweep {
    station: Option<NodeId>,
    reachable_per_round: Vec<usize>,
    current_round: usize,
}

impl GuestApplication for ActiveSatelliteSweep {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.station = ctx.ground_station("accra");
        ctx.set_timer(SimDuration::from_secs(10), 1);
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut AppContext<'_>) {
        let Some(station) = self.station else { return };
        let visible = ctx.visible_satellites(station);
        self.reachable_per_round.push(0);
        self.current_round = self.reachable_per_round.len() - 1;
        for sat in visible {
            if ctx.is_running(sat) {
                ctx.send(station, sat, 1_000, vec![42]);
            }
        }
        ctx.set_timer(SimDuration::from_secs(10), 1);
    }

    fn on_message(&mut self, message: &Packet, _ctx: &mut AppContext<'_>) {
        if message.payload.first() == Some(&42) {
            if let Some(count) = self.reachable_per_round.get_mut(self.current_round) {
                *count += 1;
            }
        }
    }
}

#[test]
fn bounding_box_keeps_visible_satellites_running() {
    let config = TestbedConfig::builder()
        .seed(3)
        .update_interval_s(2.0)
        .duration_s(60.0)
        .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .hosts(vec![HostConfig::default(); 2])
        .build()
        .expect("valid config");
    let mut testbed = Testbed::new(&config).expect("testbed");
    let mut app = ActiveSatelliteSweep::default();
    testbed.run(&mut app).expect("run");

    // Satellites visible from Accra lie inside the bounding box, so they are
    // running and answer (i.e. the suspension logic does not starve the
    // application).
    assert!(!app.reachable_per_round.is_empty());
    let rounds_with_answers = app
        .reachable_per_round
        .iter()
        .filter(|count| **count > 0)
        .count();
    assert!(
        rounds_with_answers >= app.reachable_per_round.len() / 2,
        "answers in {rounds_with_answers} of {} rounds",
        app.reachable_per_round.len()
    );
}

#[test]
fn network_programme_matches_an_independent_reference_and_is_never_uncapped() {
    // Regression guard for the delta-based programme engine: the programme
    // over every pair of programmable nodes (ground stations + active
    // satellites, including sat↔sat) must match a from-scratch reference —
    // one Dijkstra per source straight off the graph, with the bottleneck
    // read from the link *list* (independently of the CSR bandwidth arrays
    // the engine itself uses). A pair whose predecessor walk breaks or whose
    // path crosses a link without bandwidth must be absent, never uncapped.
    use celestial::coordinator::PairProgram;
    use celestial_constellation::path::{NO_NODE, UNREACHABLE};
    use celestial_types::Bandwidth;
    use std::collections::BTreeMap;

    let config = TestbedConfig::from_toml(FULL_CONFIG_TOML).expect("valid TOML");
    let constellation = celestial_constellation::Constellation::builder()
        .shells(config.shells.iter().cloned())
        .ground_stations(config.ground_stations.iter().cloned())
        .bounding_box(config.bounding_box)
        .path_algorithm(config.path_algorithm)
        .build()
        .expect("constellation");
    let mut coordinator =
        celestial::Coordinator::new(constellation, SimDuration::from_secs_f64(config.update_interval_s));

    for step in 0..3u32 {
        coordinator.update(f64::from(step) * config.update_interval_s).expect("update");
        let programme = coordinator.network_programme().expect("programme");
        assert!(!programme.is_empty());
        assert!(
            programme.iter().all(|p| !p.bandwidth.is_infinite()),
            "uncapped pair leaked into the programme at step {step}"
        );

        // Independent reference: direct link bandwidths from the link list.
        let state = coordinator.database().state().expect("state");
        let mut link_bandwidth: BTreeMap<(usize, usize), Bandwidth> = BTreeMap::new();
        for link in &state.links {
            let a = state.node_index(link.a).unwrap();
            let b = state.node_index(link.b).unwrap();
            let key = if a <= b { (a, b) } else { (b, a) };
            let entry = link_bandwidth.entry(key).or_insert(Bandwidth::ZERO);
            if link.bandwidth > *entry {
                *entry = link.bandwidth;
            }
        }

        // Programmable nodes in ascending node-index order: active
        // satellites first (satellite indices precede ground stations).
        let mut sources: Vec<usize> = state
            .active_satellites()
            .into_iter()
            .map(|sat| state.node_index(NodeId::Satellite(sat)).unwrap())
            .collect();
        sources.extend(
            (0..state.ground_station_count() as u32)
                .map(|gst| state.node_index(NodeId::ground_station(gst)).unwrap()),
        );
        assert!(sources.windows(2).all(|w| w[0] < w[1]));

        let mut reference: Vec<PairProgram> = Vec::new();
        for (i, &source) in sources.iter().enumerate() {
            let (dist, prev) = state.graph().dijkstra(source);
            for &target in &sources[i + 1..] {
                if dist[target] == UNREACHABLE {
                    continue;
                }
                // Fold the bottleneck; a broken chain or missing link makes
                // the pair unreachable in the reference too.
                let mut bandwidth: Option<Bandwidth> = None;
                let mut here = target;
                let complete = loop {
                    if here == source {
                        break true;
                    }
                    if prev[here] == NO_NODE {
                        break false;
                    }
                    let parent = prev[here] as usize;
                    let key = if parent <= here { (parent, here) } else { (here, parent) };
                    match link_bandwidth.get(&key) {
                        Some(bw) => {
                            bandwidth = Some(bandwidth.map_or(*bw, |cur| cur.bottleneck(*bw)))
                        }
                        None => break false,
                    }
                    here = parent;
                };
                let (true, Some(bandwidth)) = (complete, bandwidth) else {
                    continue;
                };
                reference.push(PairProgram {
                    a: state.node_id(source).unwrap(),
                    b: state.node_id(target).unwrap(),
                    latency: celestial_types::Latency::from_micros(dist[target]).quantized_tenth_ms(),
                    bandwidth,
                });
            }
        }

        assert_eq!(programme.len(), reference.len(), "pair count at step {step}");
        for (got, want) in programme.iter().zip(&reference) {
            assert_eq!(got, want, "programme entry diverged at step {step}");
        }
        // Full coverage classes: gst↔gst, sat↔gst and sat↔sat all present.
        assert!(programme.iter().any(|p| p.a.is_ground_station() && p.b.is_ground_station()));
        assert!(programme.iter().any(|p| p.a.is_satellite() && p.b.is_ground_station()));
        assert!(programme.iter().any(|p| p.a.is_satellite() && p.b.is_satellite()));
    }
}

/// A satellite-hosted workload: on every constellation update, pick two
/// running active satellites and exchange a message between them, verifying
/// that the emulated network programs active-sat↔active-sat pairs.
#[derive(Default)]
struct SatelliteToSatellite {
    sent: u64,
    delivered: u64,
    latency_checks: u64,
}

impl GuestApplication for SatelliteToSatellite {
    fn on_constellation_update(&mut self, ctx: &mut AppContext<'_>) {
        let Some(state) = ctx.database().state() else { return };
        let running: Vec<NodeId> = state
            .active_satellites()
            .into_iter()
            .map(NodeId::Satellite)
            .filter(|sat| ctx.is_running(*sat))
            .take(2)
            .collect();
        let [a, b] = running.as_slice() else { return };
        let (a, b) = (*a, *b);
        // The pair must be programmed into the emulation, and its emulated
        // latency must match the constellation calculation up to the 0.1 ms
        // tc quantization.
        let emulated = ctx.emulated_latency(a, b).expect("sat↔sat pair is programmed");
        let expected = ctx.expected_latency(a, b).expect("sat↔sat pair is connected");
        let drift_ms = (emulated.as_millis_f64() - expected.as_millis_f64()).abs();
        assert!(drift_ms <= 0.051, "sat↔sat latency drifts by {drift_ms} ms");
        self.latency_checks += 1;
        self.sent += 1;
        ctx.send(a, b, 1_000, vec![7]);
    }

    fn on_message(&mut self, message: &Packet, _ctx: &mut AppContext<'_>) {
        if message.payload.first() == Some(&7) {
            self.delivered += 1;
        }
    }
}

#[test]
fn active_satellites_can_exchange_messages() {
    let config = TestbedConfig::builder()
        .seed(11)
        .update_interval_s(2.0)
        .duration_s(40.0)
        .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .hosts(vec![HostConfig::default(); 2])
        .build()
        .expect("valid config");
    let mut testbed = Testbed::new(&config).expect("testbed");
    let mut app = SatelliteToSatellite::default();
    testbed.run(&mut app).expect("run");
    assert!(app.latency_checks > 5, "only {} latency checks", app.latency_checks);
    assert!(app.sent > 5, "only {} sat↔sat messages sent", app.sent);
    assert!(
        app.delivered >= app.sent / 2,
        "only {}/{} sat↔sat messages delivered",
        app.delivered,
        app.sent
    );
    assert_eq!(testbed.failed_recoveries(), 0);
}

#[test]
fn floyd_warshall_configuration_works_end_to_end() {
    // A tiny constellation configured to use the Floyd–Warshall all-pairs
    // algorithm exercises the alternative code path through the public API.
    let config = TestbedConfig::builder()
        .seed(9)
        .update_interval_s(5.0)
        .duration_s(20.0)
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 8, 8)))
        .ground_station(GroundStation::new("quito", Geodetic::new(-0.18, -78.47, 0.0)))
        .ground_station(GroundStation::new("nairobi", Geodetic::new(-1.29, 36.82, 0.0)))
        .path_algorithm(celestial_constellation::PathAlgorithm::FloydWarshall)
        .hosts(vec![HostConfig::default()])
        .build()
        .expect("valid config");
    let constellation = celestial_constellation::Constellation::builder()
        .shells(config.shells.iter().cloned())
        .ground_stations(config.ground_stations.iter().cloned())
        .path_algorithm(config.path_algorithm)
        .build()
        .expect("constellation");
    let state = constellation.state_at(0.0).expect("state");
    let paths = state.all_pairs_paths();
    assert_eq!(paths.node_count(), 66);

    let mut testbed = Testbed::new(&config).expect("testbed");
    struct Nop;
    impl GuestApplication for Nop {}
    testbed.run(&mut Nop).expect("run");
    assert!(testbed.coordinator().update_count() >= 4);
}

/// A raw `shards = N` TOML drives a sharded testbed end to end: the plane
/// comes up sharded, traffic flows, and the `/info`-visible shard figures
/// are populated (see `docs/SHARDING.md`).
#[test]
fn toml_shards_key_drives_a_sharded_run_end_to_end() {
    let toml = r#"
seed = 7
update-interval-s = 2.0
duration-s = 20.0
shards = 3
host-latency-us = 250

[bounding-box]
lat-min = -5.0
lat-max = 20.0
lon-min = -10.0
lon-max = 20.0

[[shell]]
altitude-km = 550.0
inclination-deg = 53.0
planes = 24
satellites-per-plane = 22

[[ground-station]]
name = "accra"
lat = 5.6037
lon = -0.187

[[ground-station]]
name = "abuja"
lat = 9.0765
lon = 7.3986
"#;
    let config = TestbedConfig::from_toml(toml).expect("valid sharded config");
    assert_eq!(config.shards, Some(3));
    assert_eq!(config.hosts.len(), 3, "shards provisions one host per shard");
    let mut testbed = Testbed::new(&config).expect("testbed");

    struct Ping {
        accra: Option<NodeId>,
        abuja: Option<NodeId>,
        answered: u32,
    }
    impl GuestApplication for Ping {
        fn on_start(&mut self, ctx: &mut AppContext<'_>) {
            self.accra = ctx.ground_station("accra");
            self.abuja = ctx.ground_station("abuja");
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
        fn on_timer(&mut self, _tag: u64, ctx: &mut AppContext<'_>) {
            ctx.send(self.accra.unwrap(), self.abuja.unwrap(), 1_250, Vec::new());
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
        fn on_message(&mut self, message: &Packet, ctx: &mut AppContext<'_>) {
            if message.destination == self.abuja.unwrap() {
                ctx.send(self.abuja.unwrap(), self.accra.unwrap(), 1_250, Vec::new());
            } else {
                self.answered += 1;
            }
        }
    }
    let mut app = Ping { accra: None, abuja: None, answered: 0 };
    testbed.run(&mut app).expect("run");
    assert!(app.answered >= 10, "only {} pings answered", app.answered);

    let plane = testbed.network().as_sharded().expect("sharded plane");
    assert_eq!(plane.shards().len(), 3);
    assert!(plane.pair_counts().iter().sum::<usize>() > 0);
    let report = testbed
        .coordinator()
        .database()
        .shard_report()
        .expect("shard report");
    assert_eq!(report.pairs, plane.pair_counts());
    assert_eq!(report.apply_ns.len(), 3);
}

fn fault_edge_config() -> TestbedConfig {
    TestbedConfig::builder()
        .seed(5)
        .update_interval_s(2.0)
        .duration_s(30.0)
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .hosts(vec![HostConfig::default()])
        .build()
        .expect("valid config")
}

struct Nothing;
impl GuestApplication for Nothing {}

/// A `recover_at` beyond the experiment end must not be an error: the run
/// completes its full schedule, the machine simply stays down, and the books
/// record one still-active fault and no failed recovery.
#[test]
fn recovery_beyond_the_experiment_end_leaves_the_machine_down() {
    use celestial_machines::{FaultEvent, FaultKind};
    use celestial_types::time::SimInstant;

    let config = fault_edge_config();
    let mut reference = Testbed::new(&config).expect("testbed");
    reference.run(&mut Nothing).expect("run");

    let accra = NodeId::ground_station(0);
    let mut testbed = Testbed::new(&config).expect("testbed");
    testbed.schedule_faults([FaultEvent {
        node: accra,
        at: SimInstant::from_secs_f64(10.0),
        kind: FaultKind::CrashAndReboot,
        recover_at: Some(SimInstant::from_secs_f64(100.0)),
    }]);
    testbed.run(&mut Nothing).expect("run");

    let host = testbed.managers().iter().find(|m| m.has_machine(accra)).expect("host");
    assert!(!host.is_running(accra), "recovery past the end must not fire");
    assert_eq!(testbed.active_faults(), 1);
    assert_eq!(testbed.failed_recoveries(), 0);
    assert_eq!(testbed.ignored_faults(), 0);
    // The outage does not cut the run short: same epoch schedule as the
    // fault-free reference.
    assert_eq!(testbed.coordinator().update_count(), reference.coordinator().update_count());
}

/// Faults scheduled entirely beyond the end never fire at all — for the
/// machine *and* the books, the run is indistinguishable from a fault-free
/// one.
#[test]
fn faults_beyond_the_experiment_end_never_fire() {
    use celestial_machines::{FaultEvent, FaultKind};
    use celestial_types::time::SimInstant;

    let config = fault_edge_config();
    let accra = NodeId::ground_station(0);
    let mut testbed = Testbed::new(&config).expect("testbed");
    testbed.schedule_faults([
        FaultEvent {
            node: accra,
            at: SimInstant::from_secs_f64(100.0),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(110.0)),
        },
        FaultEvent {
            node: accra,
            at: SimInstant::from_secs_f64(200.0),
            kind: FaultKind::Degradation { cpu_share_percent: 10 },
            recover_at: None,
        },
    ]);
    testbed.run(&mut Nothing).expect("run");

    let host = testbed.managers().iter().find(|m| m.has_machine(accra)).expect("host");
    assert!(host.is_running(accra));
    assert!((host.cpu_share(accra).unwrap() - 1.0).abs() < 1e-9);
    assert_eq!(testbed.active_faults(), 0);
    assert_eq!(testbed.ignored_faults(), 0);
    assert_eq!(testbed.failed_recoveries(), 0);
}
