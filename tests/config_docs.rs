//! Smoke tests tying the documented configuration format to the code: the
//! TOML example embedded in `docs/CONFIG.md` must parse, produce the §4
//! testbed shape, and survive a serde round trip; the `[chaos]` defaults
//! documented in `docs/CHAOS.md` must match `ChaosConfig::default()`.

use celestial::config::{
    ChaosConfig, PathsConfig, ScenarioBlock, ScenarioConfig, ServeConfig, TenantsConfig,
    TestbedConfig,
};
use celestial_constellation::PathAlgorithm;

/// The documentation page this test validates.
const CONFIG_DOC: &str = include_str!("../docs/CONFIG.md");

/// Extracts the first fenced ```toml block from the documentation.
fn documented_example() -> &'static str {
    let start = CONFIG_DOC
        .find("```toml\n")
        .expect("docs/CONFIG.md contains a ```toml example")
        + "```toml\n".len();
    let end = CONFIG_DOC[start..]
        .find("```")
        .expect("the toml fence is closed")
        + start;
    &CONFIG_DOC[start..end]
}

#[test]
fn the_documented_example_parses_to_the_meetup_testbed() {
    let config = TestbedConfig::from_toml(documented_example()).expect("documented TOML parses");
    assert_eq!(config.seed, 2022);
    assert_eq!(config.update_interval_s, 2.0);
    assert_eq!(config.duration_s, 45.0);
    assert_eq!(config.path_algorithm, PathAlgorithm::Dijkstra);
    assert_eq!(config.hosts.len(), 3);
    assert_eq!(config.shells.len(), 1);
    assert_eq!(config.shells[0].satellite_count(), 1584);
    assert_eq!(config.ground_stations.len(), 2);
    assert_eq!(config.ground_stations[0].name, "accra");
    // The bounding box covers West Africa but not Johannesburg.
    assert!(config
        .bounding_box
        .contains(&celestial_types::geo::Geodetic::new(5.6, -0.19, 0.0)));
    assert!(!config
        .bounding_box
        .contains(&celestial_types::geo::Geodetic::new(-26.2, 28.0, 0.0)));
}

#[test]
fn the_documented_example_round_trips_through_serde() {
    let config = TestbedConfig::from_toml(documented_example()).expect("documented TOML parses");
    let json = serde_json::to_string(&config).expect("serializes");
    let back: TestbedConfig = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(config, back);
}

/// The chaos documentation page, whose `[chaos]` example lists every key
/// with its default value.
const CHAOS_DOC: &str = include_str!("../docs/CHAOS.md");

#[test]
fn the_documented_chaos_defaults_match_the_code() {
    let start = CHAOS_DOC
        .find("```toml\n")
        .expect("docs/CHAOS.md contains a ```toml example")
        + "```toml\n".len();
    let end = CHAOS_DOC[start..].find("```").expect("the toml fence is closed") + start;
    let block = &CHAOS_DOC[start..end];
    assert!(block.contains("[chaos]"), "the example documents the [chaos] table");
    let toml = format!(
        "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2\n\n{block}"
    );
    let config = TestbedConfig::from_toml(&toml).expect("documented chaos TOML parses");
    // The documented values are exactly the engine's defaults.
    assert_eq!(config.chaos, Some(ChaosConfig::default()));
}

/// The serving-plane documentation page, whose `[serve]` example lists
/// every key with its default value.
const SERVE_DOC: &str = include_str!("../docs/SERVE.md");

#[test]
fn the_documented_serve_defaults_match_the_code() {
    let start = SERVE_DOC
        .find("```toml\n")
        .expect("docs/SERVE.md contains a ```toml example")
        + "```toml\n".len();
    let end = SERVE_DOC[start..].find("```").expect("the toml fence is closed") + start;
    let block = &SERVE_DOC[start..end];
    assert!(block.contains("[serve]"), "the example documents the [serve] table");
    let toml = format!(
        "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2\n\n{block}"
    );
    let config = TestbedConfig::from_toml(&toml).expect("documented serve TOML parses");
    // The documented values are exactly the serving plane's defaults.
    assert_eq!(config.serve, Some(ServeConfig::default()));
    // A config with the serving plane on still round-trips through serde.
    let json = serde_json::to_string(&config).expect("serializes");
    let back: TestbedConfig = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(config, back);
}

/// The multi-tenancy documentation page, whose `[tenants]` example lists
/// every key with its default value.
const TENANTS_DOC: &str = include_str!("../docs/TENANTS.md");

#[test]
fn the_documented_tenants_defaults_match_the_code() {
    let start = TENANTS_DOC
        .find("```toml\n")
        .expect("docs/TENANTS.md contains a ```toml example")
        + "```toml\n".len();
    let end = TENANTS_DOC[start..].find("```").expect("the toml fence is closed") + start;
    let block = &TENANTS_DOC[start..end];
    assert!(block.contains("[tenants]"), "the example documents the [tenants] table");
    let toml = format!(
        "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2\n\n{block}"
    );
    let config = TestbedConfig::from_toml(&toml).expect("documented tenants TOML parses");
    // The documented values are exactly the fan-out's defaults.
    assert_eq!(config.tenants, Some(TenantsConfig::default()));
    // A config with tenancy on still round-trips through serde.
    let json = serde_json::to_string(&config).expect("serializes");
    let back: TestbedConfig = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(config, back);
}

/// The mega-constellation documentation page, whose `[paths]` example
/// lists every key with its default value.
const MEGASCALE_DOC: &str = include_str!("../docs/MEGASCALE.md");

#[test]
fn the_documented_paths_defaults_match_the_code() {
    let start = MEGASCALE_DOC
        .find("```toml\n")
        .expect("docs/MEGASCALE.md contains a ```toml example")
        + "```toml\n".len();
    let end = MEGASCALE_DOC[start..].find("```").expect("the toml fence is closed") + start;
    let block = &MEGASCALE_DOC[start..end];
    assert!(block.contains("[paths]"), "the example documents the [paths] table");
    let toml = format!(
        "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2\n\n{block}"
    );
    let config = TestbedConfig::from_toml(&toml).expect("documented paths TOML parses");
    // The documented values are exactly the solve scope's defaults.
    assert_eq!(config.paths, Some(PathsConfig::default()));
    // A config with the scope tuned still round-trips through serde.
    let json = serde_json::to_string(&config).expect("serializes");
    let back: TestbedConfig = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(config, back);
}

/// The scenario-engine documentation page, whose `[scenario]` example lists
/// every key of the table and of a block with its default value.
const SCENARIOS_DOC: &str = include_str!("../docs/SCENARIOS.md");

#[test]
fn the_documented_scenario_defaults_match_the_code() {
    let start = SCENARIOS_DOC
        .find("```toml\n")
        .expect("docs/SCENARIOS.md contains a ```toml example")
        + "```toml\n".len();
    let end = SCENARIOS_DOC[start..].find("```").expect("the toml fence is closed") + start;
    let block = &SCENARIOS_DOC[start..end];
    assert!(block.contains("[scenario]"), "the example documents the [scenario] table");
    assert!(
        block.contains("[[scenario.block]]"),
        "the example documents a [[scenario.block]]"
    );
    // A scenario needs a ground station to attach its blocks to.
    let toml = format!(
        "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2\n\n\
         [[ground-station]]\nname = \"accra\"\nlat = 5.6037\nlon = -0.187\n\n{block}"
    );
    let config = TestbedConfig::from_toml(&toml).expect("documented scenario TOML parses");
    // The documented values are exactly the generator's defaults: one
    // tenant, one all-default block.
    assert_eq!(
        config.scenario,
        Some(ScenarioConfig {
            tenants: 1,
            blocks: vec![ScenarioBlock::default()],
        })
    );
    // A config with the generator on still round-trips through serde.
    let json = serde_json::to_string(&config).expect("serializes");
    let back: TestbedConfig = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(config, back);
}

#[test]
fn defaults_listed_in_the_documentation_hold() {
    let minimal = "\n[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2\n";
    let config = TestbedConfig::from_toml(minimal).expect("minimal config parses");
    assert_eq!(config.seed, 0);
    assert_eq!(config.update_interval_s, 2.0);
    assert_eq!(config.duration_s, 600.0);
    assert_eq!(config.utilization_sample_interval_s, 1.0);
    assert_eq!(config.path_algorithm, PathAlgorithm::Dijkstra);
    assert!(!config.ballooning);
    assert_eq!(config.hosts.len(), 3);
    assert_eq!(config.hosts[0].cores, 32);
    assert_eq!(config.hosts[0].memory_mib, 32 * 1024);
    let shell = &config.shells[0];
    assert_eq!(shell.resources.vcpus, 2);
    assert_eq!(shell.resources.memory_mib, 512);
    assert_eq!(shell.min_elevation_deg, 25.0);
    assert_eq!(
        shell.isl_bandwidth,
        celestial_types::Bandwidth::from_gbps(10)
    );
}
