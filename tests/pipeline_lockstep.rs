//! Lockstep tests of the pipelined epoch engine: a pipelined run must be
//! **bit-identical** to a synchronous run — the same `ProgrammeDelta`
//! sequence, the same path matrices, the same `/info` counters at every
//! epoch — and a machine failure mid-epoch must never observe the
//! precomputed next epoch early. This is the determinism contract of
//! `docs/PIPELINE.md`.

use celestial::config::TestbedConfig;
use celestial::pipeline::PipelineMode;
use celestial::testbed::{AppContext, GuestApplication, Testbed};
use celestial::Coordinator;
use celestial_constellation::{BoundingBox, Constellation, GroundStation, Shell};
use celestial_machines::{FaultEvent, FaultKind};
use celestial_netem::packet::Packet;
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::ids::NodeId;
use celestial_types::time::{SimDuration, SimInstant};

fn constellation() -> Constellation {
    Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation")
}

/// Coordinator-level lockstep across well over 100 epochs: every observable
/// of every update — the machine/link diff, the programme delta, the path
/// matrix, the installed state and the `/info` counters — must be
/// bit-identical between the two modes.
#[test]
fn pipelined_coordinator_is_bit_identical_to_synchronous_across_100_epochs() {
    let interval = SimDuration::from_secs(2);
    let mut sync = Coordinator::new(constellation(), interval);
    let mut pipe = Coordinator::with_mode(constellation(), interval, PipelineMode::Pipelined);
    assert_eq!(pipe.pipeline_mode(), PipelineMode::Pipelined);

    let mut t = SimInstant::EPOCH;
    for epoch in 0..105u32 {
        let seconds = t.as_secs_f64();
        let diff_sync = sync.update(seconds).expect("sync update");
        let diff_pipe = pipe.update(seconds).expect("pipelined update");
        assert_eq!(diff_sync, diff_pipe, "diff diverged at epoch {epoch}");
        assert_eq!(
            sync.programme_delta(),
            pipe.programme_delta(),
            "programme delta diverged at epoch {epoch}"
        );
        assert_eq!(
            sync.last_path_solve(),
            pipe.last_path_solve(),
            "solve stats diverged at epoch {epoch}"
        );
        assert_eq!(
            sync.database().paths(),
            pipe.database().paths(),
            "path matrix diverged at epoch {epoch}"
        );
        assert_eq!(
            sync.database().state(),
            pipe.database().state(),
            "installed state diverged at epoch {epoch}"
        );
        assert_eq!(
            sync.database().programme_stats(),
            pipe.database().programme_stats(),
            "/info programme counters diverged at epoch {epoch}"
        );
        t = t + interval;
    }

    assert_eq!(sync.update_count(), 105);
    assert_eq!(pipe.update_count(), 105);
    assert_eq!(
        sync.network_programme().unwrap(),
        pipe.network_programme().unwrap(),
        "final full programme diverged"
    );
    // Every epoch after the cold start was genuinely served from the
    // background precompute — the lockstep above exercised the pipeline, not
    // a fallback path.
    let stats = pipe.pipeline_stats();
    assert_eq!(stats.handovers, 105);
    assert_eq!(stats.precomputed, 104);
    assert_eq!(stats.mispredicted, 0);
}

fn testbed_config(mode: PipelineMode, duration_s: f64) -> TestbedConfig {
    TestbedConfig::builder()
        .seed(11)
        .update_interval_s(1.0)
        .duration_s(duration_s)
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .pipeline(mode)
        .build()
        .expect("valid config")
}

fn faults() -> Vec<FaultEvent> {
    // Mid-epoch instants on purpose: failures land while the next epoch is
    // already being precomputed in the background.
    vec![
        FaultEvent {
            node: NodeId::ground_station(1),
            at: SimInstant::from_secs_f64(5.3),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(9.7)),
        },
        FaultEvent {
            node: NodeId::satellite(0, 5),
            at: SimInstant::from_secs_f64(20.5),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(24.1)),
        },
        FaultEvent {
            node: NodeId::ground_station(0),
            at: SimInstant::from_secs_f64(60.9),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(63.4)),
        },
    ]
}

/// A ping-pong application that also journals every constellation update:
/// the `/info`-visible counters, the emulated and expected latency of the
/// ground-station pair, and the machine states it can observe.
#[derive(Default)]
struct Journal {
    accra: Option<NodeId>,
    abuja: Option<NodeId>,
    rtts_ms: Vec<f64>,
    sent_at: std::collections::BTreeMap<u64, SimInstant>,
    next_seq: u64,
    epochs: Vec<String>,
}

impl Journal {
    fn ping(&mut self, ctx: &mut AppContext<'_>) {
        let (Some(a), Some(b)) = (self.accra, self.abuja) else { return };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent_at.insert(seq, ctx.now());
        ctx.send(a, b, 1_250, seq.to_le_bytes().to_vec());
    }

    fn journal_epoch(&mut self, ctx: &mut AppContext<'_>) {
        let stats = ctx.database().programme_stats();
        let line = format!(
            "t={:?} stats={:?} emulated={:?} expected={:?} accra_up={} abuja_up={}",
            ctx.database().updated_at_seconds(),
            stats.map(|s| (s.epoch, s.pairs, s.delta_ops)),
            ctx.emulated_latency(self.accra.unwrap(), self.abuja.unwrap()),
            ctx.expected_latency(self.accra.unwrap(), self.abuja.unwrap()),
            ctx.is_running(self.accra.unwrap()),
            ctx.is_running(self.abuja.unwrap()),
        );
        self.epochs.push(line);
    }
}

impl GuestApplication for Journal {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.accra = ctx.ground_station("accra");
        self.abuja = ctx.ground_station("abuja");
        self.ping(ctx);
        ctx.set_timer(SimDuration::from_millis(1_000), 0);
    }

    fn on_constellation_update(&mut self, ctx: &mut AppContext<'_>) {
        self.journal_epoch(ctx);
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut AppContext<'_>) {
        self.ping(ctx);
        ctx.set_timer(SimDuration::from_millis(1_000), 0);
    }

    fn on_message(&mut self, message: &Packet, ctx: &mut AppContext<'_>) {
        let seq = u64::from_le_bytes(message.payload[..8].try_into().unwrap());
        if message.destination == self.abuja.unwrap() {
            ctx.send(self.abuja.unwrap(), self.accra.unwrap(), 1_250, message.payload.to_vec());
        } else if let Some(sent) = self.sent_at.remove(&seq) {
            self.rtts_ms.push(ctx.now().duration_since(sent).as_millis_f64());
        }
    }
}

/// Full-testbed lockstep with faults injected: 105 epochs, three mid-epoch
/// crashes with recoveries. Every journalled epoch observation, every RTT
/// and every end-of-run counter must match between the two modes.
#[test]
fn pipelined_testbed_with_faults_matches_synchronous_run() {
    let mut journals: Vec<Journal> = Vec::new();
    let mut counters = Vec::new();
    for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
        let config = testbed_config(mode, 105.0);
        let mut testbed = Testbed::new(&config).expect("testbed");
        testbed.schedule_faults(faults());
        let mut app = Journal::default();
        testbed.run(&mut app).expect("run");
        assert_eq!(
            testbed.coordinator().pipeline_mode(),
            mode,
            "config mode not applied"
        );
        counters.push((
            testbed.message_counters(),
            testbed.failed_recoveries(),
            testbed.coordinator().update_count(),
            testbed.network().counters(),
        ));
        journals.push(app);
    }

    let (sync, pipe) = (&journals[0], &journals[1]);
    assert!(sync.epochs.len() >= 100, "only {} epochs journalled", sync.epochs.len());
    assert_eq!(sync.epochs.len(), pipe.epochs.len());
    for (epoch, (a, b)) in sync.epochs.iter().zip(&pipe.epochs).enumerate() {
        assert_eq!(a, b, "journal diverged at epoch {epoch}");
    }
    assert_eq!(sync.rtts_ms, pipe.rtts_ms, "RTT sequence diverged");
    assert!(!sync.rtts_ms.is_empty());
    assert_eq!(counters[0], counters[1], "end-of-run counters diverged");
}

/// Regression: a machine failure mid-epoch must act on the *current* epoch's
/// world view, even though the next epoch is already precomputed in the
/// background — the testbed must never observe next-epoch state early.
#[test]
fn mid_epoch_fault_does_not_observe_next_epoch_state_early() {
    struct MidEpoch {
        accra: Option<NodeId>,
        abuja: Option<NodeId>,
        checks: u32,
        failed_at: Option<SimInstant>,
    }
    impl GuestApplication for MidEpoch {
        fn on_start(&mut self, ctx: &mut AppContext<'_>) {
            self.accra = ctx.ground_station("accra");
            self.abuja = ctx.ground_station("abuja");
            // Timers at odd instants: boundaries are at even seconds (2 s
            // update interval), so every firing lands mid-epoch.
            ctx.set_timer(SimDuration::from_millis(5_000), 1);
        }

        fn on_timer(&mut self, _tag: u64, ctx: &mut AppContext<'_>) {
            let now = ctx.now().as_secs_f64();
            // The database must still hold the epoch of the *last* boundary:
            // with a 2 s interval, floor(now / 2) * 2 — never the next
            // epoch, which the background worker has long finished.
            let expected_epoch_t = (now / 2.0).floor() * 2.0;
            assert_eq!(
                ctx.database().updated_at_seconds(),
                Some(expected_epoch_t),
                "epoch state from the future observed at t={now}"
            );
            if self.failed_at.is_none() {
                // Crash abuja mid-epoch; the failure must take effect
                // immediately in the current epoch's world.
                ctx.fail_machine(self.abuja.unwrap());
                self.failed_at = Some(ctx.now());
            }
            self.checks += 1;
            if self.checks == 1 {
                ctx.set_timer(SimDuration::from_millis(200), 2);
            } else if self.checks == 2 {
                assert!(!ctx.is_running(self.abuja.unwrap()), "failure not applied");
                ctx.reboot_machine(self.abuja.unwrap());
                ctx.set_timer(SimDuration::from_millis(4_000), 3);
            } else {
                assert!(ctx.is_running(self.abuja.unwrap()), "reboot not applied");
            }
        }
    }

    let config = TestbedConfig::builder()
        .seed(3)
        .update_interval_s(2.0)
        .duration_s(20.0)
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .pipeline(PipelineMode::Pipelined)
        .build()
        .expect("valid config");
    let mut testbed = Testbed::new(&config).expect("testbed");
    let mut app = MidEpoch {
        accra: None,
        abuja: None,
        checks: 0,
        failed_at: None,
    };
    testbed.run(&mut app).expect("run");
    assert_eq!(app.checks, 3, "not every mid-epoch check fired");
    // The pipeline really was ahead of the event loop the whole time.
    let stats = testbed.coordinator().pipeline_stats();
    assert!(stats.precomputed >= 8, "precompute never ran: {stats:?}");
    assert_eq!(stats.mispredicted, 0);
    assert_eq!(testbed.failed_recoveries(), 0);
}
