//! Steady-state allocation capacity of the multi-tenant fan-out
//! (`docs/TENANTS.md`): adding tenants to one epoch pipeline must not add
//! allocation churn. The shared epoch core (propagation buffers, snapshot
//! diff, path solve) already recycles; the per-tenant lanes (delta buffers,
//! programme mirrors) must recycle too, so the marginal allocation cost of
//! a tenant is a small fraction of a solo epoch and per-epoch counts stay
//! flat as the run ages.
//!
//! The test binary installs a counting global allocator, so everything runs
//! in ONE `#[test]` — parallel test threads would pollute the counter.

use celestial::pipeline::{EpochCompute, EpochPipeline, PipelineMode};
use celestial::Coordinator;
use celestial_constellation::{BoundingBox, Constellation, GroundStation, Shell};
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::time::SimDuration;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that counts allocation events. Reallocation
/// counts as one event; frees are not counted (growth is what churn looks
/// like).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const WARMUP_EPOCHS: u32 = 6;
const WINDOW_EPOCHS: u32 = 10;

fn constellation() -> Constellation {
    Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation")
}

/// Steady-state allocation events per epoch of the bare pipeline fan-out
/// (advance + recycle, no coordinator), measured over two consecutive
/// windows after warm-up.
fn pipeline_windows(tenants: usize) -> (u64, u64) {
    let mut compute = EpochCompute::new(constellation());
    compute.set_tenant_count(tenants);
    let mut pipeline = EpochPipeline::new(
        compute,
        PipelineMode::Synchronous,
        SimDuration::from_secs(1),
    );
    let mut epoch = 0u32;
    let mut run = |pipeline: &mut EpochPipeline, epochs: u32| {
        let before = allocations();
        for _ in 0..epochs {
            let bundle = pipeline.advance(f64::from(epoch)).expect("epoch");
            pipeline.recycle(bundle);
            epoch += 1;
        }
        allocations() - before
    };
    let _ = run(&mut pipeline, WARMUP_EPOCHS);
    let first = run(&mut pipeline, WINDOW_EPOCHS);
    let second = run(&mut pipeline, WINDOW_EPOCHS);
    (first, second)
}

/// Steady-state allocation events per epoch of a full coordinator fan-out
/// (lane replay, `/info` slices, diff extraction), two consecutive windows.
fn coordinator_windows(tenants: usize) -> (u64, u64) {
    let names = (0..tenants).map(|i| format!("tenant-{i}")).collect();
    let mut coordinator = Coordinator::with_fanout(
        constellation(),
        SimDuration::from_secs(1),
        PipelineMode::Synchronous,
        None,
        names,
    );
    let mut epoch = 0u32;
    let mut run = |coordinator: &mut Coordinator, epochs: u32| {
        let before = allocations();
        for _ in 0..epochs {
            coordinator.update(f64::from(epoch)).expect("update");
            epoch += 1;
        }
        allocations() - before
    };
    let _ = run(&mut coordinator, WARMUP_EPOCHS);
    let first = run(&mut coordinator, WINDOW_EPOCHS);
    let second = run(&mut coordinator, WINDOW_EPOCHS);
    (first, second)
}

#[test]
fn tenant_fanout_does_not_add_steady_state_allocation_churn() {
    // --- Bare pipeline: the fan-out path proper. ---
    let (solo_1, solo_2) = pipeline_windows(1);
    let (fleet_1, fleet_2) = pipeline_windows(4);
    println!(
        "pipeline allocs/window: solo {solo_1}/{solo_2}, 4 tenants {fleet_1}/{fleet_2}"
    );

    // Per-epoch counts must be flat as the run ages: recycling means the
    // second window costs no more than the first (small jitter allowed —
    // the programme delta varies epoch to epoch).
    let flat = |label: &str, first: u64, second: u64| {
        assert!(
            second <= first + first / 4 + 32,
            "{label}: allocation churn grows across windows ({first} -> {second})"
        );
    };
    flat("pipeline solo", solo_1, solo_2);
    flat("pipeline fleet", fleet_1, fleet_2);

    // Three additional tenants must cost only a small fraction of a solo
    // epoch: the shared core (propagation, diff, solve) is not re-run and
    // the per-tenant lane buffers recycle.
    let marginal = fleet_2.saturating_sub(solo_2) / 3;
    assert!(
        marginal <= solo_2 / 4 + 32,
        "pipeline: marginal per-tenant allocs {marginal}/epoch-window vs solo {solo_2}"
    );

    // --- Full coordinator: fan-out plus lane replay and /info slices. ---
    let (csolo_1, csolo_2) = coordinator_windows(1);
    let (cfleet_1, cfleet_2) = coordinator_windows(4);
    println!(
        "coordinator allocs/window: solo {csolo_1}/{csolo_2}, 4 tenants {cfleet_1}/{cfleet_2}"
    );
    flat("coordinator solo", csolo_1, csolo_2);
    flat("coordinator fleet", cfleet_1, cfleet_2);
    let marginal = cfleet_2.saturating_sub(csolo_2) / 3;
    assert!(
        marginal <= csolo_2 / 4 + 64,
        "coordinator: marginal per-tenant allocs {marginal}/epoch-window vs solo {csolo_2}"
    );
}
