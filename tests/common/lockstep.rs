//! The lockstep harness: a journalling guest application plus run/compare
//! helpers that capture **everything a run observes** as one comparable
//! value. `tests/shard_lockstep.rs` uses it to prove the sharded plane
//! bit-identical to the global network; `tests/chaos_convergence.rs` uses it
//! to prove chaos runs deterministic and convergent (`docs/CHAOS.md`).

use celestial::config::{
    ScenarioBlock, ScenarioBlockKind, ScenarioConfig, ServeConfig, TenantsConfig, TestbedConfig,
};
use celestial_apps::ScenarioTenant;
use celestial::pipeline::PipelineMode;
use celestial::testbed::{AppContext, GuestApplication, Testbed};
use celestial::Coordinator;
use celestial_types::ids::TenantId;
use celestial_constellation::Constellation;
use celestial_serve::ServePlane;
use httpd::Client;
use celestial_constellation::{BoundingBox, GroundStation, Shell};
use celestial_machines::FaultEvent;
use celestial_netem::packet::Packet;
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::ids::NodeId;
use celestial_types::time::{SimDuration, SimInstant};

/// The host counts to exercise, from `CELESTIAL_LOCKSTEP_HOSTS` (a comma
/// list, default `1,4`), which CI uses to split the 1-host and 4-host legs
/// into separate jobs.
pub fn host_matrix() -> Vec<u32> {
    let spec = std::env::var("CELESTIAL_LOCKSTEP_HOSTS").unwrap_or_else(|_| "1,4".to_owned());
    let hosts: Vec<u32> = spec
        .split(',')
        .filter_map(|part| part.trim().parse().ok())
        .filter(|&h| h >= 1)
        .collect();
    assert!(!hosts.is_empty(), "CELESTIAL_LOCKSTEP_HOSTS={spec:?} names no host count");
    hosts
}

/// The lockstep configuration: 12×16 +GRID shell over a West-Africa
/// bounding box, two ground stations, 1 s epochs. The deliberately large
/// 6 ms host latency makes the ground-station pair's few-millisecond targets
/// clamp, so the clamp accounting is exercised for real (and must agree
/// between the planes).
pub fn config(seed: u64, duration_s: f64, mode: PipelineMode, hosts: u32, sharded: bool) -> TestbedConfig {
    let mut builder = TestbedConfig::builder()
        .seed(seed)
        .update_interval_s(1.0)
        .duration_s(duration_s)
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .pipeline(mode)
        .host_latency_us(6_000)
        .hosts(vec![celestial::config::HostConfig::default(); hosts as usize]);
    if sharded {
        builder = builder.shards(hosts);
    }
    builder.build().expect("valid config")
}

/// Whether the megascale lockstep legs are enabled: they re-run the suites
/// on a 72×22 Starlink-class shell (1,584 satellites) with the scoped
/// solve pruning most source rows, which is too heavy for the default
/// `cargo test` pass. CI runs them in a dedicated release-mode leg with
/// `CELESTIAL_MEGASCALE=1` (see `docs/MEGASCALE.md`).
pub fn megascale_enabled() -> bool {
    std::env::var("CELESTIAL_MEGASCALE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The megascale lockstep configuration: the same ground stations, bounding
/// box and host latency as [`config`], on a 72×22 shell at a reduced epoch
/// count — enough boundaries for satellites to enter and leave the scope
/// while keeping a four-way lockstep comparison affordable.
pub fn megascale_config(
    seed: u64,
    duration_s: f64,
    mode: PipelineMode,
    hosts: u32,
    sharded: bool,
) -> TestbedConfig {
    let mut builder = TestbedConfig::builder()
        .seed(seed)
        .update_interval_s(1.0)
        .duration_s(duration_s)
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 72, 22)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .pipeline(mode)
        .host_latency_us(6_000)
        .hosts(vec![celestial::config::HostConfig::default(); hosts as usize]);
    if sharded {
        builder = builder.shards(hosts);
    }
    builder.build().expect("valid config")
}

/// A ping-pong application journalling every constellation update: the
/// `/info`-visible programme counters, the emulated and expected pair
/// latency, machine liveness, and the network-plane counters including the
/// clamp count.
#[derive(Default)]
pub struct Journal {
    accra: Option<NodeId>,
    abuja: Option<NodeId>,
    rtts_ms: Vec<f64>,
    sent_at: std::collections::BTreeMap<u64, SimInstant>,
    next_seq: u64,
    epochs: Vec<String>,
}

impl Journal {
    fn ping(&mut self, ctx: &mut AppContext<'_>) {
        let (Some(a), Some(b)) = (self.accra, self.abuja) else { return };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent_at.insert(seq, ctx.now());
        ctx.send(a, b, 1_250, seq.to_le_bytes().to_vec());
    }
}

impl GuestApplication for Journal {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.accra = ctx.ground_station("accra");
        self.abuja = ctx.ground_station("abuja");
        self.ping(ctx);
        ctx.set_timer(SimDuration::from_millis(1_000), 0);
    }

    fn on_constellation_update(&mut self, ctx: &mut AppContext<'_>) {
        let stats = ctx.database().programme_stats();
        let line = format!(
            "t={:?} stats={:?} emulated={:?} expected={:?} accra_up={} abuja_up={}",
            ctx.database().updated_at_seconds(),
            stats.map(|s| (s.epoch, s.pairs, s.delta_ops)),
            ctx.emulated_latency(self.accra.unwrap(), self.abuja.unwrap()),
            ctx.expected_latency(self.accra.unwrap(), self.abuja.unwrap()),
            ctx.is_running(self.accra.unwrap()),
            ctx.is_running(self.abuja.unwrap()),
        );
        self.epochs.push(line);
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut AppContext<'_>) {
        self.ping(ctx);
        ctx.set_timer(SimDuration::from_millis(1_000), 0);
    }

    fn on_message(&mut self, message: &Packet, ctx: &mut AppContext<'_>) {
        let seq = u64::from_le_bytes(message.payload[..8].try_into().unwrap());
        if message.destination == self.abuja.unwrap() {
            ctx.send(self.abuja.unwrap(), self.accra.unwrap(), 1_250, message.payload.to_vec());
        } else if let Some(sent) = self.sent_at.remove(&seq) {
            self.rtts_ms.push(ctx.now().duration_since(sent).as_millis_f64());
        }
    }
}

/// Everything a run observes that must be bit-identical across planes,
/// pipeline modes, and repeated runs.
#[derive(Debug, PartialEq)]
pub struct Observations {
    pub epochs: Vec<String>,
    pub rtts_ms: Vec<f64>,
    pub messages: (u64, u64),
    pub network: (u64, u64, u64),
    pub clamps: u64,
    pub failed_recoveries: u64,
    pub ignored_faults: u64,
    pub updates: u64,
}

/// Runs the journalling application over `config` plus manually scheduled
/// `faults` and captures the observations. Sharded runs additionally assert
/// the sharded plane's own consistency: the `/info`-visible per-shard pair
/// counts (maintained by the coordinator's partitioned merge walk) must
/// match what the shards actually hold, and every shard must have applied
/// its slice.
pub fn run_config(config: &TestbedConfig, faults: Vec<FaultEvent>) -> Observations {
    let mut testbed = Testbed::new(config).expect("testbed");
    testbed.schedule_faults(faults);
    let mut app = Journal::default();
    testbed.run(&mut app).expect("run");

    if let Some(shards) = config.shards {
        let plane = testbed.network().as_sharded().expect("sharded plane");
        let report = testbed
            .coordinator()
            .database()
            .shard_report()
            .expect("shard report surfaced");
        assert_eq!(report.pairs, plane.pair_counts(), "store/emulation shard counts diverged");
        assert_eq!(report.apply_ns.len() as u32, shards);
    } else {
        assert!(testbed.network().as_global().is_some());
        assert!(testbed.coordinator().database().shard_report().is_none());
    }

    Observations {
        epochs: app.epochs,
        rtts_ms: app.rtts_ms,
        messages: testbed.message_counters(),
        network: testbed.network().counters(),
        clamps: testbed.network().latency_clamp_count(),
        failed_recoveries: testbed.failed_recoveries(),
        ignored_faults: testbed.ignored_faults(),
        updates: testbed.coordinator().update_count(),
    }
}

/// Runs a fleet of `tenants` journalling applications over `config` and
/// captures the observations of the tenant at index `pinned`.
/// `noise_faults` are scheduled on every tenant **except** the pinned one,
/// so a lockstep comparison against a fault-free solo run proves tenant
/// isolation on top of bit-identity (see `docs/TENANTS.md`).
pub fn run_fleet_config(
    config: &TestbedConfig,
    tenants: u32,
    pinned: usize,
    noise_faults: Vec<FaultEvent>,
) -> Observations {
    let mut config = config.clone();
    config.tenants = Some(TenantsConfig {
        count: tenants,
        names: Vec::new(),
    });
    let mut testbed = Testbed::new(&config).expect("testbed");
    for index in 0..tenants as usize {
        if index != pinned {
            testbed.schedule_faults_for(TenantId(index as u32), noise_faults.clone());
        }
    }
    let mut apps: Vec<Journal> = (0..tenants).map(|_| Journal::default()).collect();
    let mut refs: Vec<&mut dyn GuestApplication> = apps
        .iter_mut()
        .map(|app| app as &mut dyn GuestApplication)
        .collect();
    testbed.run_fleet(&mut refs).expect("fleet run");

    let tenant = testbed.tenant(TenantId(pinned as u32));
    let app = apps.swap_remove(pinned);
    Observations {
        epochs: app.epochs,
        rtts_ms: app.rtts_ms,
        messages: tenant.message_counters(),
        network: tenant.network().counters(),
        clamps: tenant.network().latency_clamp_count(),
        failed_recoveries: tenant.failed_recoveries(),
        ignored_faults: tenant.ignored_faults(),
        updates: testbed.coordinator().update_count(),
    }
}

/// The deterministic routes of the serve leg: every info-API route class
/// plus a 404 and a 400, with the requester identity pinned via
/// `x-celestial-node` so replies do not depend on the peer address.
/// `/info` is deliberately absent — it reports wall-clock pipeline timings
/// and can never be bit-identical across runs.
pub const SERVE_ROUTES: &[(&str, &[(&str, &str)])] = &[
    ("/self", &[("x-celestial-node", "0.gst")]),
    ("/self", &[("x-celestial-node", "5.0")]),
    ("/shell/0", &[]),
    ("/sat/0/5", &[]),
    ("/gst/accra", &[]),
    ("/path/0.gst/1.gst", &[]),
    ("/bogus", &[]),
    ("/sat/x/1", &[]),
];

/// The serve leg's constellation: the same 12×16 +GRID shell and
/// ground-station pair as [`config`], built directly (no testbed) so the
/// coordinator can be stepped one epoch at a time with a serving plane
/// attached.
pub fn serve_constellation() -> Constellation {
    Constellation::builder()
        .shell(celestial_constellation::Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation")
}

/// Runs a coordinator in `mode` for `epochs` epochs with a live serving
/// plane answering from its snapshot store, requesting every
/// [`SERVE_ROUTES`] entry over HTTP after each boundary. Returns the journal
/// of `epoch route -> status body` lines; two runs observe the same world
/// exactly when their journals are bit-identical.
pub fn serve_journal(mode: PipelineMode, epochs: u32) -> Vec<String> {
    let interval = SimDuration::from_secs(1);
    let mut coordinator = Coordinator::with_mode(serve_constellation(), interval, mode);
    let store = coordinator.enable_snapshots();
    let plane = ServePlane::start(&ServeConfig::default(), store).expect("serve plane starts");
    let mut client = Client::connect(plane.addr()).expect("connect to serve plane");

    let mut journal = Vec::new();
    for epoch in 0..epochs {
        coordinator.update(f64::from(epoch)).expect("update");
        for (route, headers) in SERVE_ROUTES {
            let reply = client.get_with_headers(route, headers).expect("serve request");
            journal.push(format!(
                "e={} {route} -> {} {}",
                epoch + 1,
                reply.status,
                String::from_utf8_lossy(&reply.body),
            ));
        }
    }
    journal
}

/// Asserts two observation sets bit-identical, field by field, with
/// divergence-localising messages (`label` names the observed run).
pub fn assert_lockstep(label: &str, reference: &Observations, observed: &Observations) {
    assert_eq!(
        reference.epochs.len(),
        observed.epochs.len(),
        "{label} epoch count diverged"
    );
    for (epoch, (a, b)) in reference.epochs.iter().zip(&observed.epochs).enumerate() {
        assert_eq!(a, b, "{label} journal diverged at epoch {epoch}");
    }
    assert_eq!(reference.rtts_ms, observed.rtts_ms, "{label} RTTs diverged");
    assert_eq!(reference.messages, observed.messages, "{label} messages");
    assert_eq!(reference.network, observed.network, "{label} net counters");
    assert_eq!(reference.clamps, observed.clamps, "{label} clamp count");
    assert_eq!(
        reference.failed_recoveries, observed.failed_recoveries,
        "{label} failed recoveries"
    );
    assert_eq!(
        reference.ignored_faults, observed.ignored_faults,
        "{label} ignored faults"
    );
    assert_eq!(reference.updates, observed.updates, "{label} update count");
}

/// The scenario lockstep block set: one block of every kind, with
/// deliberately awkward intervals (30 ms, 250 ms, 333 ms) that never divide
/// the 1 s epochs, so flow-window accounting is exercised off the aligned
/// path. Stations are left positional except the failover pair, which is
/// wired backwards (primary accra, backup abuja) to cover explicit naming.
pub fn scenario_blocks() -> Vec<ScenarioBlock> {
    vec![
        ScenarioBlock {
            kind: ScenarioBlockKind::Cbr,
            name: "calls".to_owned(),
            population: 300,
            bitrate_bps: 2_600_000,
            interval_ms: 30.0,
            ..ScenarioBlock::default()
        },
        ScenarioBlock {
            kind: ScenarioBlockKind::Mobile,
            name: "riders".to_owned(),
            population: 200,
            ..ScenarioBlock::default()
        },
        ScenarioBlock {
            kind: ScenarioBlockKind::Iot,
            name: "buoys".to_owned(),
            population: 400,
            interval_ms: 333.0,
            burst_prob: 0.2,
            burst_factor: 8,
            ..ScenarioBlock::default()
        },
        ScenarioBlock {
            kind: ScenarioBlockKind::Cdn,
            name: "edge".to_owned(),
            population: 150,
            interval_ms: 250.0,
            hit_ratio: 0.85,
            ..ScenarioBlock::default()
        },
        ScenarioBlock {
            kind: ScenarioBlockKind::Failover,
            name: "backup".to_owned(),
            population: 100,
            sink: "accra".to_owned(),
            fallback: "abuja".to_owned(),
            ..ScenarioBlock::default()
        },
    ]
}

/// The scenario lockstep configuration: [`config`] plus a `[scenario]`
/// generator composing [`scenario_blocks`] into `tenants` generated tenants.
pub fn scenario_config(
    seed: u64,
    duration_s: f64,
    mode: PipelineMode,
    hosts: u32,
    sharded: bool,
    tenants: u32,
) -> TestbedConfig {
    let mut config = config(seed, duration_s, mode, hosts, sharded);
    config.scenario = Some(ScenarioConfig {
        tenants,
        blocks: scenario_blocks(),
    });
    config.validate().expect("valid scenario config");
    config
}

/// Captures one scenario tenant's observations: its per-epoch journal (all
/// block counters), probe latencies, and the tenant-scoped runtime counters.
fn scenario_observations(
    testbed: &Testbed,
    tenant: TenantId,
    app: &ScenarioTenant,
) -> Observations {
    let runtime = testbed.tenant(tenant);
    Observations {
        epochs: app.journal().to_vec(),
        rtts_ms: app.latencies_ms().to_vec(),
        messages: runtime.message_counters(),
        network: runtime.network().counters(),
        clamps: runtime.network().latency_clamp_count(),
        failed_recoveries: runtime.failed_recoveries(),
        ignored_faults: runtime.ignored_faults(),
        updates: testbed.coordinator().update_count(),
    }
}

/// Runs the generated tenant at `pinned` **solo**, fault-free: the fleet
/// config reduced to a single generated tenant, running the pinned tenant's
/// own generated application (same name, hence the same derived
/// `scenario.<tenant>.<block>` RNG streams as inside the fleet).
pub fn run_scenario_solo(config: &TestbedConfig, pinned: u32) -> Observations {
    let mut app = ScenarioTenant::for_index(config, pinned).expect("generate pinned tenant");
    let mut solo = config.clone();
    solo.scenario.as_mut().expect("scenario config").tenants = 1;
    let mut testbed = Testbed::new(&solo).expect("testbed");
    testbed.run(&mut app).expect("solo run");
    scenario_observations(&testbed, TenantId(0), &app)
}

/// Runs the full generated scenario fleet with `noise_faults` scheduled on
/// every tenant **except** `pinned`, and captures the pinned tenant's
/// observations (compare against [`run_scenario_solo`] for the isolation
/// contract, `docs/SCENARIOS.md`).
pub fn run_scenario_fleet(
    config: &TestbedConfig,
    pinned: usize,
    noise_faults: Vec<FaultEvent>,
) -> Observations {
    let tenants = config.scenario.as_ref().expect("scenario config").tenants;
    let mut testbed = Testbed::new(config).expect("testbed");
    for index in 0..tenants as usize {
        if index != pinned {
            testbed.schedule_faults_for(TenantId(index as u32), noise_faults.clone());
        }
    }
    let mut apps = ScenarioTenant::generate(config).expect("generate fleet");
    let mut refs: Vec<&mut dyn GuestApplication> = apps
        .iter_mut()
        .map(|app| app as &mut dyn GuestApplication)
        .collect();
    testbed.run_fleet(&mut refs).expect("fleet run");
    scenario_observations(&testbed, TenantId(pinned as u32), &apps[pinned])
}
