//! Shared harness for the integration tests. Each integration-test binary
//! compiles its own copy via `mod common;`, so not every binary uses every
//! helper.
#![allow(dead_code)]

pub mod lockstep;
