//! Convergence and determinism guarantees of the chaos engine
//! (`docs/CHAOS.md`), across ≥ 5 chaos seeds in all four mode combinations
//! — {global, sharded} × {synchronous, pipelined}:
//!
//! 1. **Convergence** — once every chaos window has recovered (the engine
//!    schedules nothing past `duration − 2·interval`), the network programme
//!    is bit-identical to a fault-free reference run
//!    (`celestial::invariants::programme_divergence`).
//! 2. **No uncapped pairs** — no programme ever contains a
//!    `Bandwidth::INFINITY` entry, checked per epoch under an active link
//!    flap storm and on every final programme
//!    (`celestial::invariants::check_no_uncapped`).
//! 3. **Bit-reproducibility** — a chaos run's full observable history
//!    (journals, RTTs, counters) is identical across repeated runs, planes,
//!    and pipeline modes, i.e. chaos is a pure function of the seed.
//!
//! The seed matrix is driven by `CELESTIAL_CHAOS_SEEDS` (a comma list,
//! default `11,23,37,41,59`), which CI uses to split seed legs into
//! separate jobs.

mod common;

use common::lockstep::{assert_lockstep, config, run_config};

use celestial::config::{ChaosConfig, TestbedConfig};
use celestial::coordinator::PairProgram;
use celestial::invariants::{check_no_uncapped, programme_divergence};
use celestial::pipeline::PipelineMode;
use celestial::testbed::Testbed;
use celestial::Coordinator;
use celestial_constellation::{BoundingBox, Constellation, GroundStation, LinkSuppression, Shell};
use celestial_machines::chaos::{ChaosEngine, ChaosSpec, ChaosTopology};
use celestial_sgp4::WalkerShell;
use celestial_sim::SimRng;
use celestial_types::geo::Geodetic;
use celestial_types::time::SimDuration;

const DURATION_S: f64 = 60.0;

/// The chaos seeds to exercise, from `CELESTIAL_CHAOS_SEEDS`.
fn seeds() -> Vec<u64> {
    let spec = std::env::var("CELESTIAL_CHAOS_SEEDS").unwrap_or_else(|_| "11,23,37,41,59".to_owned());
    let seeds: Vec<u64> = spec
        .split(',')
        .filter_map(|part| part.trim().parse().ok())
        .collect();
    assert!(!seeds.is_empty(), "CELESTIAL_CHAOS_SEEDS={spec:?} names no seed");
    seeds
}

/// The four mode combinations: (label, pipeline mode, hosts, sharded). All
/// run on four hosts — machine placement (and so the emulated cross-host
/// latency) depends on the host count, so histories are only comparable at a
/// fixed count; the sharded flag varies the programming plane on top.
const COMBOS: [(&str, PipelineMode, u32, bool); 4] = [
    ("global/synchronous", PipelineMode::Synchronous, 4, false),
    ("global/pipelined", PipelineMode::Pipelined, 4, false),
    ("sharded/synchronous", PipelineMode::Synchronous, 4, true),
    ("sharded/pipelined", PipelineMode::Pipelined, 4, true),
];

fn chaos_config(seed: u64, mode: PipelineMode, hosts: u32, sharded: bool) -> TestbedConfig {
    let mut cfg = config(seed, DURATION_S, mode, hosts, sharded);
    cfg.chaos = Some(ChaosConfig::default());
    cfg
}

/// Runs a full testbed and returns its final network programme; asserts the
/// run was chaotic for real (events scheduled) yet clean (every recovery
/// succeeded).
fn final_programme(cfg: &TestbedConfig) -> Vec<PairProgram> {
    let mut testbed = Testbed::new(cfg).expect("testbed");
    if cfg.chaos.is_some() {
        assert!(testbed.chaos_events() > 0, "chaos run scheduled no events — vacuous");
    }
    let mut app = common::lockstep::Journal::default();
    testbed.run(&mut app).expect("run");
    assert_eq!(testbed.failed_recoveries(), 0);
    testbed.coordinator().network_programme().expect("programme")
}

/// Convergence + no-uncapped: for every seed and every mode combination,
/// the post-recovery programme is bit-identical to the fault-free reference
/// and never contains an uncapped pair.
#[test]
fn chaos_runs_converge_to_the_fault_free_programme() {
    for seed in seeds() {
        // One fault-free reference per seed; the converged programme must
        // not depend on the plane or the pipeline mode either.
        let reference = final_programme(&config(seed, DURATION_S, PipelineMode::Synchronous, 1, false));
        assert!(check_no_uncapped(&reference).is_empty());
        for (label, mode, hosts, sharded) in COMBOS {
            let observed = final_programme(&chaos_config(seed, mode, hosts, sharded));
            let uncapped = check_no_uncapped(&observed);
            assert!(uncapped.is_empty(), "seed {seed} {label}: {uncapped:?}");
            let divergence = programme_divergence(&reference, &observed);
            assert!(
                divergence.is_empty(),
                "seed {seed} {label} did not converge: {divergence:?}"
            );
        }
    }
}

/// Bit-reproducibility: the same seeded chaos run observes an identical
/// history on a re-run, and the history does not depend on the plane or the
/// pipeline mode (sharded applies run one thread per shard; the pipelined
/// mode precomputes epochs on a background worker).
#[test]
fn chaos_runs_are_bit_reproducible_across_runs_and_threads() {
    for seed in seeds() {
        let reference = run_config(&chaos_config(seed, PipelineMode::Synchronous, 4, false), vec![]);
        assert!(!reference.epochs.is_empty());
        let rerun = run_config(&chaos_config(seed, PipelineMode::Synchronous, 4, false), vec![]);
        assert_lockstep(&format!("seed {seed} rerun"), &reference, &rerun);
        for (label, mode, hosts, sharded) in COMBOS {
            let observed = run_config(&chaos_config(seed, mode, hosts, sharded), vec![]);
            assert_lockstep(&format!("seed {seed} {label}"), &reference, &observed);
        }
    }
}

/// Per-epoch no-uncapped sweep at the coordinator level: with a link flap
/// storm actively suppressing links, *every* epoch's programme stays capped,
/// and one epoch after the last window ends the programme is bit-identical
/// to an unsuppressed coordinator's.
#[test]
fn no_epoch_programs_an_uncapped_pair_under_link_flaps() {
    let base = Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("constellation");
    let topology = ChaosTopology {
        shells: vec![(12, 16)],
        ground_stations: vec![(5.6037, -0.187), (9.0765, 7.3986)],
    };
    for seed in seeds() {
        // Several aggressive flap storms, windows within [0, 40).
        let engine = ChaosEngine {
            plane_outages: 0,
            solar_storms: 0,
            region_blackouts: 0,
            link_flap_storms: 3,
            link_flap_mean_s: 15.0,
            ..ChaosEngine::default()
        };
        let windows = engine.generate(&topology, 40.0, &SimRng::seed_from_u64(seed));
        assert!(!windows.is_empty(), "seed {seed} generated no flap windows");
        let flaps: Vec<_> = windows
            .iter()
            .map(|w| match w.spec {
                ChaosSpec::LinkFlap { period_s, down_fraction, salt } => {
                    celestial_constellation::FlapWindow {
                        start_s: w.start_s,
                        end_s: w.end_s,
                        period_s,
                        down_fraction,
                        salt,
                    }
                }
                ref other => panic!("unexpected chaos spec {other:?}"),
            })
            .collect();
        let mask = LinkSuppression::new(flaps);
        let last_end = mask.last_end_s();
        assert!(last_end > 0.0 && last_end <= 40.0);

        let mut suppressed = base.clone();
        suppressed.set_link_suppression(mask);
        let interval = SimDuration::from_secs_f64(1.0);
        let mut chaotic =
            Coordinator::with_options(suppressed, interval, PipelineMode::Synchronous, None);
        let mut reference =
            Coordinator::with_options(base.clone(), interval, PipelineMode::Synchronous, None);
        let mut suppressed_epochs = 0usize;
        for epoch in 0..=45u32 {
            let t = f64::from(epoch);
            chaotic.update(t).expect("chaotic update");
            reference.update(t).expect("reference update");
            let programme = chaotic.network_programme().expect("programme");
            let uncapped = check_no_uncapped(&programme);
            assert!(uncapped.is_empty(), "seed {seed} t={t}: {uncapped:?}");
            let ref_programme = reference.network_programme().expect("programme");
            if t <= last_end {
                if programme != ref_programme {
                    suppressed_epochs += 1;
                }
            } else if t > last_end + 1.0 {
                // One epoch past the last window the mask is inert: the
                // retained programmes have re-converged bit-exactly.
                let divergence = programme_divergence(&ref_programme, &programme);
                assert!(divergence.is_empty(), "seed {seed} t={t}: {divergence:?}");
            }
        }
        // The storm must have bitten (links actually suppressed) or the
        // sweep proves nothing.
        assert!(suppressed_epochs > 0, "seed {seed}: flap storm never changed the programme");
    }
}
