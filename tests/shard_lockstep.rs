//! Lockstep tests of the host-sharded programming plane: a sharded run must
//! be **bit-identical** to a global-network run — the same journals, the
//! same RTT sequence, the same `latency_clamp_count` and `/info` counters —
//! across 100+ epochs with mid-epoch crash/recover faults, in both the
//! `synchronous` and the `pipelined` pipeline mode. This is the determinism
//! contract of `docs/SHARDING.md`.
//!
//! The host-count matrix is driven by `CELESTIAL_LOCKSTEP_HOSTS` (a comma
//! list, default `1,4`), which CI uses to split the 1-host and 4-host legs
//! into separate jobs.

use celestial::config::TestbedConfig;
use celestial::pipeline::PipelineMode;
use celestial::testbed::{AppContext, GuestApplication, Testbed};
use celestial_constellation::{BoundingBox, GroundStation, Shell};
use celestial_machines::{FaultEvent, FaultKind};
use celestial_netem::packet::Packet;
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::ids::NodeId;
use celestial_types::time::{SimDuration, SimInstant};

/// The host counts to exercise, from `CELESTIAL_LOCKSTEP_HOSTS`.
fn host_matrix() -> Vec<u32> {
    let spec = std::env::var("CELESTIAL_LOCKSTEP_HOSTS").unwrap_or_else(|_| "1,4".to_owned());
    let hosts: Vec<u32> = spec
        .split(',')
        .filter_map(|part| part.trim().parse().ok())
        .filter(|&h| h >= 1)
        .collect();
    assert!(!hosts.is_empty(), "CELESTIAL_LOCKSTEP_HOSTS={spec:?} names no host count");
    hosts
}

fn config(mode: PipelineMode, hosts: u32, sharded: bool) -> TestbedConfig {
    let mut builder = TestbedConfig::builder()
        .seed(11)
        .update_interval_s(1.0)
        .duration_s(105.0)
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .pipeline(mode)
        // A deliberately large 6 ms host latency: the ground-station pair's
        // few-millisecond targets clamp, so the clamp accounting is
        // exercised for real (and must agree between the planes).
        .host_latency_us(6_000)
        .hosts(vec![celestial::config::HostConfig::default(); hosts as usize]);
    if sharded {
        builder = builder.shards(hosts);
    }
    builder.build().expect("valid config")
}

fn faults() -> Vec<FaultEvent> {
    // Mid-epoch instants on purpose: the crashes land while the pipelined
    // mode has the next epoch precomputed in the background.
    vec![
        FaultEvent {
            node: NodeId::ground_station(1),
            at: SimInstant::from_secs_f64(5.3),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(9.7)),
        },
        FaultEvent {
            node: NodeId::satellite(0, 5),
            at: SimInstant::from_secs_f64(20.5),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(24.1)),
        },
        FaultEvent {
            node: NodeId::ground_station(0),
            at: SimInstant::from_secs_f64(60.9),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(63.4)),
        },
    ]
}

/// A ping-pong application journalling every constellation update: the
/// `/info`-visible programme counters, the emulated and expected pair
/// latency, machine liveness, and the network-plane counters including the
/// clamp count.
#[derive(Default)]
struct Journal {
    accra: Option<NodeId>,
    abuja: Option<NodeId>,
    rtts_ms: Vec<f64>,
    sent_at: std::collections::BTreeMap<u64, SimInstant>,
    next_seq: u64,
    epochs: Vec<String>,
}

impl Journal {
    fn ping(&mut self, ctx: &mut AppContext<'_>) {
        let (Some(a), Some(b)) = (self.accra, self.abuja) else { return };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent_at.insert(seq, ctx.now());
        ctx.send(a, b, 1_250, seq.to_le_bytes().to_vec());
    }
}

impl GuestApplication for Journal {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.accra = ctx.ground_station("accra");
        self.abuja = ctx.ground_station("abuja");
        self.ping(ctx);
        ctx.set_timer(SimDuration::from_millis(1_000), 0);
    }

    fn on_constellation_update(&mut self, ctx: &mut AppContext<'_>) {
        let stats = ctx.database().programme_stats();
        let line = format!(
            "t={:?} stats={:?} emulated={:?} expected={:?} accra_up={} abuja_up={}",
            ctx.database().updated_at_seconds(),
            stats.map(|s| (s.epoch, s.pairs, s.delta_ops)),
            ctx.emulated_latency(self.accra.unwrap(), self.abuja.unwrap()),
            ctx.expected_latency(self.accra.unwrap(), self.abuja.unwrap()),
            ctx.is_running(self.accra.unwrap()),
            ctx.is_running(self.abuja.unwrap()),
        );
        self.epochs.push(line);
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut AppContext<'_>) {
        self.ping(ctx);
        ctx.set_timer(SimDuration::from_millis(1_000), 0);
    }

    fn on_message(&mut self, message: &Packet, ctx: &mut AppContext<'_>) {
        let seq = u64::from_le_bytes(message.payload[..8].try_into().unwrap());
        if message.destination == self.abuja.unwrap() {
            ctx.send(self.abuja.unwrap(), self.accra.unwrap(), 1_250, message.payload.to_vec());
        } else if let Some(sent) = self.sent_at.remove(&seq) {
            self.rtts_ms.push(ctx.now().duration_since(sent).as_millis_f64());
        }
    }
}

/// Everything a run observes that must be bit-identical across planes.
#[derive(Debug, PartialEq)]
struct Observations {
    epochs: Vec<String>,
    rtts_ms: Vec<f64>,
    messages: (u64, u64),
    network: (u64, u64, u64),
    clamps: u64,
    failed_recoveries: u64,
    updates: u64,
}

fn run(mode: PipelineMode, hosts: u32, sharded: bool) -> Observations {
    let config = config(mode, hosts, sharded);
    let mut testbed = Testbed::new(&config).expect("testbed");
    testbed.schedule_faults(faults());
    let mut app = Journal::default();
    testbed.run(&mut app).expect("run");

    if sharded {
        // The sharded plane's own consistency: the `/info`-visible per-shard
        // pair counts (maintained by the coordinator's partitioned merge
        // walk) must match what the shards actually hold, and every shard
        // must have applied its slice.
        let plane = testbed.network().as_sharded().expect("sharded plane");
        let report = testbed
            .coordinator()
            .database()
            .shard_report()
            .expect("shard report surfaced");
        assert_eq!(report.pairs, plane.pair_counts(), "store/emulation shard counts diverged");
        assert_eq!(report.apply_ns.len() as u32, hosts);
    } else {
        assert!(testbed.network().as_global().is_some());
        assert!(testbed.coordinator().database().shard_report().is_none());
    }

    assert!(app.epochs.len() >= 100, "only {} epochs journalled", app.epochs.len());
    Observations {
        epochs: app.epochs,
        rtts_ms: app.rtts_ms,
        messages: testbed.message_counters(),
        network: testbed.network().counters(),
        clamps: testbed.network().latency_clamp_count(),
        failed_recoveries: testbed.failed_recoveries(),
        updates: testbed.coordinator().update_count(),
    }
}

/// The tentpole guarantee: for every configured host count, the four runs —
/// {global, sharded} × {synchronous, pipelined} — observe bit-identical
/// histories over 105 epochs with three mid-epoch crash/recover faults.
#[test]
fn sharded_plane_is_bit_identical_to_the_global_network() {
    for hosts in host_matrix() {
        let reference = run(PipelineMode::Synchronous, hosts, false);
        if hosts > 1 {
            // The 6 ms host latency really forces clamped compensations, so
            // the clamp-count equality below is not vacuous.
            assert!(reference.clamps > 0, "no clamps at {hosts} hosts — weak test");
        }
        assert!(!reference.rtts_ms.is_empty());
        for (label, observed) in [
            ("global/pipelined", run(PipelineMode::Pipelined, hosts, false)),
            ("sharded/synchronous", run(PipelineMode::Synchronous, hosts, true)),
            ("sharded/pipelined", run(PipelineMode::Pipelined, hosts, true)),
        ] {
            assert_eq!(
                reference.epochs.len(),
                observed.epochs.len(),
                "{label}@{hosts} epoch count diverged"
            );
            for (epoch, (a, b)) in reference.epochs.iter().zip(&observed.epochs).enumerate() {
                assert_eq!(a, b, "{label}@{hosts} journal diverged at epoch {epoch}");
            }
            assert_eq!(reference.rtts_ms, observed.rtts_ms, "{label}@{hosts} RTTs diverged");
            assert_eq!(reference.messages, observed.messages, "{label}@{hosts} messages");
            assert_eq!(reference.network, observed.network, "{label}@{hosts} net counters");
            assert_eq!(reference.clamps, observed.clamps, "{label}@{hosts} clamp count");
            assert_eq!(
                reference.failed_recoveries, observed.failed_recoveries,
                "{label}@{hosts} failed recoveries"
            );
            assert_eq!(reference.updates, observed.updates, "{label}@{hosts} update count");
        }
    }
}

/// The `/info` route surfaces the sharded plane: shard count, per-shard pair
/// counts and per-shard apply times.
#[test]
fn info_route_reports_shard_figures() {
    let mut config = config(PipelineMode::Synchronous, 4, true);
    config.duration_s = 5.0;
    struct Nop;
    impl GuestApplication for Nop {}
    let mut testbed = Testbed::new(&config).expect("testbed");
    testbed.run(&mut Nop).expect("run");
    let api = celestial::info_api::InfoApi::new(testbed.coordinator().database());
    let info = api
        .handle_path(NodeId::ground_station(0), "/info")
        .expect("info route");
    assert_eq!(info["shards"], 4);
    let pairs = info["shard_pairs"].as_array().expect("shard_pairs array");
    assert_eq!(pairs.len(), 4);
    assert!(pairs.iter().any(|p| p.as_f64().unwrap_or(0.0) > 0.0), "{pairs:?}");
    let apply = info["shard_apply_ms"].as_array().expect("shard_apply_ms array");
    assert_eq!(apply.len(), 4);
    assert!(info["shard_apply_wall_ms"].as_f64().is_some());
}
