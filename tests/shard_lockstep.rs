//! Lockstep tests of the host-sharded programming plane: a sharded run must
//! be **bit-identical** to a global-network run — the same journals, the
//! same RTT sequence, the same `latency_clamp_count` and `/info` counters —
//! across 100+ epochs with mid-epoch crash/recover faults, in both the
//! `synchronous` and the `pipelined` pipeline mode. This is the determinism
//! contract of `docs/SHARDING.md`.
//!
//! The journalling application, the run/compare helpers, and the
//! `CELESTIAL_LOCKSTEP_HOSTS` host matrix live in `tests/common/lockstep.rs`
//! (shared with `tests/chaos_convergence.rs`).

mod common;

use common::lockstep::{
    assert_lockstep, config, host_matrix, megascale_config, megascale_enabled, run_config,
    Observations,
};

use celestial::pipeline::PipelineMode;
use celestial::testbed::{GuestApplication, Testbed};
use celestial_machines::{FaultEvent, FaultKind};
use celestial_types::ids::NodeId;
use celestial_types::time::SimInstant;

fn faults() -> Vec<FaultEvent> {
    // Mid-epoch instants on purpose: the crashes land while the pipelined
    // mode has the next epoch precomputed in the background.
    vec![
        FaultEvent {
            node: NodeId::ground_station(1),
            at: SimInstant::from_secs_f64(5.3),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(9.7)),
        },
        FaultEvent {
            node: NodeId::satellite(0, 5),
            at: SimInstant::from_secs_f64(20.5),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(24.1)),
        },
        FaultEvent {
            node: NodeId::ground_station(0),
            at: SimInstant::from_secs_f64(60.9),
            kind: FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(63.4)),
        },
    ]
}

fn run(mode: PipelineMode, hosts: u32, sharded: bool) -> Observations {
    let observations = run_config(&config(11, 105.0, mode, hosts, sharded), faults());
    assert!(
        observations.epochs.len() >= 100,
        "only {} epochs journalled",
        observations.epochs.len()
    );
    observations
}

/// The tentpole guarantee: for every configured host count, the four runs —
/// {global, sharded} × {synchronous, pipelined} — observe bit-identical
/// histories over 105 epochs with three mid-epoch crash/recover faults.
#[test]
fn sharded_plane_is_bit_identical_to_the_global_network() {
    for hosts in host_matrix() {
        let reference = run(PipelineMode::Synchronous, hosts, false);
        if hosts > 1 {
            // The 6 ms host latency really forces clamped compensations, so
            // the clamp-count equality below is not vacuous.
            assert!(reference.clamps > 0, "no clamps at {hosts} hosts — weak test");
        }
        assert!(!reference.rtts_ms.is_empty());
        for (label, observed) in [
            ("global/pipelined", run(PipelineMode::Pipelined, hosts, false)),
            ("sharded/synchronous", run(PipelineMode::Synchronous, hosts, true)),
            ("sharded/pipelined", run(PipelineMode::Pipelined, hosts, true)),
        ] {
            assert_lockstep(&format!("{label}@{hosts}"), &reference, &observed);
        }
    }
}

/// The megascale leg (gated behind `CELESTIAL_MEGASCALE=1`): the same
/// four-way bit-identity on a 72×22 Starlink-class shell over 12 epochs,
/// with the scoped solve pruning 90%+ of the 1,586 source rows and one
/// mid-run ground-station crash. Proves global ≡ sharded and sync ≡
/// pipelined survive the scale jump (see `docs/MEGASCALE.md`).
#[test]
fn megascale_sharded_plane_is_bit_identical_to_the_global_network() {
    if !megascale_enabled() {
        eprintln!("skipping: set CELESTIAL_MEGASCALE=1 to run the 72×22 leg");
        return;
    }
    let faults = vec![FaultEvent {
        node: NodeId::ground_station(1),
        at: SimInstant::from_secs_f64(4.3),
        kind: FaultKind::CrashAndReboot,
        recover_at: Some(SimInstant::from_secs_f64(7.7)),
    }];
    let run = |mode: PipelineMode, sharded: bool| {
        run_config(&megascale_config(11, 12.0, mode, 4, sharded), faults.clone())
    };
    let reference = run(PipelineMode::Synchronous, false);
    assert!(!reference.rtts_ms.is_empty(), "the megascale run must observe traffic");
    for (label, observed) in [
        ("megascale global/pipelined", run(PipelineMode::Pipelined, false)),
        ("megascale sharded/synchronous", run(PipelineMode::Synchronous, true)),
        ("megascale sharded/pipelined", run(PipelineMode::Pipelined, true)),
    ] {
        assert_lockstep(label, &reference, &observed);
    }
}

/// The `/info` route surfaces the sharded plane: shard count, per-shard pair
/// counts and per-shard apply times.
#[test]
fn info_route_reports_shard_figures() {
    let mut config = config(11, 105.0, PipelineMode::Synchronous, 4, true);
    config.duration_s = 5.0;
    struct Nop;
    impl GuestApplication for Nop {}
    let mut testbed = Testbed::new(&config).expect("testbed");
    testbed.run(&mut Nop).expect("run");
    let api = celestial::info_api::InfoApi::new(testbed.coordinator().database());
    let info = api
        .handle_path(NodeId::ground_station(0), "/info")
        .expect("info route");
    assert_eq!(info["shards"], 4);
    let pairs = info["shard_pairs"].as_array().expect("shard_pairs array");
    assert_eq!(pairs.len(), 4);
    assert!(pairs.iter().any(|p| p.as_f64().unwrap_or(0.0) > 0.0), "{pairs:?}");
    let apply = info["shard_apply_ms"].as_array().expect("shard_apply_ms array");
    assert_eq!(apply.len(), 4);
    assert!(info["shard_apply_wall_ms"].as_f64().is_some());
}
