//! Workspace-level façade of the Celestial LEO edge testbed reproduction.
//!
//! This crate re-exports the workspace's crates under one roof so that the
//! runnable examples (`examples/`) and the integration tests (`tests/`) can
//! depend on a single package. Library users should normally depend on the
//! individual crates instead:
//!
//! * [`celestial`] — the testbed itself (configuration, coordinator, machine
//!   managers, info API, runtime),
//! * [`celestial_constellation`] — the constellation calculation,
//! * [`celestial_sgp4`] — orbital mechanics,
//! * [`celestial_netem`] — the network emulation model,
//! * [`celestial_machines`] — the microVM and host model,
//! * [`celestial_sim`] — the discrete-event engine and metrics,
//! * [`celestial_apps`] — the paper's evaluation applications,
//! * [`celestial_serve`] — the HTTP serving plane (middleware pipeline over
//!   epoch-versioned snapshot reads),
//! * [`celestial_types`] — shared types.
//!
//! # Example
//!
//! A complete (tiny) experiment through the façade: parse a configuration,
//! boot the testbed, run a no-op guest application and observe that the
//! coordinator kept updating the constellation.
//!
//! ```
//! use celestial_testbed::celestial::config::TestbedConfig;
//! use celestial_testbed::celestial::testbed::{GuestApplication, Testbed};
//!
//! let toml = r#"
//! seed = 1
//! duration-s = 10.0
//!
//! [[shell]]
//! altitude-km = 550.0
//! inclination-deg = 53.0
//! planes = 2
//! satellites-per-plane = 4
//!
//! [[ground-station]]
//! name = "accra"
//! lat = 5.6037
//! lon = -0.187
//! "#;
//! let config = TestbedConfig::from_toml(toml).expect("valid configuration");
//! assert_eq!(config.shells[0].satellite_count(), 8);
//!
//! struct Nop;
//! impl GuestApplication for Nop {}
//!
//! let mut testbed = Testbed::new(&config).expect("testbed boots");
//! testbed.run(&mut Nop).expect("experiment runs");
//! assert!(testbed.coordinator().update_count() >= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use celestial;
pub use celestial_apps;
pub use celestial_constellation;
pub use celestial_machines;
pub use celestial_netem;
pub use celestial_serve;
pub use celestial_sgp4;
pub use celestial_sim;
pub use celestial_types;
