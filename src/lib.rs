//! Workspace-level façade of the Celestial LEO edge testbed reproduction.
//!
//! This crate re-exports the workspace's crates under one roof so that the
//! runnable examples (`examples/`) and the integration tests (`tests/`) can
//! depend on a single package. Library users should normally depend on the
//! individual crates instead:
//!
//! * [`celestial`] — the testbed itself (configuration, coordinator, machine
//!   managers, info API, runtime),
//! * [`celestial_constellation`] — the constellation calculation,
//! * [`celestial_sgp4`] — orbital mechanics,
//! * [`celestial_netem`] — the network emulation model,
//! * [`celestial_machines`] — the microVM and host model,
//! * [`celestial_sim`] — the discrete-event engine and metrics,
//! * [`celestial_apps`] — the paper's evaluation applications,
//! * [`celestial_types`] — shared types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use celestial;
pub use celestial_apps;
pub use celestial_constellation;
pub use celestial_machines;
pub use celestial_netem;
pub use celestial_sgp4;
pub use celestial_sim;
pub use celestial_types;
