//! A minimal blocking HTTP/1.1 client with keep-alive, for tests and
//! benchmarks inside the workspace.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::parser::{parse_response, Parse};
use crate::{Method, Request, Response};

/// Socket timeout applied to reads and writes.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A blocking keep-alive client bound to one server address. Requests are
/// issued sequentially over a single connection, which is transparently
/// re-established if the server closed it.
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to the given address.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "no address"))?;
        let stream = open(addr)?;
        Ok(Client {
            addr,
            stream: Some(stream),
            buf: Vec::with_capacity(1024),
        })
    }

    /// Issues a `GET` for `target` and waits for the response.
    pub fn get(&mut self, target: &str) -> std::io::Result<Response> {
        self.request(&Request::new(Method::Get, target))
    }

    /// Issues a `GET` for `target` with extra header fields.
    pub fn get_with_headers(
        &mut self,
        target: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<Response> {
        let mut request = Request::new(Method::Get, target);
        for (name, value) in headers {
            request
                .headers
                .push(((*name).to_owned(), (*value).to_owned()));
        }
        self.request(&request)
    }

    /// Sends `request` and reads one response. If the server closed the
    /// keep-alive connection since the last exchange, reconnects once.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        match self.try_request(request) {
            Ok(response) => Ok(response),
            Err(_) => {
                // The pooled connection may have been closed server-side;
                // retry exactly once on a fresh connection.
                self.stream = Some(open(self.addr)?);
                self.buf.clear();
                self.try_request(request)
            }
        }
    }

    fn try_request(&mut self, request: &Request) -> std::io::Result<Response> {
        let stream = match self.stream.as_mut() {
            Some(stream) => stream,
            None => {
                self.stream = Some(open(self.addr)?);
                self.buf.clear();
                self.stream.as_mut().expect("stream was just set")
            }
        };
        stream.write_all(&request.to_bytes())?;

        let mut chunk = [0u8; 4096];
        loop {
            match parse_response(&self.buf) {
                Parse::Complete { message, consumed } => {
                    self.buf.drain(..consumed);
                    let close = message
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    if close {
                        self.stream = None;
                        self.buf.clear();
                    }
                    return Ok(message);
                }
                Parse::Partial => {}
                Parse::Invalid(error) => {
                    self.stream = None;
                    self.buf.clear();
                    return Err(std::io::Error::new(ErrorKind::InvalidData, error));
                }
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                self.stream = None;
                self.buf.clear();
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn open(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}
