//! Incremental HTTP/1.1 message parsing with hard limits.
//!
//! [`parse_request`] and [`parse_response`] are **restartable**: callers
//! accumulate bytes in a buffer and re-parse after every read. A prefix of a
//! valid message always parses to [`Parse::Partial`], never to an error —
//! the property that makes torn reads (a request split at any byte
//! boundary) safe — and malformed or oversized input yields
//! [`Parse::Invalid`] instead of panicking, which the server maps to `400`.

use crate::{Method, Request, Response};

/// Maximum length of the request/status line in bytes.
pub const MAX_START_LINE: usize = 8 * 1024;
/// Maximum size of the head (start line + headers + terminator) in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum number of header fields.
pub const MAX_HEADERS: usize = 64;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a message was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed HTTP message: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The outcome of parsing a buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Parse<T> {
    /// The buffer holds an incomplete message; read more bytes and re-parse.
    Partial,
    /// A complete message occupying the first `consumed` bytes.
    Complete {
        /// The parsed message.
        message: T,
        /// Bytes of the buffer the message occupied (drain before re-parse).
        consumed: usize,
    },
    /// The buffer can never become a valid message.
    Invalid(ParseError),
}

fn invalid<T>(msg: impl Into<String>) -> Parse<T> {
    Parse::Invalid(ParseError(msg.into()))
}

/// Locates the end of the head (`\r\n\r\n`), returning the offset just past
/// the terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn is_token_char(byte: u8) -> bool {
    matches!(byte,
        b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9'
        | b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.'
        | b'^' | b'_' | b'`' | b'|' | b'~')
}

fn is_valid_header_value(value: &str) -> bool {
    value
        .bytes()
        .all(|b| b == b'\t' || (b' '..=b'~').contains(&b) || b >= 0x80)
}

/// Parses the header lines shared by requests and responses.
fn parse_headers(lines: std::str::Lines<'_>) -> Result<Vec<(String, String)>, ParseError> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(ParseError("obsolete header folding is not supported".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError(format!("header line without ':': {line:?}")));
        };
        if name.is_empty() || !name.bytes().all(is_token_char) {
            return Err(ParseError(format!("invalid header name {name:?}")));
        }
        let value = value.trim_matches(|c| c == ' ' || c == '\t');
        if !is_valid_header_value(value) {
            return Err(ParseError(format!("control bytes in value of {name:?}")));
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError(format!("more than {MAX_HEADERS} header fields")));
        }
        headers.push((name.to_owned(), value.to_owned()));
    }
    Ok(headers)
}

/// Extracts the body framing from the headers: `Some(len)` for
/// `Content-Length: len`, `None` for no body.
fn body_length(headers: &[(String, String)]) -> Result<Option<usize>, ParseError> {
    if headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("transfer-encoding"))
    {
        return Err(ParseError("chunked transfer encoding is not supported".into()));
    }
    let mut length: Option<usize> = None;
    for (name, value) in headers {
        if !name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        let parsed: usize = value
            .parse()
            .map_err(|_| ParseError(format!("invalid Content-Length {value:?}")))?;
        if let Some(existing) = length {
            if existing != parsed {
                return Err(ParseError("conflicting Content-Length headers".into()));
            }
        }
        if parsed > MAX_BODY_BYTES {
            return Err(ParseError(format!("body of {parsed} bytes exceeds the limit")));
        }
        length = Some(parsed);
    }
    Ok(length)
}

/// Checks the head-section limits on a buffer that does not yet contain the
/// `\r\n\r\n` terminator. Returns `Partial` if more bytes may still form a
/// valid head, `Invalid` once no continuation can.
fn check_incomplete_head<T>(buf: &[u8]) -> Parse<T> {
    if !buf.iter().take(MAX_START_LINE).any(|&b| b == b'\n') && buf.len() > MAX_START_LINE {
        return invalid("start line exceeds the length limit");
    }
    if buf.len() > MAX_HEAD_BYTES {
        return invalid("header section exceeds the size limit");
    }
    Parse::Partial
}

fn parse_version(token: &str) -> Result<u8, ParseError> {
    match token {
        "HTTP/1.1" => Ok(1),
        "HTTP/1.0" => Ok(0),
        other => Err(ParseError(format!("unsupported version {other:?}"))),
    }
}

/// Parses one HTTP request from the front of `buf`. See the module
/// documentation for the restartable-parsing contract.
pub fn parse_request(buf: &[u8]) -> Parse<Request> {
    let Some(head_end) = find_head_end(buf) else {
        return check_incomplete_head(buf);
    };
    if head_end > MAX_HEAD_BYTES {
        return invalid("header section exceeds the size limit");
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end - 4]) else {
        return invalid("head is not valid UTF-8");
    };
    let mut lines = head.lines();
    let Some(start_line) = lines.next() else {
        return invalid("empty request head");
    };
    if start_line.len() > MAX_START_LINE {
        return invalid("start line exceeds the length limit");
    }
    let mut parts = start_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return invalid(format!("malformed request line {start_line:?}"));
    };
    if method.is_empty() || !method.bytes().all(is_token_char) {
        return invalid(format!("invalid method token {method:?}"));
    }
    if !(target.starts_with('/') || target == "*") {
        return invalid(format!("unsupported request target {target:?}"));
    }
    let minor_version = match parse_version(version) {
        Ok(v) => v,
        Err(e) => return Parse::Invalid(e),
    };
    let headers = match parse_headers(lines) {
        Ok(h) => h,
        Err(e) => return Parse::Invalid(e),
    };
    let body_len = match body_length(&headers) {
        Ok(l) => l.unwrap_or(0),
        Err(e) => return Parse::Invalid(e),
    };
    if buf.len() < head_end + body_len {
        return Parse::Partial;
    }
    Parse::Complete {
        message: Request {
            method: Method::from_token(method),
            target: target.to_owned(),
            minor_version,
            headers,
            body: buf[head_end..head_end + body_len].to_vec(),
            peer: None,
        },
        consumed: head_end + body_len,
    }
}

/// Parses one HTTP response from the front of `buf` (the client side of the
/// same restartable contract).
pub fn parse_response(buf: &[u8]) -> Parse<Response> {
    let Some(head_end) = find_head_end(buf) else {
        return check_incomplete_head(buf);
    };
    if head_end > MAX_HEAD_BYTES {
        return invalid("header section exceeds the size limit");
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end - 4]) else {
        return invalid("head is not valid UTF-8");
    };
    let mut lines = head.lines();
    let Some(status_line) = lines.next() else {
        return invalid("empty response head");
    };
    let mut parts = status_line.splitn(3, ' ');
    let (Some(version), Some(status), _reason) = (parts.next(), parts.next(), parts.next())
    else {
        return invalid(format!("malformed status line {status_line:?}"));
    };
    if let Err(e) = parse_version(version) {
        return Parse::Invalid(e);
    }
    let Ok(status) = status.parse::<u16>() else {
        return invalid(format!("invalid status code {status:?}"));
    };
    let headers = match parse_headers(lines) {
        Ok(h) => h,
        Err(e) => return Parse::Invalid(e),
    };
    let body_len = match body_length(&headers) {
        Ok(l) => l.unwrap_or(0),
        Err(e) => return Parse::Invalid(e),
    };
    if buf.len() < head_end + body_len {
        return Parse::Partial;
    }
    Parse::Complete {
        message: Response {
            status,
            headers,
            body: buf[head_end..head_end + body_len].to_vec(),
        },
        consumed: head_end + body_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_get_request_with_headers_and_keep_alive() {
        let bytes = b"GET /info?x=1 HTTP/1.1\r\nHost: localhost\r\nX-Test: a b\r\n\r\n";
        let Parse::Complete { message, consumed } = parse_request(bytes) else {
            panic!("expected a complete request");
        };
        assert_eq!(consumed, bytes.len());
        assert_eq!(message.method, Method::Get);
        assert_eq!(message.target, "/info?x=1");
        assert_eq!(message.path(), "/info");
        assert_eq!(message.header("x-test"), Some("a b"));
        assert!(message.keep_alive());
    }

    #[test]
    fn frames_bodies_with_content_length() {
        let bytes = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET";
        let Parse::Complete { message, consumed } = parse_request(bytes) else {
            panic!("expected a complete request");
        };
        assert_eq!(message.body, b"hello");
        assert_eq!(consumed, bytes.len() - 3, "trailing bytes belong to the next request");
        // One byte short of the declared length: partial, not complete.
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhell"),
            Parse::Partial
        );
    }

    #[test]
    fn http10_closes_by_default() {
        let bytes = b"GET / HTTP/1.0\r\n\r\n";
        let Parse::Complete { message, .. } = parse_request(bytes) else {
            panic!("expected a complete request");
        };
        assert!(!message.keep_alive());
    }

    #[test]
    fn malformed_messages_are_invalid_not_partial() {
        for bad in [
            b"GET\r\n\r\n".as_slice(),
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET http://e/ HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
        ] {
            assert!(
                matches!(parse_request(bad), Parse::Invalid(_)),
                "accepted {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn parses_a_response_round_trip() {
        let response = Response::json(200, r#"{"ok":true}"#);
        let bytes = response.to_bytes(true);
        let Parse::Complete { message, consumed } = parse_response(&bytes) else {
            panic!("expected a complete response");
        };
        assert_eq!(consumed, bytes.len());
        assert_eq!(message.status, 200);
        assert_eq!(message.body, br#"{"ok":true}"#);
        assert_eq!(message.header("connection"), Some("keep-alive"));
    }
}
