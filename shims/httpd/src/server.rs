//! A threaded HTTP/1.1 server: nonblocking listener + fixed worker pool.
//!
//! Connections are accepted on a dedicated listener thread and handed to a
//! pool of worker threads over a channel. Each worker owns a connection for
//! its whole keep-alive lifetime, parsing requests incrementally with
//! [`crate::parser::parse_request`] and writing `Content-Length`-framed
//! responses. [`Server::shutdown`] (also run on drop) stops the listener,
//! closes the channel and joins every thread.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::parser::{parse_request, Parse};
use crate::{Request, Response};

/// How often the listener thread polls the shutdown flag between accepts.
const ACCEPT_POLL: Duration = Duration::from_millis(1);
/// How often idle workers poll the shutdown flag while waiting for work.
const WORKER_POLL: Duration = Duration::from_millis(20);
/// Per-connection read timeout; an idle keep-alive connection is dropped
/// after this long without bytes.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Counters describing the server's activity, all monotonically increasing.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests parsed and answered by the handler.
    pub requests: AtomicU64,
    /// Requests rejected with `400` because parsing failed.
    pub parse_errors: AtomicU64,
}

impl ServerStats {
    /// Snapshot of (connections, requests, parse_errors).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.connections.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
            self.parse_errors.load(Ordering::Relaxed),
        )
    }
}

/// The request handler: a request in, a response out. Handlers run on worker
/// threads and must therefore be `Send + Sync`.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// A running HTTP server (see the module documentation).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (`port 0` picks an ephemeral port) and starts the
    /// listener plus `workers` worker threads running `handler`.
    pub fn bind(
        addr: &str,
        workers: usize,
        handler: Arc<Handler>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let worker_handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("httpd-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &stop, &stats, handler.as_ref()))
                    .expect("spawning an httpd worker thread failed")
            })
            .collect();

        let listener_handle = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("httpd-listener".into())
                .spawn(move || listener_loop(&listener, &tx, &stop, &stats))
                .expect("spawning the httpd listener thread failed")
        };

        Ok(Server {
            addr,
            stop,
            stats,
            listener: Some(listener_handle),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's activity counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops accepting, drains the workers and joins every thread. Idempotent;
    /// also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn listener_loop(
    listener: &TcpListener,
    tx: &mpsc::Sender<TcpStream>,
    stop: &AtomicBool,
    stats: &ServerStats,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping `tx` here closes the channel, releasing idle workers.
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    stop: &AtomicBool,
    stats: &ServerStats,
    handler: &Handler,
) {
    loop {
        let next = {
            let guard = rx.lock().expect("httpd worker queue lock poisoned");
            guard.recv_timeout(WORKER_POLL)
        };
        match next {
            Ok(stream) => serve_connection(stream, stop, stats, handler),
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Runs one connection's keep-alive loop until the peer closes, a response
/// requests close, parsing fails, or shutdown is signalled.
fn serve_connection(
    mut stream: TcpStream,
    stop: &AtomicBool,
    stats: &ServerStats,
    handler: &Handler,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let peer = stream.peer_addr().ok();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];

    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Answer every complete request already buffered.
        loop {
            match parse_request(&buf) {
                Parse::Complete { mut message, consumed } => {
                    buf.drain(..consumed);
                    message.peer = peer;
                    let response = handler(&message);
                    let keep_alive = message.keep_alive() && !response.demands_close();
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    if stream.write_all(&response.to_bytes(keep_alive)).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Parse::Partial => break,
                Parse::Invalid(error) => {
                    stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                    let reply = Response::json(
                        400,
                        format!(r#"{{"error":"{}"}}"#, error.0.replace('"', "'")),
                    );
                    let _ = stream.write_all(&reply.to_bytes(false));
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::Method;

    fn echo_server() -> Server {
        Server::bind(
            "127.0.0.1:0",
            2,
            Arc::new(|req: &Request| {
                Response::text(200, format!("{} {}", req.method, req.path()))
            }),
        )
        .expect("binding the test server failed")
    }

    #[test]
    fn serves_requests_over_keep_alive() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).expect("connect failed");
        for _ in 0..3 {
            let response = client.get("/hello").expect("request failed");
            assert_eq!(response.status, 200);
            assert_eq!(response.body, b"GET /hello");
        }
        let (connections, requests, parse_errors) = server.stats().snapshot();
        assert_eq!(connections, 1, "keep-alive should reuse one connection");
        assert_eq!(requests, 3);
        assert_eq!(parse_errors, 0);
    }

    #[test]
    fn malformed_requests_get_400_and_close() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect failed");
        stream
            .write_all(b"GET / HTTP/2.0\r\n\r\n")
            .expect("write failed");
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).expect("read failed");
        let text = String::from_utf8_lossy(&reply);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        assert!(text.contains("Connection: close"));
        assert_eq!(server.stats().parse_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let mut server = echo_server();
        let addr = server.addr();
        let mut client = Client::connect(addr).expect("connect failed");
        assert_eq!(client.get("/x").expect("request failed").status, 200);
        server.shutdown();
        server.shutdown(); // idempotent
        assert!(
            Client::connect(addr).is_err()
                || Client::connect(addr)
                    .and_then(|mut c| c.get("/x"))
                    .is_err(),
            "the listener should be gone after shutdown"
        );
    }

    #[test]
    fn post_bodies_reach_the_handler() {
        let server = Server::bind(
            "127.0.0.1:0",
            1,
            Arc::new(|req: &Request| Response::text(200, req.body.clone())),
        )
        .expect("bind failed");
        let mut client = Client::connect(server.addr()).expect("connect failed");
        let mut request = Request::new(Method::Post, "/echo");
        request.body = b"payload".to_vec();
        let response = client.request(&request).expect("request failed");
        assert_eq!(response.body, b"payload");
    }
}
