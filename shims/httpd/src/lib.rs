//! Workspace-local, offline HTTP/1.1 server and client.
//!
//! The build environment has no crates.io access, so — like the other
//! `shims/` crates — this hand-rolls the small HTTP surface the workspace
//! needs: an incremental request/response parser with hard limits
//! ([`parser`]), a threaded server with a listener + worker pool, keep-alive
//! and graceful shutdown ([`server`]), and a blocking keep-alive client for
//! tests and benchmarks ([`client`]). Framing is `Content-Length` only;
//! chunked transfer encoding is rejected with `400` rather than implemented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod parser;
pub mod server;

pub use client::Client;
pub use parser::{parse_request, parse_response, Parse, ParseError};
pub use server::{Server, ServerStats};

use std::fmt;
use std::net::SocketAddr;

/// An HTTP request method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `HEAD`
    Head,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `DELETE`
    Delete,
    /// `OPTIONS`
    Options,
    /// Any other token (HTTP methods are an open set).
    Other(String),
}

impl Method {
    /// Parses a method token (already validated as a token by the parser).
    pub fn from_token(token: &str) -> Method {
        match token {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            other => Method::Other(other.to_owned()),
        }
    }

    /// The method's wire token.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Other(token) => token,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The raw request target (path plus optional query string).
    pub target: String,
    /// Minor HTTP version: `0` for HTTP/1.0, `1` for HTTP/1.1.
    pub minor_version: u8,
    /// Header fields in order of appearance, names as received.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` framed; empty without the header).
    pub body: Vec<u8>,
    /// The peer address, stamped by the server (not part of the wire form).
    pub peer: Option<SocketAddr>,
}

impl Request {
    /// A minimal request for the given method and target (HTTP/1.1, no
    /// headers, no body).
    pub fn new(method: Method, target: impl Into<String>) -> Request {
        Request {
            method,
            target: target.into(),
            minor_version: 1,
            headers: Vec::new(),
            body: Vec::new(),
            peer: None,
        }
    }

    /// The first header with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The request target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the connection should be kept open after responding:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`; HTTP/1.0
    /// requires an explicit `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(value) if value.eq_ignore_ascii_case("close") => false,
            Some(value) if value.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.minor_version >= 1,
        }
    }

    /// Serializes the request to its wire form, adding `Content-Length`
    /// when a body is present.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.body.len());
        out.extend_from_slice(self.method.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target.as_bytes());
        out.extend_from_slice(format!(" HTTP/1.{}\r\n", self.minor_version).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if !self.body.is_empty() && self.header("content-length").is_none() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Header fields (`Content-Length` and `Connection` are added by the
    /// writer; do not set them manually).
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `application/json` response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body)
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status)
            .with_header("Content-Type", "text/plain")
            .with_body(body)
    }

    /// Adds a header field.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Sets the body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Response {
        self.body = body.into();
        self
    }

    /// The first header with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The canonical reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            204 => "No Content",
            400 => "Bad Request",
            401 => "Unauthorized",
            404 => "Not Found",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Whether this response explicitly demands the connection be closed
    /// (a handler-set `Connection: close` header overrides keep-alive).
    pub fn demands_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Serializes the response to its wire form, framing the body with
    /// `Content-Length` and advertising the connection disposition (unless
    /// the handler already set those headers itself).
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, self.reason()).as_bytes(),
        );
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if self.header("content-length").is_none() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        if self.header("connection").is_none() {
            out.extend_from_slice(if keep_alive {
                b"Connection: keep-alive\r\n".as_slice()
            } else {
                b"Connection: close\r\n".as_slice()
            });
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}
