//! The [`Strategy`] trait and range strategies for primitive types.

use crate::TestRng;
use rand::{Rng, SampleRange};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// This is the shim's replacement for `proptest::strategy::Strategy`:
/// sampling only, no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                self.clone().sample_single(rng)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields the same value — the shim of
/// `proptest::strategy::Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
