//! Workspace-local, offline stand-in for the `proptest` crate.
//!
//! Implements the subset of property-based testing the workspace uses: the
//! [`proptest!`] macro over `arg in strategy` bindings, range strategies for
//! the primitive types, [`collection::vec`], [`bool::ANY`] and the
//! `prop_assert*` macros. Each property runs for a fixed number of cases
//! (default 64, overridable with the `PROPTEST_CASES` environment variable)
//! with inputs drawn from a generator seeded deterministically from the test
//! name, so failures are reproducible run-to-run. Shrinking is not
//! implemented; the failure message reports the offending inputs instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// The generator handed to strategies; deterministic per test.
pub type TestRng = StdRng;

/// Number of cases each property runs, honoring `PROPTEST_CASES`.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Per-block configuration, settable with
/// `#![proptest_config(ProptestConfig::with_cases(n))]` inside [`proptest!`].
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property in the block runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: case_count(),
        }
    }
}

/// Creates the deterministic generator for a named property test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name gives every property its own stream.
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in test_name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange { min: range.start, max: range.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange { min: *range.start(), max: *range.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements come
    /// from `element` — the shim of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(
                self.size.min < self.size.max,
                "invalid size range for collection::vec (empty)"
            );
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over booleans.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy producing uniformly distributed booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean with equal probability — the shim of
    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: `proptest! { #[test] fn name(arg in strategy, ...) { body } }`.
///
/// Each function becomes a regular `#[test]` that runs the body
/// [`case_count`] times with fresh inputs. `prop_assert*` failures abort the
/// whole test with a message naming the case number and the inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)+
    ) => {
        $crate::__proptest_impl!(($config) $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)+);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])+
        fn $name() {
            let cases = ($config).cases;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                // Rendered before the body runs, which may consume the inputs.
                let inputs = [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+].join(", ");
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = result {
                    panic!(
                        "property {} failed at case {case}/{cases}: {message}\ninputs: {inputs}",
                        stringify!($name),
                    );
                }
            }
        }
    )+};
}

/// Asserts a condition inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "{} (left: {left:?}, right: {right:?})",
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left != right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {left:?})",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left != right) {
            return ::std::result::Result::Err(::std::format!(
                "{} (both: {left:?})",
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Skips the current case when an assumption does not hold. The shim simply
/// treats the case as passing (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
