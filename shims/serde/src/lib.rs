//! Workspace-local, offline stand-in for the `serde` crate.
//!
//! The build environment for this repository cannot reach crates.io, so the
//! real `serde` cannot be vendored. This shim keeps the same import surface
//! the workspace uses — `use serde::{Deserialize, Serialize}` together with
//! `#[derive(Serialize, Deserialize)]` — but implements a much simpler data
//! model: every serializable value maps to and from the [`value::Value`]
//! tree (a JSON-like document), and `serde_json` (also shimmed) renders that
//! tree to text.
//!
//! The design intentionally collapses serde's serializer/deserializer
//! abstraction into two object-safe-free methods so that the hand-rolled
//! derive macros in `serde_derive` stay small. If this repository ever gains
//! network access, both shims can be deleted and the manifests pointed back
//! at the real crates without touching any call sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{DeError, Value};

/// Types that can be converted into the shim's [`Value`] tree.
///
/// This is the shim's replacement for `serde::Serialize`. Derive it with
/// `#[derive(Serialize)]`.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the shim's [`Value`] tree.
///
/// This is the shim's replacement for `serde::Deserialize`. Derive it with
/// `#[derive(Deserialize)]`.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value tree does not match the shape of
    /// `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize implementations for primitives and std containers
// ---------------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations for primitives and std containers
// ---------------------------------------------------------------------------

fn integral(value: &Value) -> Result<i128, DeError> {
    match value {
        Value::I64(i) => Ok(i128::from(*i)),
        Value::U64(u) => Ok(i128::from(*u)),
        Value::F64(f) if f.fract() == 0.0 => Ok(*f as i128),
        other => Err(DeError::new(format!("expected integer, found {other:?}"))),
    }
}

macro_rules! deserialize_int {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = integral(value)?;
                <$ty>::try_from(wide)
                    .map_err(|_| DeError::new(format!("integer {wide} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::new(format!("expected number, found {value:?}")))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, found {value:?}")))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new(format!("expected string, found {value:?}")))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let text = String::from_value(value)?;
        let mut chars = text.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

fn elements(value: &Value) -> Result<&[Value], DeError> {
    value
        .as_array()
        .map(Vec::as_slice)
        .ok_or_else(|| DeError::new(format!("expected array, found {value:?}")))
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        elements(value)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        elements(value)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        elements(value)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        elements(value)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}")))
    }
}

fn map_entries(value: &Value) -> Result<&[(Value, Value)], DeError> {
    value
        .as_map()
        .map(Vec::as_slice)
        .ok_or_else(|| DeError::new(format!("expected map, found {value:?}")))
}

/// Decodes a map key. JSON text stringifies scalar keys (`{"5": ...}`), so
/// when direct decoding fails for a string key, the string content is
/// retried as a scalar — mirroring the real serde_json's ability to
/// round-trip integer-keyed maps through text.
fn key_from_value<K: Deserialize>(key: &Value) -> Result<K, DeError> {
    match K::from_value(key) {
        Ok(decoded) => Ok(decoded),
        Err(error) => {
            if let Value::Str(text) = key {
                if let Ok(i) = text.parse::<i64>() {
                    return K::from_value(&Value::I64(i));
                }
                if let Ok(u) = text.parse::<u64>() {
                    return K::from_value(&Value::U64(u));
                }
                if let Ok(f) = text.parse::<f64>() {
                    return K::from_value(&Value::F64(f));
                }
                if let Ok(b) = text.parse::<bool>() {
                    return K::from_value(&Value::Bool(b));
                }
            }
            Err(error)
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_entries(value)?
            .iter()
            .map(|(k, v)| Ok((key_from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_entries(value)?
            .iter()
            .map(|(k, v)| Ok((key_from_value(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match elements(value)? {
            [a, b] => Ok((A::from_value(a)?, B::from_value(b)?)),
            other => Err(DeError::new(format!("expected 2-element array, found {} elements", other.len()))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match elements(value)? {
            [a, b, c] => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            other => Err(DeError::new(format!("expected 3-element array, found {} elements", other.len()))),
        }
    }
}
