//! The JSON-like document tree the shimmed serde framework maps values
//! through, plus the deserialization error type.

use std::fmt;
use std::ops::Index;

/// A dynamically typed document value.
///
/// This is the shim's combined replacement for serde's data model and
/// `serde_json::Value`; the `serde_json` shim re-exports it under that name.
/// Maps keep their keys as full [`Value`]s so that non-string keys (e.g.
/// identifier types used in `BTreeMap`s) survive a round trip through the
/// tree; the JSON writer stringifies scalar keys on output.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence of values.
    Array(Vec<Value>),
    /// An ordered map; insertion order is preserved.
    Map(Vec<(Value, Value)>),
}

/// The `null` value, usable where a `&'static Value` is needed.
pub static NULL: Value = Value::Null;

/// Looks a key up in map entries, returning [`NULL`] when absent.
pub fn lookup<'a>(entries: &'a [(Value, Value)], key: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| matches!(k, Value::Str(s) if s == key))
        .map_or(&NULL, |(_, v)| v)
}

impl Value {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`; integers widen.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's map entries, if it is a map.
    pub fn as_map(&self) -> Option<&Vec<(Value, Value)>> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member access for maps: `value.get("key")`; `None` when the key is
    /// absent or `self` is not a map, matching `serde_json`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|entries| {
            entries
                .iter()
                .find(|(k, _)| matches!(k, Value::Str(s) if s == key))
                .map(|(_, v)| v)
        })
    }
}

/// Indexing a map by key; returns [`NULL`] for missing keys or non-maps,
/// matching `serde_json`'s behavior.
impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Map(entries) => lookup(entries, key),
            _ => &NULL,
        }
    }
}

/// Indexing an array by position; returns [`NULL`] out of bounds.
impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Map(a), Value::Map(b)) => a == b,
            // Numbers compare across representations.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_number {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! value_from_unsigned {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value { Value::U64(v as u64) }
        }
    )*};
}
value_from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! value_from_signed {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value { Value::I64(v as i64) }
        }
    )*};
}
value_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

/// An error produced while reconstructing a type from a [`Value`].
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}
