//! Workspace-local, offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply clonable, reference-counted, immutable byte
//! buffer with the conversions and accessors the workspace uses. Cloning
//! shares the underlying allocation, which preserves the property the
//! network emulation relies on (duplicating a packet does not copy its
//! payload).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A reference-counted immutable byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer borrowing nothing from a static slice (copies here;
    /// the zero-copy optimization of the real crate is irrelevant to tests).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for byte in self.data.iter() {
            for escaped in std::ascii::escape_default(*byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Self {
        Bytes {
            data: Arc::from(&data[..]),
        }
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes {
            data: Arc::from(data.as_bytes()),
        }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(bytes: Bytes) -> Self {
        bytes.to_vec()
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Array(
            self.data
                .iter()
                .map(|b| serde::value::Value::U64(u64::from(*b)))
                .collect(),
        )
    }
}

impl serde::Deserialize for Bytes {
    fn from_value(
        value: &serde::value::Value,
    ) -> Result<Self, serde::value::DeError> {
        let bytes: Vec<u8> = serde::Deserialize::from_value(value)?;
        Ok(Bytes::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_and_compare_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.first(), Some(&1));
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn from_str_and_static() {
        assert_eq!(Bytes::from("hi").len(), 2);
        assert_eq!(Bytes::from_static(b"hello").len(), 5);
        assert!(Bytes::new().is_empty());
    }
}
