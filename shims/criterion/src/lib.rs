//! Workspace-local, offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BenchmarkId`], [`Throughput`], [`BatchSize`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical machinery.
//! Each benchmark warms up briefly, then runs batches until a time budget is
//! spent and reports the mean iteration time (and derived throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine invocation regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// Units processed per iteration, used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Total measured time across iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iterations: u64,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            budget,
        }
    }

    /// Measures repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        for _ in 0..3 {
            std_black_box(routine());
        }
        let loop_start = Instant::now();
        while loop_start.elapsed() < self.budget && self.iterations < 1_000_000 {
            let start = Instant::now();
            std_black_box(routine());
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Measures `routine` over inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let loop_start = Instant::now();
        while loop_start.elapsed() < self.budget && self.iterations < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Like [`iter_batched`](Bencher::iter_batched) but the routine borrows
    /// its input.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut first = setup();
        std_black_box(routine(&mut first));
        let loop_start = Instant::now();
        while loop_start.elapsed() < self.budget && self.iterations < 1_000_000 {
            let mut input = setup();
            let start = Instant::now();
            std_black_box(routine(&mut input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iterations == 0 {
            println!("{id:<50} no samples");
            return;
        }
        let mean = self.elapsed / u32::try_from(self.iterations).unwrap_or(u32::MAX);
        let mut line = format!("{id:<50} {mean:>12.3?}/iter ({} iters)", self.iterations);
        if let Some(throughput) = throughput {
            let per_second = |count: u64| {
                let secs = mean.as_secs_f64();
                if secs > 0.0 {
                    count as f64 / secs
                } else {
                    f64::INFINITY
                }
            };
            match throughput {
                Throughput::Elements(count) => {
                    line.push_str(&format!("  {:.0} elem/s", per_second(count)));
                }
                Throughput::Bytes(count) => {
                    line.push_str(&format!("  {:.0} B/s", per_second(count)));
                }
            }
        }
        println!("{line}");
    }
}

/// The benchmark driver; collects and runs benchmark closures.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quick` (or running under `cargo test`) shrinks the budget so a
        // full sweep stays fast.
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
        Criterion {
            budget: if quick {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(300)
            },
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        bencher.report(&id.id, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates (applies to later benches).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's time budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's time budget is fixed.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
