//! A recursive-descent JSON parser producing a [`Value`] tree.

use crate::{Error, Value};

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_whitespace(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, expected: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&expected) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected '{}' at byte {pos}",
            expected as char,
            pos = *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}", pos = *pos))),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Map(entries));
    }
    loop {
        skip_whitespace(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_whitespace(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((Value::Str(key), value));
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}", pos = *pos))),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: must pair with \uDC00-\uDFFF.
                            if bytes.get(*pos + 1..*pos + 3) != Some(br"\u".as_slice()) {
                                return Err(Error::new("unpaired surrogate escape"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::new("invalid low surrogate escape"));
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], start: usize) -> Result<u32, Error> {
    let hex = bytes
        .get(start..start + 4)
        .ok_or_else(|| Error::new("truncated \\u escape"))?;
    let hex = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
    u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() {
        return Err(Error::new(format!("expected a value at byte {start}")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(if i >= 0 {
                Value::U64(i as u64)
            } else {
                Value::I64(i)
            });
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::U64(u));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number '{text}'")))
}
