//! Workspace-local, offline stand-in for the `serde_json` crate.
//!
//! Provides the surface the workspace uses: [`Value`] (re-exported from the
//! `serde` shim's data model), [`to_string`], [`from_str`], [`to_value`] and
//! the [`json!`] macro. The JSON grammar implemented here is complete for
//! machine-generated documents (objects, arrays, strings with escapes,
//! numbers, booleans, `null`); it does not aim for byte-for-byte
//! compatibility with the real crate's formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::value::Value;

use serde::value::DeError;
use serde::{Deserialize, Serialize};
use std::fmt;

mod parser;
mod writer;

/// An error from serializing to or parsing JSON text.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// Unlike the real `serde_json::to_value` this is infallible, because the
/// shim's data model has no unserializable states.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] when the tree does not match the target type.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Returns an [`Error`] for map keys that cannot be rendered as JSON object
/// keys (e.g. arrays used as keys).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    writer::write(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parser::parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Builds a [`Value`] from JSON-like syntax, mirroring `serde_json::json!`.
///
/// Supports object literals (whose values may be nested objects, `null` or
/// arbitrary expressions), array literals of expressions, and plain
/// expressions implementing the shim's `Serialize` trait.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($element:expr),* $(,)? ]) => {{
        let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $(items.push($crate::to_value(&$element));)*
        $crate::Value::Array(items)
    }};
    ({}) => { $crate::Value::Map(::std::vec::Vec::new()) };
    ({ $($body:tt)+ }) => {{
        let mut entries: ::std::vec::Vec<($crate::Value, $crate::Value)> = ::std::vec::Vec::new();
        $crate::json_internal!(@object entries () ($($body)+));
        $crate::Value::Map(entries)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: a token-tree muncher for object
/// bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // Done.
    (@object $entries:ident () ()) => {};
    // "key": { nested object }, ...
    (@object $entries:ident ($($key:tt)+) (: { $($map:tt)* } , $($rest:tt)*)) => {
        $entries.push(($crate::json!($($key)+), $crate::json!({ $($map)* })));
        $crate::json_internal!(@object $entries () ($($rest)*));
    };
    // "key": { nested object } — final entry.
    (@object $entries:ident ($($key:tt)+) (: { $($map:tt)* })) => {
        $entries.push(($crate::json!($($key)+), $crate::json!({ $($map)* })));
    };
    // "key": null, ...
    (@object $entries:ident ($($key:tt)+) (: null , $($rest:tt)*)) => {
        $entries.push(($crate::json!($($key)+), $crate::Value::Null));
        $crate::json_internal!(@object $entries () ($($rest)*));
    };
    // "key": null — final entry.
    (@object $entries:ident ($($key:tt)+) (: null)) => {
        $entries.push(($crate::json!($($key)+), $crate::Value::Null));
    };
    // "key": expression, ...
    (@object $entries:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*)) => {
        $entries.push(($crate::json!($($key)+), $crate::to_value(&$value)));
        $crate::json_internal!(@object $entries () ($($rest)*));
    };
    // "key": expression — final entry.
    (@object $entries:ident ($($key:tt)+) (: $value:expr)) => {
        $entries.push(($crate::json!($($key)+), $crate::to_value(&$value)));
    };
    // Munch one token of the key.
    (@object $entries:ident ($($key:tt)*) ($token:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $entries ($($key)* $token) ($($rest)*));
    };
}
