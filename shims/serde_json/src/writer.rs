//! Compact JSON rendering of a [`Value`] tree.

use crate::{Error, Value};

pub(crate) fn write(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(key, out)?;
                out.push(':');
                write(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

/// JSON object keys must be strings; scalar keys are stringified, which is
/// also what the real serde_json does for integer keys.
fn write_key(key: &Value, out: &mut String) -> Result<(), Error> {
    match key {
        Value::Str(s) => write_string(s, out),
        Value::I64(i) => write_string(&i.to_string(), out),
        Value::U64(u) => write_string(&u.to_string(), out),
        Value::F64(f) => write_string(&f.to_string(), out),
        Value::Bool(b) => write_string(&b.to_string(), out),
        other => {
            return Err(Error::new(format!(
                "cannot render {other:?} as a JSON object key"
            )))
        }
    }
    Ok(())
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let text = f.to_string();
        out.push_str(&text);
        // Keep floats recognizable as floats on re-parse.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; the real crate emits null here too.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
