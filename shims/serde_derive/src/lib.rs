//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the workspace-local `serde` shim.
//!
//! The build environment for this repository has no access to crates.io, so
//! the usual `serde`/`serde_derive`/`syn`/`quote` stack is unavailable. This
//! crate re-implements the small part of `serde_derive` that the workspace
//! actually uses: plain structs (named, tuple and unit) and enums (unit,
//! tuple and struct variants) without generics and without `#[serde(...)]`
//! attributes. The data model is the [`Value`] tree defined by the `serde`
//! shim; the generated code maps every type to and from that tree.
//!
//! The input token stream is parsed by hand (no `syn`), which is feasible
//! because the supported grammar is tiny. Unsupported shapes produce a
//! `compile_error!` with a pointer to this file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A single struct or enum-variant field.
struct Field {
    /// Field name for named fields, `None` for tuple fields.
    name: Option<String>,
    /// The field's type, rendered back to source text.
    ty: String,
}

/// The shape of one enum variant.
enum VariantShape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

/// The shape of the item the derive is attached to.
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// Derives the shim's `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the shim's `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&str, &Shape) -> String) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => gen(&name, &shape)
            .parse()
            .expect("shim serde_derive generated invalid Rust"),
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("compile_error! is valid Rust"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("serde shim derive: expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("serde shim derive: expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported (see shims/serde_derive)"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_fields(group.stream(), true)?)))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(parse_fields(group.stream(), false)?)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("serde shim derive: malformed struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(group.stream())?)))
            }
            other => Err(format!("serde shim derive: malformed enum body: {other:?}")),
        },
        other => Err(format!("serde shim derive: unsupported item kind `{other}`")),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute: skip the `#` and the bracket group.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            // `pub`, optionally followed by `(crate)` etc.
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on commas that sit outside any `<...>` nesting.
/// (Parenthesis/bracket/brace nesting is already opaque: groups are single
/// token trees.)
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    // Tracks a joint `-` so the `>` of `->` (fn-pointer types) is not
    // miscounted as closing an angle bracket.
    let mut after_joint_minus = false;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !after_joint_minus => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                parts.push(std::mem::take(&mut current));
                after_joint_minus = false;
                continue;
            }
            _ => {}
        }
        after_joint_minus = matches!(
            &token,
            TokenTree::Punct(p)
                if p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint
        );
        current.push(token);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn render(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_fields(stream: TokenStream, named: bool) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for part in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attributes_and_visibility(&part, &mut i);
        if i >= part.len() {
            continue;
        }
        if named {
            let name = match &part[i] {
                TokenTree::Ident(ident) => ident.to_string(),
                other => return Err(format!("serde shim derive: expected field name, found {other}")),
            };
            // Skip the name and the `:`.
            let ty = render(&part[i + 2..]);
            fields.push(Field { name: Some(name), ty });
        } else {
            fields.push(Field { name: None, ty: render(&part[i..]) });
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for part in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attributes_and_visibility(&part, &mut i);
        if i >= part.len() {
            continue;
        }
        let name = match &part[i] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("serde shim derive: expected variant name, found {other}")),
        };
        i += 1;
        let shape = match part.get(i) {
            None => VariantShape::Unit,
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                VariantShape::Tuple(parse_fields(group.stream(), false)?)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                VariantShape::Named(parse_fields(group.stream(), true)?)
            }
            Some(other) => {
                return Err(format!(
                    "serde shim derive: unsupported tokens after variant `{name}`: {other}"
                ))
            }
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

const V: &str = "::serde::value::Value";
const E: &str = "::serde::value::DeError";

fn str_value(text: &str) -> String {
    format!("{V}::Str(::std::string::String::from({text:?}))")
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("{V}::Null"),
        Shape::TupleStruct(fields) if fields.len() == 1 => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::TupleStruct(fields) => {
            let mut code = String::from("{ let mut items = ::std::vec::Vec::new();\n");
            for i in 0..fields.len() {
                code.push_str(&format!(
                    "items.push(::serde::Serialize::to_value(&self.{i}));\n"
                ));
            }
            code.push_str(&format!("{V}::Array(items) }}"));
            code
        }
        Shape::NamedStruct(fields) => {
            let mut code = String::from("{ let mut entries = ::std::vec::Vec::new();\n");
            for field in fields {
                let fname = field.name.as_ref().expect("named field");
                code.push_str(&format!(
                    "entries.push(({key}, ::serde::Serialize::to_value(&self.{fname})));\n",
                    key = str_value(fname)
                ));
            }
            code.push_str(&format!("{V}::Map(entries) }}"));
            code
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                let key = str_value(vname);
                match &variant.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!("{name}::{vname} => {key},\n"));
                    }
                    VariantShape::Tuple(fields) if fields.len() == 1 => {
                        arms.push_str(&format!(
                            "{name}::{vname}(f0) => {{ let mut entries = ::std::vec::Vec::new(); \
                             entries.push(({key}, ::serde::Serialize::to_value(f0))); {V}::Map(entries) }}\n,"
                        ));
                    }
                    VariantShape::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|i| format!("f{i}")).collect();
                        let mut inner = String::from(
                            "{ let mut items = ::std::vec::Vec::new();\n",
                        );
                        for binder in &binders {
                            inner.push_str(&format!(
                                "items.push(::serde::Serialize::to_value({binder}));\n"
                            ));
                        }
                        inner.push_str(&format!("{V}::Array(items) }}"));
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{ let mut entries = ::std::vec::Vec::new(); \
                             entries.push(({key}, {inner})); {V}::Map(entries) }}\n,",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders: Vec<&str> = fields
                            .iter()
                            .map(|f| f.name.as_deref().expect("named field"))
                            .collect();
                        let mut inner = String::from(
                            "{ let mut fields_map = ::std::vec::Vec::new();\n",
                        );
                        for binder in &binders {
                            inner.push_str(&format!(
                                "fields_map.push(({fkey}, ::serde::Serialize::to_value({binder})));\n",
                                fkey = str_value(binder)
                            ));
                        }
                        inner.push_str(&format!("{V}::Map(fields_map) }}"));
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{ let mut entries = ::std::vec::Vec::new(); \
                             entries.push(({key}, {inner})); {V}::Map(entries) }}\n,",
                            binds = binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> {V} {{\n{body}\n}}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

fn field_from(ty: &str, source: &str) -> String {
    format!("<{ty} as ::serde::Deserialize>::from_value({source})?")
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::TupleStruct(fields) if fields.len() == 1 => format!(
            "::std::result::Result::Ok({name}({}))",
            field_from(&fields[0].ty, "value")
        ),
        Shape::TupleStruct(fields) => {
            let n = fields.len();
            let items: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(i, f)| field_from(&f.ty, &format!("&items[{i}]")))
                .collect();
            format!(
                "{{ let items = value.as_array().ok_or_else(|| {E}::new(\"expected array for tuple struct {name}\"))?;\n\
                 if items.len() != {n} {{ return ::std::result::Result::Err({E}::new(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({items})) }}",
                items = items.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_ref().expect("named field");
                    format!(
                        "{fname}: {}",
                        field_from(&f.ty, &format!("::serde::value::lookup(entries, {fname:?})"))
                    )
                })
                .collect();
            format!(
                "{{ let entries = value.as_map().ok_or_else(|| {E}::new(\"expected map for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }}) }}",
                inits = inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantShape::Tuple(fields) if fields.len() == 1 => {
                        data_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}({})),\n",
                            field_from(&fields[0].ty, "content")
                        ));
                    }
                    VariantShape::Tuple(fields) => {
                        let n = fields.len();
                        let items: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(i, f)| field_from(&f.ty, &format!("&items[{i}]")))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{ let items = content.as_array().ok_or_else(|| {E}::new(\"expected array for variant {name}::{vname}\"))?;\n\
                             if items.len() != {n} {{ return ::std::result::Result::Err({E}::new(\"wrong arity for {name}::{vname}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({items})) }}\n,",
                            items = items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let fname = f.name.as_ref().expect("named field");
                                format!(
                                    "{fname}: {}",
                                    field_from(
                                        &f.ty,
                                        &format!("::serde::value::lookup(entries, {fname:?})")
                                    )
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{ let entries = content.as_map().ok_or_else(|| {E}::new(\"expected map for variant {name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }}) }}\n,",
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                     {V}::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err({E}::new(format!(\"unknown variant '{{other}}' for enum {name}\"))),\n\
                     }},\n\
                     {V}::Map(map_entries) if map_entries.len() == 1 => {{\n\
                         let (tag_value, content) = &map_entries[0];\n\
                         let tag = tag_value.as_str().ok_or_else(|| {E}::new(\"enum tag must be a string\"))?;\n\
                         match tag {{\n\
                             {data_arms}\n\
                             other => ::std::result::Result::Err({E}::new(format!(\"unknown variant '{{other}}' for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err({E}::new(\"unsupported value shape for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &{V}) -> ::std::result::Result<Self, {E}> {{\n{body}\n}}\n\
         }}"
    )
}
