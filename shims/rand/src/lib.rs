//! Workspace-local, offline stand-in for the `rand` crate (0.8-style API).
//!
//! Implements the subset the workspace uses: the [`RngCore`], [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::StdRng`], uniform `gen`/`gen_range`
//! sampling for the primitive types, and the [`Error`] type. `StdRng` is a
//! xoshiro256++ generator seeded through SplitMix64 — deterministic for a
//! given seed, which is all the testbed requires (it never relies on the
//! exact stream the real `StdRng` would produce, only on repeatability).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations ([`RngCore::try_fill_bytes`]).
#[derive(Debug, Clone)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw output blocks.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Types samplable uniformly from an [`RngCore`] via [`Rng::gen`] — the
/// shim's replacement for `Standard: Distribution<T>`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty => $method:ident),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$method() as $ty
            }
        }
    )*};
}
standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64
);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `span` (which must be non-zero) via 128-bit widening
/// multiply; bias is at most 2⁻⁶⁴ per draw, far below anything the testbed's
/// statistical tests can resolve.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(below(rng, span))) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $ty;
                }
                (start as i128 + i128::from(below(rng, span as u64))) as $ty
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$ty as Standard>::sample(rng);
                let sample = self.start + (self.end - self.start) * unit;
                // Guard against floating-point rounding up to the excluded end.
                if sample < self.end { sample } else { self.start }
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$ty as Standard>::sample(rng);
                start + (end - start) * unit
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial returning `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }

    /// Fills a slice with uniformly distributed values.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut splitmix = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let value = splitmix64(&mut splitmix);
            for (slot, byte) in chunk.iter_mut().zip(value.to_le_bytes()) {
                *slot = byte;
            }
        }
        Self::from_seed(seed)
    }

    /// Creates a generator with a seed drawn from ambient entropy.
    fn from_entropy() -> Self {
        use std::hash::{BuildHasher, Hasher};
        let entropy = std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish();
        Self::seed_from_u64(entropy)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Error, RngCore, SeedableRng};

    /// Mock generators for deterministic examples and tests.
    pub mod mock {
        use super::RngCore;

        /// A generator returning an arithmetic sequence of `u64`s.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Starts the sequence at `initial`, advancing by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }

            fn next_u64(&mut self) -> u64 {
                let result = self.value;
                self.value = self.value.wrapping_add(self.increment);
                result
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let value = self.next_u64();
                    for (slot, byte) in chunk.iter_mut().zip(value.to_le_bytes()) {
                        *slot = byte;
                    }
                }
            }
        }
    }

    /// The shim's standard generator: xoshiro256++.
    ///
    /// Deterministic for a given seed but *not* stream-compatible with the
    /// real `rand::rngs::StdRng` (which is ChaCha12); the workspace only
    /// relies on determinism.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.state[0]
                .wrapping_add(self.state[3])
                .rotate_left(23)
                .wrapping_add(self.state[0]);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let value = self.next_u64();
                for (slot, byte) in chunk.iter_mut().zip(value.to_le_bytes()) {
                    *slot = byte;
                }
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                state[i] = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; rehash it away.
            if state == [0, 0, 0, 0] {
                let mut s = 0x6c078965u64;
                for slot in &mut state {
                    *slot = splitmix64(&mut s);
                }
            }
            StdRng { state }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn ranges_respect_bounds() {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..1000 {
                let x: f64 = rng.gen_range(0.25..0.5);
                assert!((0.25..0.5).contains(&x));
                let n = rng.gen_range(3u64..10);
                assert!((3..10).contains(&n));
                let i = rng.gen_range(-5i32..=5);
                assert!((-5..=5).contains(&i));
            }
        }

        #[test]
        fn unit_interval_mean_is_centered() {
            let mut rng = StdRng::seed_from_u64(2);
            let n = 20_000;
            let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
            assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
        }
    }
}
