//! Celestial hosts.
//!
//! A host is one physical or cloud server running a machine manager and a set
//! of microVMs. Hosts can be over-provisioned — the paper deliberately runs
//! an experiment that Celestial estimates at 137 cores on 96 cores (§4.1) —
//! so placement is only limited by memory, while CPU is tracked as
//! utilisation.

use crate::firecracker::FirecrackerModel;
use crate::machine::{MachineState, MicroVm};
use celestial_types::ids::{HostId, MachineId, NodeId};
use celestial_types::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One Celestial host with its capacity and the microVMs placed on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Host {
    id: HostId,
    cores: u32,
    memory_mib: u64,
    model: FirecrackerModel,
    machines: BTreeMap<MachineId, MicroVm>,
    node_index: BTreeMap<NodeId, MachineId>,
    /// CPU fraction consumed by the machine manager itself (the paper
    /// measures ~0.2 % steady-state).
    manager_cpu_fraction: f64,
    /// Memory consumed by the machine manager in MiB.
    manager_memory_mib: u64,
}

impl Host {
    /// Creates a host with the given core count and memory.
    pub fn new(id: HostId, cores: u32, memory_mib: u64) -> Self {
        Host {
            id,
            cores,
            memory_mib,
            model: FirecrackerModel::default(),
            machines: BTreeMap::new(),
            node_index: BTreeMap::new(),
            manager_cpu_fraction: 0.002,
            manager_memory_mib: 1024,
        }
    }

    /// A GCP `N2-highcpu-32` instance as used in the paper's evaluation:
    /// 32 cores, 32 GiB memory.
    pub fn n2_highcpu_32(id: HostId) -> Self {
        Host::new(id, 32, 32 * 1024)
    }

    /// Overrides the Firecracker resource model, returning the modified host.
    pub fn with_model(mut self, model: FirecrackerModel) -> Self {
        self.model = model;
        self
    }

    /// The host identifier.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// Number of physical cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Total memory in MiB.
    pub fn memory_mib(&self) -> u64 {
        self.memory_mib
    }

    /// The Firecracker resource model used for accounting.
    pub fn model(&self) -> &FirecrackerModel {
        &self.model
    }

    /// Number of machines placed on this host (in any state).
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Number of machines whose Firecracker process currently exists
    /// (booting, running or suspended) — the `# Firecracker processes` series
    /// of Figs. 7 and 8.
    pub fn firecracker_process_count(&self) -> usize {
        self.machines
            .values()
            .filter(|m| m.state().holds_memory())
            .count()
    }

    /// Places a machine on this host.
    ///
    /// Both CPU and memory are freely over-provisioned — Celestial relies on
    /// microVMs using far less than their allocation (Firecracker backs guest
    /// memory lazily), and the paper deliberately runs an estimated 137 cores
    /// of machines on 96 physical cores. Placement is therefore refused only
    /// when the node already has a machine on this host; sizing the fleet is
    /// the resource estimator's job, not an admission check.
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostCapacity`] if the node already has a machine on
    /// this host.
    pub fn place(&mut self, vm: MicroVm) -> Result<()> {
        if self.node_index.contains_key(&vm.node()) {
            return Err(Error::HostCapacity(format!(
                "{} already has a machine on {}",
                vm.node(),
                self.id
            )));
        }
        self.node_index.insert(vm.node(), vm.id());
        self.machines.insert(vm.id(), vm);
        Ok(())
    }

    /// Sum of memory allocated to machines on this host in MiB (the worst
    /// case if every guest touched all of its memory).
    pub fn allocated_memory_mib(&self) -> u64 {
        self.machines
            .values()
            .map(|m| m.resources().memory_mib)
            .sum()
    }

    /// Removes a machine from the host, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] if no machine with this identifier is
    /// placed here.
    pub fn remove(&mut self, id: MachineId) -> Result<MicroVm> {
        let vm = self
            .machines
            .remove(&id)
            .ok_or_else(|| Error::unknown_node(format!("{id} on {}", self.id)))?;
        self.node_index.remove(&vm.node());
        Ok(vm)
    }

    /// The machine backing `node`, if it is placed on this host.
    pub fn machine_for_node(&self, node: NodeId) -> Option<&MicroVm> {
        self.node_index.get(&node).and_then(|id| self.machines.get(id))
    }

    /// Mutable access to the machine backing `node`.
    pub fn machine_for_node_mut(&mut self, node: NodeId) -> Option<&mut MicroVm> {
        let id = self.node_index.get(&node)?;
        self.machines.get_mut(id)
    }

    /// Immutable access to a machine by identifier.
    pub fn machine(&self, id: MachineId) -> Option<&MicroVm> {
        self.machines.get(&id)
    }

    /// Mutable access to a machine by identifier.
    pub fn machine_mut(&mut self, id: MachineId) -> Option<&mut MicroVm> {
        self.machines.get_mut(&id)
    }

    /// Iterates over all machines on the host.
    pub fn machines(&self) -> impl Iterator<Item = &MicroVm> {
        self.machines.values()
    }

    /// Mutably iterates over all machines on the host.
    pub fn machines_mut(&mut self) -> impl Iterator<Item = &mut MicroVm> {
        self.machines.values_mut()
    }

    /// The nodes of all machines on the host.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.node_index.keys().copied().collect()
    }

    /// Sum of vCPUs allocated to machines on this host (the quantity the
    /// resource estimator compares against physical cores).
    pub fn allocated_vcpus(&self) -> u32 {
        self.machines.values().map(|m| m.resources().vcpus).sum()
    }

    /// The CPU utilisation of the host in `[0, 1]`: guest load of the
    /// microVMs (weighted by their vCPU allocation, capped at the physical
    /// core count) plus the machine manager overhead, plus a small boot cost
    /// for machines currently booting.
    pub fn cpu_utilization(&self) -> f64 {
        let guest: f64 = self
            .machines
            .values()
            .map(|m| match m.state() {
                MachineState::Running => m.cpu_load() * f64::from(m.resources().vcpus),
                // Booting a microVM briefly costs about one core.
                MachineState::Booting => 1.0,
                _ => 0.0,
            })
            .sum();
        ((guest / f64::from(self.cores)) + self.manager_cpu_fraction).min(1.0)
    }

    /// The memory utilisation of the host in `[0, 1]`, following the
    /// Firecracker memory model (suspended machines keep their memory unless
    /// ballooning is enabled).
    pub fn memory_utilization(&self) -> f64 {
        let used: u64 = self
            .machines
            .values()
            .map(|m| self.model.memory_footprint_mib(m))
            .sum::<u64>()
            + self.manager_memory_mib;
        (used as f64 / self.memory_mib as f64).min(1.0)
    }

    /// Memory used by microVMs only (excluding the machine manager), in MiB.
    pub fn microvm_memory_mib(&self) -> u64 {
        self.machines
            .values()
            .map(|m| self.model.memory_footprint_mib(m))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_types::resources::MachineResources;
    use celestial_types::time::SimInstant;

    fn vm(id: u64, node: NodeId, resources: MachineResources) -> MicroVm {
        MicroVm::new(MachineId(id), node, resources)
    }

    fn booted(mut m: MicroVm) -> MicroVm {
        let ready = m.boot(SimInstant::EPOCH).unwrap();
        m.finish_boot(ready).unwrap();
        m
    }

    #[test]
    fn placement_tracks_allocations_without_rejecting_overprovisioning() {
        let mut host = Host::new(HostId(0), 4, 4096);
        host.place(vm(0, NodeId::satellite(0, 0), MachineResources::new(2, 2048)))
            .unwrap();
        // Memory can be over-provisioned: a second large machine is accepted
        // and the allocation accounting reflects it.
        host.place(vm(1, NodeId::satellite(0, 1), MachineResources::new(2, 2048)))
            .unwrap();
        host.place(vm(2, NodeId::satellite(0, 2), MachineResources::new(1, 512)))
            .unwrap();
        assert_eq!(host.machine_count(), 3);
        assert_eq!(host.allocated_memory_mib(), 4608);
        assert!(host.allocated_memory_mib() > host.memory_mib());
    }

    #[test]
    fn cpu_can_be_overprovisioned() {
        let mut host = Host::n2_highcpu_32(HostId(0));
        // 40 satellites with 2 vCPUs each: 80 vCPUs on 32 cores.
        for i in 0..40 {
            host.place(vm(
                i,
                NodeId::satellite(0, i as u32),
                MachineResources::new(2, 512),
            ))
            .unwrap();
        }
        assert_eq!(host.allocated_vcpus(), 80);
        assert!(host.allocated_vcpus() > host.cores());
    }

    #[test]
    fn duplicate_node_placement_is_rejected() {
        let mut host = Host::n2_highcpu_32(HostId(0));
        host.place(vm(0, NodeId::satellite(0, 0), MachineResources::new(1, 128)))
            .unwrap();
        assert!(host
            .place(vm(1, NodeId::satellite(0, 0), MachineResources::new(1, 128)))
            .is_err());
    }

    #[test]
    fn utilization_reflects_machine_states_and_load() {
        let mut host = Host::n2_highcpu_32(HostId(0));
        for i in 0..8 {
            let mut m = booted(vm(i, NodeId::satellite(0, i as u32), MachineResources::new(2, 512)));
            m.set_cpu_load(0.5);
            host.place(m).unwrap();
        }
        // 8 machines * 2 vCPUs * 0.5 load = 8 cores of 32 → 25 % plus manager.
        let cpu = host.cpu_utilization();
        assert!((cpu - 0.252).abs() < 0.01, "cpu {cpu}");
        // Memory: 8 * 133 MiB resident + 1024 MiB manager out of 32 GiB ≈ 6.4 %.
        let mem = host.memory_utilization();
        assert!((mem - 0.064).abs() < 0.01, "mem {mem}");
        assert_eq!(host.firecracker_process_count(), 8);
    }

    #[test]
    fn suspended_machines_keep_memory_but_not_cpu() {
        let mut host = Host::n2_highcpu_32(HostId(0));
        let mut m = booted(vm(0, NodeId::satellite(0, 0), MachineResources::new(2, 2048)));
        m.set_cpu_load(1.0);
        host.place(m).unwrap();
        let busy_cpu = host.cpu_utilization();
        let busy_mem = host.memory_utilization();
        host.machine_for_node_mut(NodeId::satellite(0, 0))
            .unwrap()
            .suspend()
            .unwrap();
        assert!(host.cpu_utilization() < busy_cpu);
        assert_eq!(host.memory_utilization(), busy_mem);
        assert_eq!(host.firecracker_process_count(), 1);
    }

    #[test]
    fn remove_returns_the_machine() {
        let mut host = Host::n2_highcpu_32(HostId(0));
        host.place(vm(7, NodeId::ground_station(0), MachineResources::new(1, 128)))
            .unwrap();
        let removed = host.remove(MachineId(7)).unwrap();
        assert_eq!(removed.node(), NodeId::ground_station(0));
        assert_eq!(host.machine_count(), 0);
        assert!(host.remove(MachineId(7)).is_err());
        assert!(host.machine_for_node(NodeId::ground_station(0)).is_none());
    }

    #[test]
    fn accessors_work() {
        let mut host = Host::n2_highcpu_32(HostId(3));
        assert_eq!(host.id(), HostId(3));
        assert_eq!(host.cores(), 32);
        assert_eq!(host.memory_mib(), 32 * 1024);
        host.place(vm(1, NodeId::ground_station(1), MachineResources::new(1, 128)))
            .unwrap();
        assert!(host.machine(MachineId(1)).is_some());
        assert!(host.machine_mut(MachineId(1)).is_some());
        assert_eq!(host.nodes(), vec![NodeId::ground_station(1)]);
        assert_eq!(host.machines().count(), 1);
    }
}
