//! Placement of machines onto hosts.
//!
//! Celestial distributes microVMs across its hosts (§3.3). Two policies are
//! provided: round-robin (the default, which spreads load evenly and is what
//! the original implementation does) and memory-aware best-fit bin packing.
//! Experiments can also pin specific nodes to specific hosts — the paper pins
//! all three clients of the §4 evaluation to one host so they can share a PTP
//! clock.

use celestial_types::ids::{HostId, NodeId};
use celestial_types::resources::MachineResources;
use celestial_types::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The placement policy used for nodes that are not explicitly pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PlacementPolicy {
    /// Assign machines to hosts in rotation.
    #[default]
    RoundRobin,
    /// Assign each machine to the host with the most free memory remaining
    /// (best fit by remaining capacity).
    MemoryAware,
}

/// A host's capacity as seen by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostCapacity {
    /// The host identifier.
    pub host: HostId,
    /// Physical cores (informational; CPU may be over-provisioned).
    pub cores: u32,
    /// Memory available for microVMs in MiB.
    pub memory_mib: u64,
}

/// The scheduler computing a machine-to-host placement.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    policy: PlacementPolicy,
    hosts: Vec<HostCapacity>,
    pinned: BTreeMap<NodeId, HostId>,
}

impl Scheduler {
    /// Creates a scheduler over the given hosts with the given policy.
    pub fn new(policy: PlacementPolicy, hosts: Vec<HostCapacity>) -> Self {
        Scheduler {
            policy,
            hosts,
            pinned: BTreeMap::new(),
        }
    }

    /// Pins a node to a specific host, overriding the policy.
    pub fn pin(&mut self, node: NodeId, host: HostId) {
        self.pinned.insert(node, host);
    }

    /// The hosts known to the scheduler.
    pub fn hosts(&self) -> &[HostCapacity] {
        &self.hosts
    }

    /// Computes a placement for the given `(node, resources)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostCapacity`] if there are no hosts, a pinned host
    /// does not exist, or the machines cannot fit into the hosts' memory.
    pub fn place(
        &self,
        machines: &[(NodeId, MachineResources)],
    ) -> Result<BTreeMap<NodeId, HostId>> {
        if self.hosts.is_empty() {
            return Err(Error::HostCapacity("no hosts available".to_owned()));
        }
        let mut remaining: BTreeMap<HostId, u64> = self
            .hosts
            .iter()
            .map(|h| (h.host, h.memory_mib))
            .collect();
        let mut placement = BTreeMap::new();

        // Pinned nodes first.
        for (node, resources) in machines {
            if let Some(host) = self.pinned.get(node) {
                let free = remaining
                    .get_mut(host)
                    .ok_or_else(|| Error::HostCapacity(format!("pinned host {host} does not exist")))?;
                if *free < resources.memory_mib {
                    return Err(Error::HostCapacity(format!(
                        "pinned host {host} cannot fit {node} ({} MiB requested, {} MiB free)",
                        resources.memory_mib, free
                    )));
                }
                *free -= resources.memory_mib;
                placement.insert(*node, *host);
            }
        }

        // Remaining nodes by policy.
        let mut rr_cursor = 0usize;
        for (node, resources) in machines {
            if placement.contains_key(node) {
                continue;
            }
            let host = match self.policy {
                PlacementPolicy::RoundRobin => {
                    // Try hosts in rotation starting from the cursor until one
                    // has room.
                    let mut chosen = None;
                    for offset in 0..self.hosts.len() {
                        let candidate = self.hosts[(rr_cursor + offset) % self.hosts.len()].host;
                        if remaining[&candidate] >= resources.memory_mib {
                            chosen = Some(candidate);
                            rr_cursor = (rr_cursor + offset + 1) % self.hosts.len();
                            break;
                        }
                    }
                    chosen
                }
                PlacementPolicy::MemoryAware => remaining
                    .iter()
                    .filter(|(_, free)| **free >= resources.memory_mib)
                    .max_by_key(|(_, free)| **free)
                    .map(|(host, _)| *host),
            };
            let host = host.ok_or_else(|| {
                Error::HostCapacity(format!(
                    "no host can fit {node} ({} MiB requested)",
                    resources.memory_mib
                ))
            })?;
            *remaining.get_mut(&host).expect("host exists") -= resources.memory_mib;
            placement.insert(*node, host);
        }

        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hosts(n: u32, memory_mib: u64) -> Vec<HostCapacity> {
        (0..n)
            .map(|i| HostCapacity {
                host: HostId(i),
                cores: 32,
                memory_mib,
            })
            .collect()
    }

    fn satellites(n: u32) -> Vec<(NodeId, MachineResources)> {
        (0..n)
            .map(|i| (NodeId::satellite(0, i), MachineResources::new(2, 512)))
            .collect()
    }

    #[test]
    fn round_robin_spreads_machines_evenly() {
        let scheduler = Scheduler::new(PlacementPolicy::RoundRobin, hosts(3, 32 * 1024));
        let placement = scheduler.place(&satellites(30)).unwrap();
        let mut counts = BTreeMap::new();
        for host in placement.values() {
            *counts.entry(*host).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 3);
        assert!(counts.values().all(|c| *c == 10));
    }

    #[test]
    fn memory_aware_fills_the_emptiest_host_first() {
        let mut capacities = hosts(2, 8 * 1024);
        capacities[1].memory_mib = 32 * 1024;
        let scheduler = Scheduler::new(PlacementPolicy::MemoryAware, capacities);
        let placement = scheduler.place(&satellites(4)).unwrap();
        // All four fit comfortably into the big host before it drops below
        // the small one's free memory.
        let on_big = placement.values().filter(|h| **h == HostId(1)).count();
        assert!(on_big >= 3);
    }

    #[test]
    fn pinning_overrides_the_policy() {
        let mut scheduler = Scheduler::new(PlacementPolicy::RoundRobin, hosts(3, 32 * 1024));
        let clients: Vec<(NodeId, MachineResources)> = (0..3)
            .map(|i| (NodeId::ground_station(i), MachineResources::paper_client()))
            .collect();
        // Pin all clients to host 0 so they can share a PTP clock, as in §4.1.
        for (node, _) in &clients {
            scheduler.pin(*node, HostId(0));
        }
        let placement = scheduler.place(&clients).unwrap();
        assert!(placement.values().all(|h| *h == HostId(0)));
    }

    #[test]
    fn placement_fails_when_memory_is_exhausted() {
        let scheduler = Scheduler::new(PlacementPolicy::RoundRobin, hosts(1, 1024));
        let err = scheduler.place(&satellites(3)).unwrap_err();
        assert!(matches!(err, Error::HostCapacity(_)));
    }

    #[test]
    fn missing_pinned_host_is_an_error() {
        let mut scheduler = Scheduler::new(PlacementPolicy::RoundRobin, hosts(1, 32 * 1024));
        scheduler.pin(NodeId::ground_station(0), HostId(9));
        let err = scheduler
            .place(&[(NodeId::ground_station(0), MachineResources::default())])
            .unwrap_err();
        assert!(err.to_string().contains("does not exist"));
    }

    #[test]
    fn no_hosts_is_an_error() {
        let scheduler = Scheduler::new(PlacementPolicy::RoundRobin, Vec::new());
        assert!(scheduler.place(&satellites(1)).is_err());
    }

    proptest! {
        #[test]
        fn all_machines_are_placed_within_capacity(
            machine_count in 1u32..60,
            host_count in 1u32..6,
            memory_aware in proptest::bool::ANY,
        ) {
            let policy = if memory_aware {
                PlacementPolicy::MemoryAware
            } else {
                PlacementPolicy::RoundRobin
            };
            let capacities = hosts(host_count, 64 * 1024);
            let scheduler = Scheduler::new(policy, capacities.clone());
            let machines = satellites(machine_count);
            if let Ok(placement) = scheduler.place(&machines) {
                prop_assert_eq!(placement.len(), machine_count as usize);
                // Per-host memory stays within capacity.
                let mut used: BTreeMap<HostId, u64> = BTreeMap::new();
                for (node, host) in &placement {
                    let resources = &machines.iter().find(|(n, _)| n == node).unwrap().1;
                    *used.entry(*host).or_insert(0) += resources.memory_mib;
                }
                for (host, mem) in used {
                    let cap = capacities.iter().find(|h| h.host == host).unwrap().memory_mib;
                    prop_assert!(mem <= cap);
                }
            }
        }
    }
}
