//! The microVM lifecycle.

use celestial_types::ids::{MachineId, NodeId};
use celestial_types::resources::MachineResources;
use celestial_types::time::{SimDuration, SimInstant};
use celestial_types::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The lifecycle state of a microVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineState {
    /// Defined but never booted; consumes no host resources.
    Created,
    /// Boot in progress (Firecracker boots in a fraction of a second).
    Booting,
    /// Running and able to execute guest work.
    Running,
    /// Suspended because its satellite left the bounding box. The microVM's
    /// memory stays allocated on the host unless ballooning is enabled.
    Suspended,
    /// Stopped by the user or the testbed; can be booted again.
    Stopped,
    /// Crashed, e.g. through injected radiation faults; must be rebooted.
    Failed,
}

impl MachineState {
    /// True while the boot sequence is running.
    pub fn is_booting(&self) -> bool {
        matches!(self, MachineState::Booting)
    }

    /// True if guest work can execute right now.
    pub fn is_running(&self) -> bool {
        matches!(self, MachineState::Running)
    }

    /// True if the machine has booted at some point and still holds host
    /// memory (running or suspended).
    pub fn holds_memory(&self) -> bool {
        matches!(
            self,
            MachineState::Booting | MachineState::Running | MachineState::Suspended
        )
    }
}

impl fmt::Display for MachineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            MachineState::Created => "created",
            MachineState::Booting => "booting",
            MachineState::Running => "running",
            MachineState::Suspended => "suspended",
            MachineState::Stopped => "stopped",
            MachineState::Failed => "failed",
        };
        write!(f, "{text}")
    }
}

/// An emulated Firecracker microVM backing one satellite or ground-station
/// server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroVm {
    id: MachineId,
    node: NodeId,
    resources: MachineResources,
    state: MachineState,
    boot_delay: SimDuration,
    ready_at: Option<SimInstant>,
    /// Fraction of the machine's allocated vCPUs currently used by guest
    /// work, in `[0, 1]`; set by the testbed runtime and read by the host
    /// utilisation accounting.
    cpu_load: f64,
    /// Fraction of the allocated vCPU quota the machine may use, in
    /// `(0, 1]`. Reduced by `FaultKind::Degradation` via the cgroup CPU-quota
    /// model; `1.0` means the full allocation.
    cpu_share: f64,
    boots: u32,
    failures: u32,
}

impl MicroVm {
    /// Default Firecracker boot delay: roughly an eighth of a second, well
    /// within the "sub-second boot time" the paper relies on.
    pub const DEFAULT_BOOT_DELAY: SimDuration = SimDuration::from_millis(125);

    /// Creates a machine in the [`MachineState::Created`] state.
    pub fn new(id: MachineId, node: NodeId, resources: MachineResources) -> Self {
        MicroVm {
            id,
            node,
            resources,
            state: MachineState::Created,
            boot_delay: Self::DEFAULT_BOOT_DELAY,
            ready_at: None,
            cpu_load: 0.0,
            cpu_share: 1.0,
            boots: 0,
            failures: 0,
        }
    }

    /// Overrides the boot delay, returning the modified machine.
    pub fn with_boot_delay(mut self, delay: SimDuration) -> Self {
        self.boot_delay = delay;
        self
    }

    /// The machine identifier.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// The node this machine backs.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The machine's resource allocation.
    pub fn resources(&self) -> &MachineResources {
        &self.resources
    }

    /// The current lifecycle state.
    pub fn state(&self) -> MachineState {
        self.state
    }

    /// When the in-progress boot finishes, if a boot is in progress.
    pub fn ready_at(&self) -> Option<SimInstant> {
        self.ready_at
    }

    /// The fraction of the machine's vCPUs currently used by guest work.
    pub fn cpu_load(&self) -> f64 {
        self.cpu_load
    }

    /// Sets the guest CPU load (clamped to `[0, 1]`). Ignored unless the
    /// machine is running.
    pub fn set_cpu_load(&mut self, load: f64) {
        if self.state.is_running() {
            self.cpu_load = load.clamp(0.0, 1.0);
        }
    }

    /// The fraction of the allocated vCPU quota the machine may use.
    pub fn cpu_share(&self) -> f64 {
        self.cpu_share
    }

    /// Degrades the machine to `share` of its vCPU quota (the cgroup path a
    /// real host takes for `FaultKind::Degradation`: the quota shrinks, the
    /// machine keeps running).
    ///
    /// # Errors
    ///
    /// Returns [`Error::MachineState`] unless the machine is running, or
    /// [`Error::Config`] if `share` is outside `(0, 1]`.
    pub fn degrade(&mut self, share: f64) -> Result<()> {
        if !(share > 0.0 && share <= 1.0) {
            return Err(Error::config(format!(
                "degradation share {share} for {} must be in (0, 1]",
                self.id
            )));
        }
        if self.state.is_running() {
            self.cpu_share = share;
            Ok(())
        } else {
            Err(Error::MachineState(format!(
                "cannot degrade {} while {}",
                self.id, self.state
            )))
        }
    }

    /// Restores the full vCPU quota (degradation recovery).
    pub fn restore_cpu_share(&mut self) {
        self.cpu_share = 1.0;
    }

    /// Number of completed boots.
    pub fn boot_count(&self) -> u32 {
        self.boots
    }

    /// Number of failures injected into this machine.
    pub fn failure_count(&self) -> u32 {
        self.failures
    }

    /// Starts booting the machine at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MachineState`] unless the machine is currently
    /// created, stopped or failed.
    pub fn boot(&mut self, now: SimInstant) -> Result<SimInstant> {
        match self.state {
            MachineState::Created | MachineState::Stopped | MachineState::Failed => {
                self.state = MachineState::Booting;
                // A (re)boot starts from a clean cgroup: full CPU quota.
                self.cpu_share = 1.0;
                let ready = now + self.boot_delay;
                self.ready_at = Some(ready);
                Ok(ready)
            }
            other => Err(Error::MachineState(format!(
                "cannot boot {} while {other}",
                self.id
            ))),
        }
    }

    /// Completes the boot at `now` (which must not precede the boot's ready
    /// time).
    ///
    /// # Errors
    ///
    /// Returns [`Error::MachineState`] if the machine is not booting or the
    /// boot has not finished yet.
    pub fn finish_boot(&mut self, now: SimInstant) -> Result<()> {
        match (self.state, self.ready_at) {
            (MachineState::Booting, Some(ready)) if now >= ready => {
                self.state = MachineState::Running;
                self.ready_at = None;
                self.boots += 1;
                Ok(())
            }
            (MachineState::Booting, Some(ready)) => Err(Error::MachineState(format!(
                "boot of {} finishes at {ready}, not {now}",
                self.id
            ))),
            _ => Err(Error::MachineState(format!(
                "{} is not booting",
                self.id
            ))),
        }
    }

    /// Suspends a running machine (its satellite left the bounding box).
    ///
    /// # Errors
    ///
    /// Returns [`Error::MachineState`] unless the machine is running.
    pub fn suspend(&mut self) -> Result<()> {
        if self.state.is_running() {
            self.state = MachineState::Suspended;
            self.cpu_load = 0.0;
            Ok(())
        } else {
            Err(Error::MachineState(format!(
                "cannot suspend {} while {}",
                self.id, self.state
            )))
        }
    }

    /// Resumes a suspended machine. Resuming is immediate — Firecracker keeps
    /// the VM's memory resident, so no boot is needed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MachineState`] unless the machine is suspended.
    pub fn resume(&mut self) -> Result<()> {
        if self.state == MachineState::Suspended {
            self.state = MachineState::Running;
            Ok(())
        } else {
            Err(Error::MachineState(format!(
                "cannot resume {} while {}",
                self.id, self.state
            )))
        }
    }

    /// Stops the machine (graceful shutdown requested through the API).
    ///
    /// # Errors
    ///
    /// Returns [`Error::MachineState`] if the machine was never booted or has
    /// already stopped or failed.
    pub fn stop(&mut self) -> Result<()> {
        match self.state {
            MachineState::Running | MachineState::Suspended | MachineState::Booting => {
                self.state = MachineState::Stopped;
                self.ready_at = None;
                self.cpu_load = 0.0;
                Ok(())
            }
            other => Err(Error::MachineState(format!(
                "cannot stop {} while {other}",
                self.id
            ))),
        }
    }

    /// Crashes the machine, e.g. through an injected radiation fault. Valid
    /// in any state that holds memory; a failed machine must be rebooted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MachineState`] if the machine is not currently booted.
    pub fn fail(&mut self) -> Result<()> {
        if self.state.holds_memory() {
            self.state = MachineState::Failed;
            self.ready_at = None;
            self.cpu_load = 0.0;
            self.failures += 1;
            Ok(())
        } else {
            Err(Error::MachineState(format!(
                "cannot fail {} while {}",
                self.id, self.state
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> MicroVm {
        MicroVm::new(
            MachineId(1),
            NodeId::satellite(0, 1),
            MachineResources::paper_satellite(),
        )
    }

    #[test]
    fn boot_sequence_takes_the_boot_delay() {
        let mut m = vm();
        assert_eq!(m.state(), MachineState::Created);
        let ready = m.boot(SimInstant::EPOCH).unwrap();
        assert_eq!(ready, SimInstant::EPOCH + MicroVm::DEFAULT_BOOT_DELAY);
        assert!(m.state().is_booting());
        // Completing too early is rejected.
        assert!(m.finish_boot(SimInstant::EPOCH).is_err());
        m.finish_boot(ready).unwrap();
        assert!(m.state().is_running());
        assert_eq!(m.boot_count(), 1);
    }

    #[test]
    fn suspend_resume_cycle() {
        let mut m = vm();
        let ready = m.boot(SimInstant::EPOCH).unwrap();
        m.finish_boot(ready).unwrap();
        m.set_cpu_load(0.8);
        m.suspend().unwrap();
        assert_eq!(m.state(), MachineState::Suspended);
        assert_eq!(m.cpu_load(), 0.0);
        assert!(m.state().holds_memory());
        m.resume().unwrap();
        assert!(m.state().is_running());
        // Double resume is invalid.
        assert!(m.resume().is_err());
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let mut m = vm();
        assert!(m.suspend().is_err());
        assert!(m.resume().is_err());
        assert!(m.stop().is_err());
        assert!(m.fail().is_err());
        assert!(m.finish_boot(SimInstant::EPOCH).is_err());
        let ready = m.boot(SimInstant::EPOCH).unwrap();
        assert!(m.boot(SimInstant::EPOCH).is_err());
        m.finish_boot(ready).unwrap();
        assert!(m.boot(SimInstant::EPOCH).is_err());
    }

    #[test]
    fn failure_and_reboot_model_radiation_faults() {
        let mut m = vm();
        let ready = m.boot(SimInstant::EPOCH).unwrap();
        m.finish_boot(ready).unwrap();
        m.fail().unwrap();
        assert_eq!(m.state(), MachineState::Failed);
        assert_eq!(m.failure_count(), 1);
        assert!(!m.state().holds_memory());
        // A failed machine can be booted again (reboot through the API).
        let ready2 = m.boot(SimInstant::from_secs_f64(10.0)).unwrap();
        m.finish_boot(ready2).unwrap();
        assert_eq!(m.boot_count(), 2);
    }

    #[test]
    fn cpu_load_only_applies_while_running() {
        let mut m = vm();
        m.set_cpu_load(0.9);
        assert_eq!(m.cpu_load(), 0.0);
        let ready = m.boot(SimInstant::EPOCH).unwrap();
        m.finish_boot(ready).unwrap();
        m.set_cpu_load(1.7);
        assert_eq!(m.cpu_load(), 1.0);
        m.stop().unwrap();
        assert_eq!(m.cpu_load(), 0.0);
    }

    #[test]
    fn stopping_and_restarting() {
        let mut m = vm().with_boot_delay(SimDuration::from_millis(50));
        let ready = m.boot(SimInstant::EPOCH).unwrap();
        assert_eq!(ready, SimInstant::from_millis(50));
        m.stop().unwrap();
        assert_eq!(m.state(), MachineState::Stopped);
        assert!(m.boot(SimInstant::from_millis(60)).is_ok());
    }

    #[test]
    fn degradation_shrinks_the_quota_without_killing_the_machine() {
        let mut m = vm();
        // Degrading a machine that is not running is a state error, like
        // crashing one.
        assert!(m.degrade(0.5).is_err());
        let ready = m.boot(SimInstant::EPOCH).unwrap();
        m.finish_boot(ready).unwrap();
        assert_eq!(m.cpu_share(), 1.0);
        m.degrade(0.25).unwrap();
        assert_eq!(m.cpu_share(), 0.25);
        assert!(m.state().is_running(), "degradation must not crash the VM");
        assert_eq!(m.failure_count(), 0);
        m.restore_cpu_share();
        assert_eq!(m.cpu_share(), 1.0);
        // Out-of-range shares are rejected.
        assert!(m.degrade(0.0).is_err());
        assert!(m.degrade(1.5).is_err());
    }

    #[test]
    fn reboot_restores_the_full_quota() {
        let mut m = vm();
        let ready = m.boot(SimInstant::EPOCH).unwrap();
        m.finish_boot(ready).unwrap();
        m.degrade(0.1).unwrap();
        m.fail().unwrap();
        let ready = m.boot(SimInstant::from_millis(500)).unwrap();
        m.finish_boot(ready).unwrap();
        assert_eq!(m.cpu_share(), 1.0);
    }
}
