//! Fault injection.
//!
//! Satellite servers are exposed to single-event upsets from cosmic radiation
//! (§2.3); HPE's Spaceborne Computer experience shows these manifest as
//! temporary performance degradation or full shutdowns. Celestial lets users
//! terminate and reboot machines through its API to model such faults. The
//! [`FaultInjector`] generates those events stochastically from a
//! radiation-induced failure rate, or accepts manually scripted events.

use celestial_types::ids::NodeId;
use celestial_types::time::{SimDuration, SimInstant};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The kind of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The machine crashes and reboots after the outage duration.
    CrashAndReboot,
    /// The machine crashes permanently (no automatic reboot).
    PermanentFailure,
    /// The machine's CPU is degraded to the given share of its quota for the
    /// outage duration (e.g. error-correction overhead after an upset).
    Degradation {
        /// Remaining CPU share in `(0, 1)`.
        cpu_share_percent: u8,
    },
}

/// One injected fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The node whose machine is affected.
    pub node: NodeId,
    /// When the fault strikes.
    pub at: SimInstant,
    /// What happens.
    pub kind: FaultKind,
    /// When the machine recovers (reboots or regains full speed). `None` for
    /// permanent failures.
    pub recover_at: Option<SimInstant>,
}

/// Configuration and generator for stochastic fault injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Mean number of radiation-induced crashes per machine per simulated
    /// hour.
    pub crashes_per_machine_hour: f64,
    /// Mean outage duration after a crash (reboot plus recovery).
    pub mean_outage: SimDuration,
    /// Fraction of crashes that are permanent (the machine does not come
    /// back without operator intervention).
    pub permanent_fraction: f64,
}

impl FaultInjector {
    /// Creates an injector with the given crash rate and a 30-second mean
    /// outage.
    pub fn new(crashes_per_machine_hour: f64) -> Self {
        FaultInjector {
            crashes_per_machine_hour,
            mean_outage: SimDuration::from_secs(30),
            permanent_fraction: 0.0,
        }
    }

    /// Sets the mean outage duration, returning the modified injector.
    pub fn with_mean_outage(mut self, outage: SimDuration) -> Self {
        self.mean_outage = outage;
        self
    }

    /// Sets the fraction of permanent failures, returning the modified
    /// injector.
    pub fn with_permanent_fraction(mut self, fraction: f64) -> Self {
        self.permanent_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Generates the fault schedule for one experiment: for every node, crash
    /// times follow a Poisson process with the configured rate over
    /// `[0, duration]`, with exponentially distributed outages.
    pub fn schedule<R: Rng + ?Sized>(
        &self,
        nodes: &[NodeId],
        duration: SimDuration,
        rng: &mut R,
    ) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        if self.crashes_per_machine_hour <= 0.0 {
            return events;
        }
        let mean_interarrival_secs = 3600.0 / self.crashes_per_machine_hour;
        for node in nodes {
            let mut t = 0.0;
            loop {
                // Exponential inter-arrival times.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -mean_interarrival_secs * u.ln();
                if t >= duration.as_secs_f64() {
                    break;
                }
                let at = SimInstant::from_secs_f64(t);
                let permanent = rng.gen::<f64>() < self.permanent_fraction;
                if permanent {
                    events.push(FaultEvent {
                        node: *node,
                        at,
                        kind: FaultKind::PermanentFailure,
                        recover_at: None,
                    });
                    break;
                }
                let outage_secs = {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    -self.mean_outage.as_secs_f64() * u.ln()
                };
                events.push(FaultEvent {
                    node: *node,
                    at,
                    kind: FaultKind::CrashAndReboot,
                    recover_at: Some(at + SimDuration::from_secs_f64(outage_secs)),
                });
            }
        }
        events.sort_by_key(|e| e.at);
        events
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(|i| NodeId::satellite(0, i)).collect()
    }

    #[test]
    fn zero_rate_produces_no_faults() {
        let injector = FaultInjector::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(injector
            .schedule(&nodes(100), SimDuration::from_secs(3600), &mut rng)
            .is_empty());
    }

    #[test]
    fn fault_rate_is_roughly_respected() {
        // 2 crashes per machine-hour over 100 machines for one hour ≈ 200
        // events.
        let injector = FaultInjector::new(2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let events = injector.schedule(&nodes(100), SimDuration::from_secs(3600), &mut rng);
        assert!((150..250).contains(&events.len()), "events {}", events.len());
    }

    #[test]
    fn events_are_sorted_and_within_the_experiment() {
        let injector = FaultInjector::new(5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let duration = SimDuration::from_secs(600);
        let events = injector.schedule(&nodes(20), duration, &mut rng);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in &events {
            assert!(e.at.as_secs_f64() <= duration.as_secs_f64());
            if let Some(recover) = e.recover_at {
                assert!(recover > e.at);
            }
        }
    }

    #[test]
    fn permanent_failures_have_no_recovery() {
        let injector = FaultInjector::new(3.0).with_permanent_fraction(1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let events = injector.schedule(&nodes(50), SimDuration::from_secs(3600), &mut rng);
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|e| e.kind == FaultKind::PermanentFailure && e.recover_at.is_none()));
        // At most one permanent failure per machine.
        assert!(events.len() <= 50);
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let injector = FaultInjector::new(1.0).with_mean_outage(SimDuration::from_secs(10));
        let a = injector.schedule(
            &nodes(10),
            SimDuration::from_secs(1800),
            &mut StdRng::seed_from_u64(7),
        );
        let b = injector.schedule(
            &nodes(10),
            SimDuration::from_secs(1800),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }
}
