//! The Firecracker resource model.
//!
//! Two observations from the paper's efficiency evaluation (§4.2) drive this
//! model:
//!
//! * microVM memory usage grows linearly with the number of *booted*
//!   microVMs, regardless of whether they are currently suspended, because
//!   each keeps a virtio memory device that blocks a fixed portion of the
//!   host's memory. Ballooning can optionally return that memory.
//! * all satellite servers share an immutable root filesystem image plus a
//!   small per-microVM overlay, which keeps storage consumption low.

use crate::machine::{MachineState, MicroVm};
use celestial_types::resources::MachineResources;
use celestial_types::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The host-side resource model for Firecracker microVMs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FirecrackerModel {
    /// Fixed per-microVM memory overhead of the VMM process in MiB.
    pub vmm_overhead_mib: u64,
    /// Fraction of the guest's allocated memory that is actually resident on
    /// the host. Firecracker backs guest memory with anonymous pages that are
    /// only allocated when the guest touches them, which is what makes the
    /// heavy over-provisioning of the paper's evaluation possible; the
    /// default of 0.25 matches the sub-20 % host memory usage of Fig. 8.
    pub resident_fraction: f64,
    /// Whether memory ballooning is enabled: if so, suspended microVMs return
    /// their guest memory to the host and only the VMM overhead remains.
    pub ballooning: bool,
    /// Base boot latency of a microVM.
    pub base_boot_delay: SimDuration,
    /// Additional boot latency per GiB of guest memory (device setup and
    /// memory pre-allocation scale with the VM size).
    pub boot_delay_per_gib: SimDuration,
}

impl FirecrackerModel {
    /// A model in which guests touch all of their allocated memory
    /// (`resident_fraction = 1.0`), the worst case for host sizing.
    pub fn fully_resident() -> Self {
        FirecrackerModel {
            resident_fraction: 1.0,
            ..FirecrackerModel::default()
        }
    }

    /// The resident guest memory of a booted machine in MiB.
    fn resident_guest_mib(&self, vm: &MicroVm) -> u64 {
        (vm.resources().memory_mib as f64 * self.resident_fraction).round() as u64
    }

    /// The memory footprint of a machine on its host in MiB, given its
    /// current lifecycle state.
    pub fn memory_footprint_mib(&self, vm: &MicroVm) -> u64 {
        match vm.state() {
            MachineState::Created | MachineState::Stopped | MachineState::Failed => 0,
            MachineState::Booting | MachineState::Running => {
                self.resident_guest_mib(vm) + self.vmm_overhead_mib
            }
            MachineState::Suspended => {
                // The virtio memory device keeps the resident pages blocked
                // while suspended, unless ballooning reclaims them.
                if self.ballooning {
                    self.vmm_overhead_mib
                } else {
                    self.resident_guest_mib(vm) + self.vmm_overhead_mib
                }
            }
        }
    }

    /// The boot delay of a machine with the given resources.
    pub fn boot_delay(&self, resources: &MachineResources) -> SimDuration {
        let gib = resources.memory_mib as f64 / 1024.0;
        self.base_boot_delay
            + SimDuration::from_micros((self.boot_delay_per_gib.as_micros() as f64 * gib) as u64)
    }
}

impl Default for FirecrackerModel {
    fn default() -> Self {
        FirecrackerModel {
            vmm_overhead_mib: 5,
            resident_fraction: 0.25,
            ballooning: false,
            base_boot_delay: SimDuration::from_millis(125),
            boot_delay_per_gib: SimDuration::from_millis(60),
        }
    }
}

/// De-duplicated root filesystem storage on one host.
///
/// Every machine class shares one immutable base image; each microVM adds a
/// copy-on-write overlay sized by its writable disk allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RootfsCache {
    /// Registered base images: name → size in MiB.
    images: BTreeMap<String, u64>,
    /// Overlays: machine rootfs name → accumulated overlay MiB.
    overlays: BTreeMap<String, (u64, u64)>,
}

impl RootfsCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        RootfsCache::default()
    }

    /// Registers a base image (idempotent: registering the same name twice
    /// keeps a single copy, which is the point of de-duplication).
    pub fn register_image(&mut self, name: impl Into<String>, size_mib: u64) {
        self.images.insert(name.into(), size_mib);
    }

    /// Adds a machine that uses the named base image with the given overlay
    /// size.
    pub fn add_overlay(&mut self, image: &str, overlay_mib: u64) {
        let entry = self.overlays.entry(image.to_owned()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += overlay_mib;
    }

    /// Number of distinct base images stored.
    pub fn image_count(&self) -> usize {
        self.images.len()
    }

    /// Total storage in MiB: one copy of each base image plus all overlays.
    pub fn total_storage_mib(&self) -> u64 {
        let images: u64 = self.images.values().sum();
        let overlays: u64 = self.overlays.values().map(|(_, mib)| *mib).sum();
        images + overlays
    }

    /// Storage that would be needed *without* de-duplication: a full image
    /// copy per machine plus its overlay. Useful for reporting savings.
    pub fn storage_without_dedup_mib(&self) -> u64 {
        self.overlays
            .iter()
            .map(|(image, (count, overlay))| {
                self.images.get(image).copied().unwrap_or(0) * count + overlay
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_types::ids::{MachineId, NodeId};
    use celestial_types::time::SimInstant;

    fn booted_vm(memory_mib: u64) -> MicroVm {
        let mut vm = MicroVm::new(
            MachineId(0),
            NodeId::satellite(0, 0),
            MachineResources::new(2, memory_mib),
        );
        let ready = vm.boot(SimInstant::EPOCH).unwrap();
        vm.finish_boot(ready).unwrap();
        vm
    }

    #[test]
    fn created_machines_use_no_memory() {
        let model = FirecrackerModel::default();
        let vm = MicroVm::new(
            MachineId(0),
            NodeId::satellite(0, 0),
            MachineResources::paper_satellite(),
        );
        assert_eq!(model.memory_footprint_mib(&vm), 0);
    }

    #[test]
    fn running_machines_hold_resident_guest_memory_plus_overhead() {
        // With the default 25 % residency a 512 MiB guest occupies 133 MiB.
        let model = FirecrackerModel::default();
        let vm = booted_vm(512);
        assert_eq!(model.memory_footprint_mib(&vm), 133);
        // The fully resident model charges the full allocation.
        assert_eq!(FirecrackerModel::fully_resident().memory_footprint_mib(&vm), 517);
    }

    #[test]
    fn suspended_machines_keep_memory_unless_ballooning() {
        let mut vm = booted_vm(512);
        vm.suspend().unwrap();
        let without = FirecrackerModel::default();
        assert_eq!(without.memory_footprint_mib(&vm), 133);
        let with = FirecrackerModel {
            ballooning: true,
            ..FirecrackerModel::default()
        };
        assert_eq!(with.memory_footprint_mib(&vm), 5);
    }

    #[test]
    fn failed_machines_release_memory() {
        let model = FirecrackerModel::default();
        let mut vm = booted_vm(512);
        vm.fail().unwrap();
        assert_eq!(model.memory_footprint_mib(&vm), 0);
    }

    #[test]
    fn boot_delay_grows_with_memory() {
        let model = FirecrackerModel::default();
        let small = model.boot_delay(&MachineResources::new(1, 128));
        let large = model.boot_delay(&MachineResources::new(4, 4096));
        assert!(large > small);
        // Still sub-second, as the paper relies on.
        assert!(large < SimDuration::from_secs(1));
    }

    #[test]
    fn rootfs_dedup_saves_storage() {
        let mut cache = RootfsCache::new();
        cache.register_image("satellite.ext4", 300);
        cache.register_image("satellite.ext4", 300);
        cache.register_image("client.ext4", 800);
        for _ in 0..100 {
            cache.add_overlay("satellite.ext4", 64);
        }
        for _ in 0..3 {
            cache.add_overlay("client.ext4", 128);
        }
        assert_eq!(cache.image_count(), 2);
        let dedup = cache.total_storage_mib();
        let naive = cache.storage_without_dedup_mib();
        assert_eq!(dedup, 300 + 800 + 100 * 64 + 3 * 128);
        assert_eq!(naive, 100 * 300 + 100 * 64 + 3 * 800 + 3 * 128);
        assert!(naive > 3 * dedup, "de-duplication should save the bulk of storage");
    }
}
