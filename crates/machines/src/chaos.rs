//! Correlated chaos: fault generators that fail whole orbital planes,
//! latitude bands, ground-station regions and link sets at once.
//!
//! The paper's radiation-fault model (§2.3) and the existing
//! [`FaultInjector`](crate::fault::FaultInjector) produce *independent*
//! per-machine crashes. Real constellations fail in correlated ways: a
//! deployment error takes out an orbital plane, a solar storm degrades every
//! satellite crossing a latitude band, a regional disaster silences a group
//! of ground stations, interference makes whole link sets oscillate. The
//! [`ChaosEngine`] composes four such generators into a seed-deterministic
//! schedule of [`ChaosWindow`]s.
//!
//! Each generator draws from its own derived random stream
//! (`SimRng::derive("chaos.<generator>")`), so schedules are
//! **stream-independent**: reconfiguring one generator never perturbs the
//! windows another generator produces, and none of them perturb the
//! application's own random stream. See `docs/CHAOS.md`.

use celestial_sim::rng::SimRng;

/// The topology facts the generators need: per-shell plane shape and
/// ground-station coordinates. A plain-data mirror of the constellation so
/// this crate does not depend on the constellation crate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosTopology {
    /// Per shell: `(planes, satellites_per_plane)`, in shell order.
    pub shells: Vec<(u32, u32)>,
    /// Per ground station: `(latitude_deg, longitude_deg)`, in config order.
    pub ground_stations: Vec<(f64, f64)>,
}

impl ChaosTopology {
    /// Total number of orbital planes across all shells.
    fn plane_total(&self) -> u64 {
        self.shells.iter().map(|&(planes, _)| u64::from(planes)).sum()
    }
}

/// What a chaos window does while it is active.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosSpec {
    /// Every satellite of one orbital plane crashes for the window.
    PlaneOutage {
        /// Shell index.
        shell: u16,
        /// Plane index within the shell.
        plane: u32,
    },
    /// Every satellite inside a latitude band is degraded (reduced CPU
    /// share) for the window. Band membership is evaluated against the
    /// propagated position at the window start.
    SolarStorm {
        /// Southern band edge, degrees.
        lat_min_deg: f64,
        /// Northern band edge, degrees.
        lat_max_deg: f64,
        /// CPU share the degraded machines keep, in percent `(0, 100]`.
        cpu_share_percent: u8,
    },
    /// Every ground station within a great-circle radius of a center
    /// crashes for the window.
    RegionBlackout {
        /// Center latitude, degrees.
        center_lat_deg: f64,
        /// Center longitude, degrees.
        center_lon_deg: f64,
        /// Great-circle radius, kilometres.
        radius_km: f64,
    },
    /// Every link oscillates for the window: each link spends
    /// `down_fraction` of every `period_s` suppressed, with a per-link phase
    /// derived from `salt`.
    LinkFlap {
        /// Flap period, seconds.
        period_s: f64,
        /// Fraction of each period a link spends down, in `(0, 1)`.
        down_fraction: f64,
        /// Per-storm phase salt.
        salt: u64,
    },
}

/// One scheduled chaos window: a spec active on `[start_s, end_s)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosWindow {
    /// Window start, simulated seconds.
    pub start_s: f64,
    /// Window end (exclusive), simulated seconds.
    pub end_s: f64,
    /// What happens during the window.
    pub spec: ChaosSpec,
}

/// The composed chaos configuration: how many windows of each kind to
/// schedule and their shape parameters. `Default` is a moderate mix of all
/// four generators.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEngine {
    /// Number of plane-outage windows.
    pub plane_outages: u32,
    /// Mean plane-outage duration, seconds (exponentially distributed).
    pub plane_outage_mean_s: f64,
    /// Number of solar-storm windows.
    pub solar_storms: u32,
    /// Mean solar-storm duration, seconds.
    pub solar_storm_mean_s: f64,
    /// Half-width of the degraded latitude band, degrees.
    pub solar_storm_band_half_width_deg: f64,
    /// CPU share degraded machines keep, percent `(0, 100]`.
    pub solar_storm_cpu_share_percent: u8,
    /// Number of region-blackout windows.
    pub region_blackouts: u32,
    /// Mean region-blackout duration, seconds.
    pub region_blackout_mean_s: f64,
    /// Blackout radius around the chosen center, kilometres.
    pub region_blackout_radius_km: f64,
    /// Number of link-flap storms.
    pub link_flap_storms: u32,
    /// Mean link-flap storm duration, seconds.
    pub link_flap_mean_s: f64,
    /// Flap period within a storm, seconds.
    pub link_flap_period_s: f64,
}

impl Default for ChaosEngine {
    fn default() -> Self {
        ChaosEngine {
            plane_outages: 1,
            plane_outage_mean_s: 10.0,
            solar_storms: 1,
            solar_storm_mean_s: 10.0,
            solar_storm_band_half_width_deg: 15.0,
            solar_storm_cpu_share_percent: 25,
            region_blackouts: 1,
            region_blackout_mean_s: 10.0,
            region_blackout_radius_km: 500.0,
            link_flap_storms: 1,
            link_flap_mean_s: 10.0,
            link_flap_period_s: 4.0,
        }
    }
}

/// Minimum window length: a window shorter than this is not observable at
/// epoch granularity and is clamped up.
const MIN_WINDOW_S: f64 = 1.0;

impl ChaosEngine {
    /// Generates the chaos schedule for one run.
    ///
    /// Every window starts and ends inside `[0, horizon_s)`; the caller picks
    /// the horizon so that recoveries land comfortably before the experiment
    /// ends (the testbed uses `duration - 2 × update_interval`, which is what
    /// makes the post-recovery convergence guarantee observable).
    ///
    /// Determinism: each generator draws only from its own
    /// `rng.derive("chaos.<generator>")` stream, and `derive` never perturbs
    /// the parent generator. The same seed therefore yields the same
    /// schedule, and changing one generator's parameters never moves another
    /// generator's windows.
    pub fn generate(
        &self,
        topology: &ChaosTopology,
        horizon_s: f64,
        rng: &SimRng,
    ) -> Vec<ChaosWindow> {
        let mut windows = Vec::new();
        if horizon_s <= MIN_WINDOW_S {
            return windows;
        }

        let mut plane_rng = rng.derive("chaos.plane-outage");
        let plane_total = topology.plane_total();
        if plane_total > 0 {
            for _ in 0..self.plane_outages {
                let (start_s, end_s) =
                    window_bounds(&mut plane_rng, self.plane_outage_mean_s, horizon_s);
                // Map a flat plane index back to (shell, plane).
                let mut flat = plane_rng.below(plane_total);
                let mut shell = 0u16;
                let mut plane = 0u32;
                for (idx, &(planes, _)) in topology.shells.iter().enumerate() {
                    if flat < u64::from(planes) {
                        shell = idx as u16;
                        plane = flat as u32;
                        break;
                    }
                    flat -= u64::from(planes);
                }
                windows.push(ChaosWindow {
                    start_s,
                    end_s,
                    spec: ChaosSpec::PlaneOutage { shell, plane },
                });
            }
        }

        let mut storm_rng = rng.derive("chaos.solar-storm");
        for _ in 0..self.solar_storms {
            let (start_s, end_s) = window_bounds(&mut storm_rng, self.solar_storm_mean_s, horizon_s);
            // Center the band anywhere a satellite could be; the edges clamp
            // at the poles.
            let center = storm_rng.uniform_range(-70.0, 70.0);
            let half = self.solar_storm_band_half_width_deg.abs();
            windows.push(ChaosWindow {
                start_s,
                end_s,
                spec: ChaosSpec::SolarStorm {
                    lat_min_deg: (center - half).max(-90.0),
                    lat_max_deg: (center + half).min(90.0),
                    cpu_share_percent: self.solar_storm_cpu_share_percent,
                },
            });
        }

        let mut blackout_rng = rng.derive("chaos.region-blackout");
        if !topology.ground_stations.is_empty() {
            for _ in 0..self.region_blackouts {
                let (start_s, end_s) =
                    window_bounds(&mut blackout_rng, self.region_blackout_mean_s, horizon_s);
                // Center on a real ground station so the blackout hits.
                let pick = blackout_rng.below(topology.ground_stations.len() as u64) as usize;
                let (lat, lon) = topology.ground_stations[pick];
                windows.push(ChaosWindow {
                    start_s,
                    end_s,
                    spec: ChaosSpec::RegionBlackout {
                        center_lat_deg: lat,
                        center_lon_deg: lon,
                        radius_km: self.region_blackout_radius_km,
                    },
                });
            }
        }

        let mut flap_rng = rng.derive("chaos.link-flap");
        for storm in 0..self.link_flap_storms {
            let (start_s, end_s) = window_bounds(&mut flap_rng, self.link_flap_mean_s, horizon_s);
            let salt = flap_rng.below(u64::MAX);
            windows.push(ChaosWindow {
                start_s,
                end_s,
                spec: ChaosSpec::LinkFlap {
                    period_s: self.link_flap_period_s,
                    // Half of each period down: disruptive, but a plus-grid
                    // mesh stays connected in expectation.
                    down_fraction: 0.5,
                    salt: salt ^ u64::from(storm),
                },
            });
        }

        windows.sort_by(|a, b| {
            a.start_s
                .partial_cmp(&b.start_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        windows
    }
}

/// Draws one window: an exponential duration (clamped to
/// `[MIN_WINDOW_S, horizon)`) placed uniformly so it ends inside the horizon.
fn window_bounds(rng: &mut SimRng, mean_s: f64, horizon_s: f64) -> (f64, f64) {
    let duration = rng
        .exponential(mean_s.max(MIN_WINDOW_S))
        .clamp(MIN_WINDOW_S, horizon_s - f64::EPSILON * horizon_s);
    let latest_start = (horizon_s - duration).max(0.0);
    let start = rng.uniform_range(0.0, latest_start);
    (start, start + duration)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topology() -> ChaosTopology {
        ChaosTopology {
            shells: vec![(12, 16), (6, 8)],
            ground_stations: vec![(5.6037, -0.187), (9.0765, 7.3986)],
        }
    }

    fn engine() -> ChaosEngine {
        ChaosEngine {
            plane_outages: 3,
            solar_storms: 2,
            region_blackouts: 2,
            link_flap_storms: 2,
            ..ChaosEngine::default()
        }
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let a = engine().generate(&topology(), 100.0, &SimRng::seed_from_u64(42));
        let b = engine().generate(&topology(), 100.0, &SimRng::seed_from_u64(42));
        let c = engine().generate(&topology(), 100.0, &SimRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds produced identical schedules");
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn windows_stay_inside_the_horizon() {
        for seed in 0..50 {
            let windows = engine().generate(&topology(), 80.0, &SimRng::seed_from_u64(seed));
            for w in &windows {
                assert!(w.start_s >= 0.0, "{w:?}");
                assert!(w.end_s <= 80.0, "{w:?}");
                assert!(w.end_s > w.start_s, "{w:?}");
            }
        }
    }

    #[test]
    fn generator_streams_are_independent() {
        // Turning the plane-outage generator off must not move any other
        // generator's windows: each draws from its own derived stream.
        let rng = SimRng::seed_from_u64(7);
        let full = engine().generate(&topology(), 100.0, &rng);
        let without_planes =
            ChaosEngine { plane_outages: 0, ..engine() }.generate(&topology(), 100.0, &rng);
        let non_plane: Vec<&ChaosWindow> = full
            .iter()
            .filter(|w| !matches!(w.spec, ChaosSpec::PlaneOutage { .. }))
            .collect();
        assert_eq!(non_plane.len(), without_planes.len());
        for (a, b) in non_plane.iter().zip(&without_planes) {
            assert_eq!(**a, *b);
        }
    }

    #[test]
    fn generation_does_not_perturb_the_parent_stream() {
        let mut a = SimRng::seed_from_u64(11);
        let mut b = SimRng::seed_from_u64(11);
        let _ = engine().generate(&topology(), 100.0, &a);
        // `a` drew an entire schedule through derived streams; its own
        // sequence must still match the untouched twin.
        let drawn: Vec<f64> = (0..16).map(|_| a.uniform()).collect();
        let expected: Vec<f64> = (0..16).map(|_| b.uniform()).collect();
        assert_eq!(drawn, expected);
    }

    #[test]
    fn plane_outages_pick_valid_planes() {
        for seed in 0..50 {
            let windows = ChaosEngine { plane_outages: 5, ..ChaosEngine::default() }.generate(
                &topology(),
                100.0,
                &SimRng::seed_from_u64(seed),
            );
            for w in windows {
                if let ChaosSpec::PlaneOutage { shell, plane } = w.spec {
                    let (planes, _) = topology().shells[shell as usize];
                    assert!(plane < planes, "shell {shell} plane {plane}");
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs_produce_no_windows() {
        let rng = SimRng::seed_from_u64(1);
        assert!(engine().generate(&topology(), 0.5, &rng).is_empty());
        let empty = ChaosTopology::default();
        let windows = engine().generate(&empty, 100.0, &rng);
        // No planes and no ground stations: only storms and flaps remain.
        assert!(windows.iter().all(|w| matches!(
            w.spec,
            ChaosSpec::SolarStorm { .. } | ChaosSpec::LinkFlap { .. }
        )));
        assert_eq!(windows.len(), 4);
    }
}
