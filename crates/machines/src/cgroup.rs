//! cgroup-style CPU quotas.
//!
//! Celestial isolates each microVM in a dedicated cgroup to control the CPU
//! cycles a satellite server may use (§3.1), making it possible to emulate
//! severely constrained hardware. The quota model here answers the question
//! the testbed runtime needs: *how long does a given amount of guest
//! computation take on this machine?*

use celestial_types::resources::MachineResources;
use celestial_types::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A CPU quota in the style of cgroup v2 `cpu.max`: a share of the allocated
/// vCPUs that the machine may actually use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuQuota {
    /// Number of vCPUs allocated to the machine.
    pub vcpus: u32,
    /// Fraction of each vCPU the cgroup allows, in `(0, 1]`. 1.0 means the
    /// machine may use its vCPUs fully.
    pub share: f64,
}

impl CpuQuota {
    /// Creates an unrestricted quota for the given resources.
    pub fn unrestricted(resources: &MachineResources) -> Self {
        CpuQuota {
            vcpus: resources.vcpus,
            share: 1.0,
        }
    }

    /// Creates a quota restricted to `share` of each allocated vCPU.
    ///
    /// # Panics
    ///
    /// Panics if `share` is not in `(0, 1]`.
    pub fn restricted(resources: &MachineResources, share: f64) -> Self {
        assert!(share > 0.0 && share <= 1.0, "share must be in (0, 1]");
        CpuQuota {
            vcpus: resources.vcpus,
            share,
        }
    }

    /// The effective number of CPU cores available to the machine.
    pub fn effective_cores(&self) -> f64 {
        f64::from(self.vcpus) * self.share
    }

    /// The wall-clock (virtual) time needed to execute `cpu_seconds` of
    /// single-threaded-equivalent work that parallelises over at most
    /// `parallelism` threads.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_seconds` is negative or `parallelism` is zero.
    pub fn execution_time(&self, cpu_seconds: f64, parallelism: u32) -> SimDuration {
        assert!(cpu_seconds >= 0.0, "work must be non-negative");
        assert!(parallelism > 0, "parallelism must be positive");
        let usable = self.effective_cores().min(f64::from(parallelism));
        SimDuration::from_secs_f64(cpu_seconds / usable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_quota_uses_all_vcpus() {
        let quota = CpuQuota::unrestricted(&MachineResources::new(4, 1024));
        assert_eq!(quota.effective_cores(), 4.0);
        // 8 CPU-seconds of perfectly parallel work on 4 cores takes 2 s.
        assert_eq!(quota.execution_time(8.0, 8), SimDuration::from_secs(2));
    }

    #[test]
    fn single_threaded_work_ignores_extra_cores() {
        let quota = CpuQuota::unrestricted(&MachineResources::new(4, 1024));
        assert_eq!(quota.execution_time(3.0, 1), SimDuration::from_secs(3));
    }

    #[test]
    fn restricted_quota_slows_execution_proportionally() {
        let resources = MachineResources::new(2, 512);
        let full = CpuQuota::unrestricted(&resources);
        let half = CpuQuota::restricted(&resources, 0.5);
        let work = 1.0;
        assert_eq!(
            half.execution_time(work, 2).as_micros(),
            full.execution_time(work, 2).as_micros() * 2
        );
    }

    #[test]
    #[should_panic(expected = "share")]
    fn zero_share_is_rejected() {
        CpuQuota::restricted(&MachineResources::new(1, 128), 0.0);
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_is_rejected() {
        CpuQuota::unrestricted(&MachineResources::new(1, 128)).execution_time(1.0, 0);
    }
}
