//! MicroVM substrate for the Celestial LEO edge testbed.
//!
//! The original Celestial backs every satellite and ground-station server
//! with a Firecracker microVM. This crate models that substrate so the
//! testbed can run hermetically and in virtual time:
//!
//! * [`machine`] — the microVM lifecycle state machine (created → booting →
//!   running ↔ suspended, stopped, failed) with Firecracker-like boot
//!   latencies,
//! * [`firecracker`] — the resource model: per-microVM memory footprint
//!   (including the virtio device memory that stays blocked while a VM is
//!   suspended, §4.2/Fig. 8), optional ballooning, and root-filesystem
//!   de-duplication,
//! * [`cgroup`] — the cgroup-style CPU quota model used to emulate severely
//!   constrained satellite servers,
//! * [`host`] — Celestial hosts with core/memory capacity, over-provisioning
//!   and utilisation accounting (Figs. 7 and 8),
//! * [`scheduler`] — placement of machines onto hosts,
//! * [`fault`] — fault injection for radiation-induced crashes and reboots,
//! * [`chaos`] — correlated fault generators (plane outages, solar storms,
//!   region blackouts, link-flap storms) with seed-deterministic,
//!   stream-independent schedules.
//!
//! # Examples
//!
//! ```
//! use celestial_machines::machine::MicroVm;
//! use celestial_types::ids::{MachineId, NodeId};
//! use celestial_types::resources::MachineResources;
//! use celestial_types::time::SimInstant;
//!
//! let mut vm = MicroVm::new(
//!     MachineId(0),
//!     NodeId::satellite(0, 42),
//!     MachineResources::paper_satellite(),
//! );
//! vm.boot(SimInstant::EPOCH).unwrap();
//! assert!(vm.state().is_booting());
//! vm.finish_boot(vm.ready_at().unwrap()).unwrap();
//! assert!(vm.state().is_running());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cgroup;
pub mod chaos;
pub mod fault;
pub mod firecracker;
pub mod host;
pub mod machine;
pub mod scheduler;

pub use chaos::{ChaosEngine, ChaosSpec, ChaosTopology, ChaosWindow};
pub use fault::{FaultEvent, FaultInjector, FaultKind};
pub use firecracker::{FirecrackerModel, RootfsCache};
pub use host::Host;
pub use machine::{MachineState, MicroVm};
pub use scheduler::{PlacementPolicy, Scheduler};
