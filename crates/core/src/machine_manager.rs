//! The per-host machine manager.
//!
//! Each Celestial host runs a machine manager that creates Firecracker
//! microVMs, suspends and resumes them as the coordinator's updates demand,
//! reboots them on demand (fault injection), and keeps the host's traffic
//! shaping in sync (Fig. 2). In this reproduction the network shaping is
//! applied centrally by the testbed (the rule table is shared), so the
//! machine manager focuses on machine lifecycle and host accounting.

use celestial_machines::cgroup::CpuQuota;
use celestial_machines::{FirecrackerModel, Host, MicroVm};
use celestial_types::ids::{HostId, MachineId, NodeId};
use celestial_types::resources::MachineResources;
use celestial_types::time::SimInstant;
use celestial_types::{Error, Result};

/// The utilisation sample a machine manager reports for its host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// CPU utilisation of the host in `[0, 1]`.
    pub cpu: f64,
    /// Memory utilisation of the host in `[0, 1]`.
    pub memory: f64,
    /// Number of Firecracker processes currently alive on the host.
    pub firecracker_processes: usize,
    /// Memory used by microVMs (excluding the manager) in MiB.
    pub microvm_memory_mib: u64,
}

/// The machine manager of one host.
#[derive(Debug, Clone)]
pub struct MachineManager {
    host: Host,
    next_machine_id: u64,
}

impl MachineManager {
    /// Creates a machine manager for a host with the given capacity.
    pub fn new(host_id: HostId, cores: u32, memory_mib: u64, model: FirecrackerModel) -> Self {
        MachineManager {
            host: Host::new(host_id, cores, memory_mib).with_model(model),
            next_machine_id: u64::from(host_id.0) << 32,
        }
    }

    /// The host this manager controls.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The host identifier.
    pub fn host_id(&self) -> HostId {
        self.host.id()
    }

    /// Whether this manager already has a machine for `node`.
    pub fn has_machine(&self, node: NodeId) -> bool {
        self.host.machine_for_node(node).is_some()
    }

    /// Whether the machine for `node` is currently running.
    pub fn is_running(&self, node: NodeId) -> bool {
        self.host
            .machine_for_node(node)
            .map(|m| m.state().is_running())
            .unwrap_or(false)
    }

    /// Creates a machine for `node` (without booting it).
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostCapacity`] if the host cannot fit the machine or
    /// the node already has one.
    pub fn create_machine(&mut self, node: NodeId, resources: MachineResources) -> Result<MachineId> {
        let id = MachineId(self.next_machine_id);
        let boot_delay = self.host.model().boot_delay(&resources);
        let vm = MicroVm::new(id, node, resources).with_boot_delay(boot_delay);
        self.host.place(vm)?;
        // Consume the identifier only once placement succeeded, so a host at
        // capacity does not leak ids on every rejected attempt.
        self.next_machine_id += 1;
        Ok(id)
    }

    /// Creates (if needed) and boots the machine for `node`, returning the
    /// instant its boot completes. If the machine is suspended it is resumed
    /// instead, completing immediately.
    ///
    /// # Errors
    ///
    /// Returns an error if the machine cannot be created or the lifecycle
    /// transition is invalid.
    pub fn activate(
        &mut self,
        node: NodeId,
        resources: &MachineResources,
        now: SimInstant,
    ) -> Result<SimInstant> {
        if !self.has_machine(node) {
            self.create_machine(node, resources.clone())?;
        }
        let vm = self
            .host
            .machine_for_node_mut(node)
            .expect("machine was just created");
        match vm.state() {
            celestial_machines::MachineState::Suspended => {
                vm.resume()?;
                Ok(now)
            }
            celestial_machines::MachineState::Running => Ok(now),
            celestial_machines::MachineState::Booting => {
                // A machine that is already booting completes at its true
                // ready instant — reporting `now` would claim a still-booting
                // machine is ready immediately.
                vm.ready_at().ok_or_else(|| {
                    Error::MachineState(format!("machine for {node} is booting without a ready instant"))
                })
            }
            _ => vm.boot(now),
        }
    }

    /// Completes the boot of the machine for `node` at `now`.
    ///
    /// # Errors
    ///
    /// Returns an error if the node has no machine. A machine that is no
    /// longer booting (e.g. it was suspended or failed while booting) is left
    /// untouched.
    pub fn finish_boot(&mut self, node: NodeId, now: SimInstant) -> Result<()> {
        let vm = self
            .host
            .machine_for_node_mut(node)
            .ok_or_else(|| Error::unknown_node(format!("{node}")))?;
        if vm.state().is_booting() {
            vm.finish_boot(now)?;
        }
        Ok(())
    }

    /// Suspends the machine for `node` (it left the bounding box). Machines
    /// that are not running are left untouched.
    ///
    /// # Errors
    ///
    /// Returns an error if the node has no machine.
    pub fn suspend(&mut self, node: NodeId) -> Result<()> {
        let vm = self
            .host
            .machine_for_node_mut(node)
            .ok_or_else(|| Error::unknown_node(format!("{node}")))?;
        if vm.state().is_running() {
            vm.suspend()?;
        }
        Ok(())
    }

    /// Crashes the machine for `node` (fault injection).
    ///
    /// # Errors
    ///
    /// Returns an error if the node has no machine or the machine is not
    /// currently booted.
    pub fn fail(&mut self, node: NodeId) -> Result<()> {
        let vm = self
            .host
            .machine_for_node_mut(node)
            .ok_or_else(|| Error::unknown_node(format!("{node}")))?;
        vm.fail()
    }

    /// Degrades the machine for `node` to `cpu_share_percent` of its vCPU
    /// quota — the cgroup path for `FaultKind::Degradation`: the CPU quota
    /// shrinks via [`CpuQuota::restricted`], the machine keeps running.
    ///
    /// # Errors
    ///
    /// Returns an error if the node has no machine, the machine is not
    /// running, or the share is outside `(0, 100]`.
    pub fn degrade(&mut self, node: NodeId, cpu_share_percent: u8) -> Result<()> {
        let share = f64::from(cpu_share_percent) / 100.0;
        if !(share > 0.0 && share <= 1.0) {
            return Err(Error::config(format!(
                "degradation share {cpu_share_percent}% for {node} must be in (0, 100]"
            )));
        }
        let vm = self
            .host
            .machine_for_node_mut(node)
            .ok_or_else(|| Error::unknown_node(format!("{node}")))?;
        // Route the reduction through the cgroup CPU-quota model, exactly
        // like a real host would reprogram cpu.max for the jailer cgroup.
        let quota = CpuQuota::restricted(vm.resources(), share);
        vm.degrade(quota.effective_cores() / f64::from(vm.resources().vcpus.max(1)))
    }

    /// Restores the full vCPU quota of the machine for `node` (degradation
    /// recovery).
    ///
    /// # Errors
    ///
    /// Returns an error if the node has no machine.
    pub fn restore(&mut self, node: NodeId) -> Result<()> {
        let vm = self
            .host
            .machine_for_node_mut(node)
            .ok_or_else(|| Error::unknown_node(format!("{node}")))?;
        vm.restore_cpu_share();
        Ok(())
    }

    /// The current CPU share of the machine for `node`, if it exists.
    pub fn cpu_share(&self, node: NodeId) -> Option<f64> {
        self.host.machine_for_node(node).map(MicroVm::cpu_share)
    }

    /// Sets the guest CPU load of the machine for `node` (no-op when the
    /// machine does not exist or is not running).
    pub fn set_cpu_load(&mut self, node: NodeId, load: f64) {
        if let Some(vm) = self.host.machine_for_node_mut(node) {
            vm.set_cpu_load(load);
        }
    }

    /// Samples the host's utilisation.
    pub fn sample(&self) -> UtilizationSample {
        UtilizationSample {
            cpu: self.host.cpu_utilization(),
            memory: self.host.memory_utilization(),
            firecracker_processes: self.host.firecracker_process_count(),
            microvm_memory_mib: self.host.microvm_memory_mib(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> MachineManager {
        MachineManager::new(HostId(0), 32, 32 * 1024, FirecrackerModel::default())
    }

    #[test]
    fn activate_boots_new_machines_and_resumes_suspended_ones() {
        let mut m = manager();
        let node = NodeId::satellite(0, 7);
        let resources = MachineResources::paper_satellite();
        let ready = m.activate(node, &resources, SimInstant::EPOCH).unwrap();
        assert!(ready > SimInstant::EPOCH);
        assert!(m.has_machine(node));
        assert!(!m.is_running(node));
        m.finish_boot(node, ready).unwrap();
        assert!(m.is_running(node));

        m.suspend(node).unwrap();
        assert!(!m.is_running(node));
        let resumed_at = m.activate(node, &resources, SimInstant::from_secs_f64(50.0)).unwrap();
        assert_eq!(resumed_at, SimInstant::from_secs_f64(50.0));
        assert!(m.is_running(node));
    }

    #[test]
    fn activate_is_idempotent_for_running_machines() {
        let mut m = manager();
        let node = NodeId::ground_station(0);
        let resources = MachineResources::paper_client();
        let ready = m.activate(node, &resources, SimInstant::EPOCH).unwrap();
        m.finish_boot(node, ready).unwrap();
        let again = m.activate(node, &resources, SimInstant::from_secs_f64(1.0)).unwrap();
        assert_eq!(again, SimInstant::from_secs_f64(1.0));
        assert_eq!(m.host().machine_count(), 1);
    }

    #[test]
    fn suspend_and_finish_boot_require_an_existing_machine() {
        let mut m = manager();
        assert!(m.suspend(NodeId::satellite(0, 0)).is_err());
        assert!(m.finish_boot(NodeId::satellite(0, 0), SimInstant::EPOCH).is_err());
        assert!(m.fail(NodeId::satellite(0, 0)).is_err());
    }

    #[test]
    fn fault_injection_and_reboot() {
        let mut m = manager();
        let node = NodeId::satellite(0, 1);
        let resources = MachineResources::paper_satellite();
        let ready = m.activate(node, &resources, SimInstant::EPOCH).unwrap();
        m.finish_boot(node, ready).unwrap();
        m.fail(node).unwrap();
        assert!(!m.is_running(node));
        // Re-activating a failed machine reboots it.
        let ready2 = m.activate(node, &resources, SimInstant::from_secs_f64(5.0)).unwrap();
        assert!(ready2 > SimInstant::from_secs_f64(5.0));
        m.finish_boot(node, ready2).unwrap();
        assert!(m.is_running(node));
    }

    #[test]
    fn utilisation_samples_reflect_machine_activity() {
        let mut m = manager();
        let idle = m.sample();
        assert!(idle.cpu < 0.01);
        assert_eq!(idle.firecracker_processes, 0);
        for i in 0..10 {
            let node = NodeId::satellite(0, i);
            let ready = m
                .activate(node, &MachineResources::paper_satellite(), SimInstant::EPOCH)
                .unwrap();
            m.finish_boot(node, ready).unwrap();
            m.set_cpu_load(node, 0.5);
        }
        let busy = m.sample();
        assert!(busy.cpu > idle.cpu);
        assert!(busy.memory > idle.memory);
        assert_eq!(busy.firecracker_processes, 10);
        // 10 satellites at 25 % residency of 512 MiB plus VMM overhead.
        assert!(busy.microvm_memory_mib > 1_000);
    }

    #[test]
    fn activating_a_booting_machine_reports_its_true_ready_instant() {
        let mut m = manager();
        let node = NodeId::satellite(0, 3);
        let resources = MachineResources::paper_satellite();
        let ready = m.activate(node, &resources, SimInstant::EPOCH).unwrap();
        assert!(ready > SimInstant::EPOCH);
        // A second activation while the boot is still in flight must not
        // claim the machine is ready now.
        let later = SimInstant::from_secs_f64(0.001);
        assert!(later < ready);
        let reported = m.activate(node, &resources, later).unwrap();
        assert_eq!(reported, ready, "still-booting machine reported early");
        assert!(!m.is_running(node));
    }

    #[test]
    fn rejected_placements_do_not_consume_machine_ids() {
        let mut m = manager();
        let first = m
            .create_machine(NodeId::ground_station(0), MachineResources::paper_client())
            .unwrap();
        // Placement for a node that already has a machine is rejected — and
        // must not burn identifiers.
        for _ in 0..5 {
            assert!(m
                .create_machine(NodeId::ground_station(0), MachineResources::paper_client())
                .is_err());
        }
        let second = m
            .create_machine(NodeId::ground_station(1), MachineResources::paper_client())
            .unwrap();
        assert_eq!(second.0, first.0 + 1, "failed placements must not consume ids");
    }

    #[test]
    fn degradation_goes_through_the_cgroup_quota_not_fail() {
        let mut m = manager();
        let node = NodeId::satellite(0, 4);
        let resources = MachineResources::paper_satellite();
        let ready = m.activate(node, &resources, SimInstant::EPOCH).unwrap();
        m.finish_boot(node, ready).unwrap();
        m.degrade(node, 25).unwrap();
        assert!(m.is_running(node), "degradation must not crash the machine");
        assert_eq!(m.cpu_share(node), Some(0.25));
        m.restore(node).unwrap();
        assert_eq!(m.cpu_share(node), Some(1.0));
        // Invalid shares and missing machines are errors, not silent crashes.
        assert!(m.degrade(node, 0).is_err());
        assert!(m.degrade(NodeId::satellite(0, 99), 50).is_err());
        assert!(m.restore(NodeId::satellite(0, 99)).is_err());
    }

    #[test]
    fn machine_ids_are_scoped_per_host() {
        let mut a = MachineManager::new(HostId(0), 32, 32 * 1024, FirecrackerModel::default());
        let mut b = MachineManager::new(HostId(1), 32, 32 * 1024, FirecrackerModel::default());
        let id_a = a
            .create_machine(NodeId::ground_station(0), MachineResources::default())
            .unwrap();
        let id_b = b
            .create_machine(NodeId::ground_station(1), MachineResources::default())
            .unwrap();
        assert_ne!(id_a, id_b);
    }
}
