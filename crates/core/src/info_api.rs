//! The HTTP-style info API exposed to emulated machines.
//!
//! Every Celestial host runs an HTTP server that lets guest applications
//! query satellite positions, network paths, constellation information and
//! their own identity, backed by the coordinator's database (§3.2). This
//! module reproduces that API: requests are expressed as paths (exactly as an
//! application would issue them against the HTTP server) and answered with
//! JSON documents.

use crate::database::InfoDatabase;
use celestial_types::ids::{NodeId, TenantId};
use celestial_types::{Error, Result};
use serde_json::{json, Value};

/// A request to the info API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InfoRequest {
    /// `GET /self` — information about the requesting machine.
    SelfInfo,
    /// `GET /info` — constellation summary: shells, satellite counts, ground
    /// stations.
    Info,
    /// `GET /shell/{shell}` — information about one shell.
    Shell(u16),
    /// `GET /sat/{shell}/{sat}` — position and activity of one satellite.
    Satellite(u16, u32),
    /// `GET /gst/{name}` — information about a ground station by name.
    GroundStation(String),
    /// `GET /path/{source}/{target}` — the current shortest path and latency
    /// between two nodes, named by their DNS names without the `.celestial`
    /// suffix (e.g. `/path/878.0/accra.gst`).
    Path(String, String),
}

impl InfoRequest {
    /// Parses a request path such as `/sat/0/878` or `/path/0.0/1.gst`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown routes (the serving plane
    /// maps it to HTTP 404) and [`Error::InfoApi`] for malformed parameters
    /// on a known route (HTTP 400).
    pub fn parse(path: &str) -> Result<Self> {
        let parts: Vec<&str> = path.trim().trim_matches('/').split('/').collect();
        match parts.as_slice() {
            ["self"] => Ok(InfoRequest::SelfInfo),
            ["info"] => Ok(InfoRequest::Info),
            ["shell", shell] => Ok(InfoRequest::Shell(parse_num(shell)?)),
            ["sat", shell, sat] => Ok(InfoRequest::Satellite(parse_num(shell)?, parse_num(sat)?)),
            ["gst", name] => Ok(InfoRequest::GroundStation((*name).to_owned())),
            ["path", source, target] => {
                Ok(InfoRequest::Path((*source).to_owned(), (*target).to_owned()))
            }
            _ => Err(Error::not_found(format!("unknown route '{path}'"))),
        }
    }
}

fn parse_num<T: std::str::FromStr>(text: &str) -> Result<T> {
    text.parse::<T>()
        .map_err(|_| Error::InfoApi(format!("invalid numeric parameter '{text}'")))
}

/// The info API server handling requests against a database.
///
/// The API is tenant-scoped: a fleet shares one database, and per-tenant
/// fields of `/info` (`programmed_pairs`, `programme_delta_ops`) are read
/// from the handler's tenant report (see `docs/TENANTS.md`). [`InfoApi::new`]
/// serves tenant 0, which in a solo testbed is the whole testbed.
#[derive(Debug, Clone)]
pub struct InfoApi<'a> {
    database: &'a InfoDatabase,
    tenant: TenantId,
}

impl<'a> InfoApi<'a> {
    /// Creates an API handler over the given database, answering as tenant 0
    /// (the solo tenant).
    pub fn new(database: &'a InfoDatabase) -> Self {
        Self::for_tenant(database, TenantId(0))
    }

    /// Creates an API handler answering for one tenant of a fleet.
    pub fn for_tenant(database: &'a InfoDatabase, tenant: TenantId) -> Self {
        InfoApi { database, tenant }
    }

    /// The tenant this handler answers for.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Handles a request issued by `requester` (the emulated machine asking),
    /// returning the JSON response body.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] or [`Error::UnknownNode`] for entities
    /// that do not exist (HTTP 404 at the serve layer) and
    /// [`Error::InfoApi`] for malformed parameters or an uninitialised
    /// database (HTTP 400).
    pub fn handle(&self, requester: NodeId, request: &InfoRequest) -> Result<Value> {
        match request {
            InfoRequest::SelfInfo => self.node_info(requester),
            InfoRequest::Info => {
                // Per-tenant slices of the shared epoch. A raw database that
                // never saw a coordinator has no reports; fall back to the
                // global programme stats so solo replies look pre-tenancy.
                let reports = self.database.tenant_reports();
                let report = reports.get(self.tenant.index());
                let tenant_pairs = Value::Map(
                    reports
                        .iter()
                        .map(|t| (Value::Str(t.name.clone()), Value::U64(t.pairs as u64)))
                        .collect(),
                );
                Ok(json!({
                    "shells": self.database.shells().iter().enumerate().map(|(i, s)| json!({
                        "shell": i,
                        "altitude_km": s.walker.altitude_km,
                        "inclination_deg": s.walker.inclination_deg,
                        "planes": s.walker.planes,
                        "satellites_per_plane": s.walker.satellites_per_plane,
                        "satellites": s.satellite_count(),
                    })).collect::<Vec<_>>(),
                    "satellites": self.database.satellite_count(),
                    "ground_stations": self.database.ground_stations().iter().map(|g| g.name.clone()).collect::<Vec<_>>(),
                    "updated_at_s": self.database.updated_at_seconds(),
                    "path_algorithm": self.database.state().map(|s| s.path_algorithm().name().to_owned()),
                    "tenant": report.map(|t| t.name.clone()),
                    "tenants": reports.len().max(1),
                    "tenant_programmed_pairs": tenant_pairs,
                    "programmed_pairs": report
                        .map(|t| t.pairs)
                        .or_else(|| self.database.programme_stats().map(|s| s.pairs)),
                    "programme_delta_ops": report
                        .map(|t| t.delta_ops)
                        .or_else(|| self.database.programme_stats().map(|s| s.delta_ops)),
                    "pipeline": self.database.pipeline_report().map(|r| r.stats.mode.name()),
                    "pipeline_handover_wait_ms": self
                        .database
                        .pipeline_report()
                        .map(|r| r.stats.last_wait_ns as f64 / 1e6),
                    "pipeline_lead_ms": self
                        .database
                        .pipeline_report()
                        .map(|r| r.stats.last_lead_ns as f64 / 1e6),
                    "pipeline_precomputed_handovers": self
                        .database
                        .pipeline_report()
                        .map(|r| r.stats.precomputed),
                    "shards": self.database.shard_report().map(|r| r.pairs.len()),
                    "shard_pairs": self
                        .database
                        .shard_report()
                        .map(|r| r.pairs.iter().map(|&p| json!(p)).collect::<Vec<_>>()),
                    "shard_apply_ms": self.database.shard_report().map(|r| {
                        r.apply_ns
                            .iter()
                            .map(|&ns| json!(ns as f64 / 1e6))
                            .collect::<Vec<_>>()
                    }),
                    "shard_apply_wall_ms": self
                        .database
                        .shard_report()
                        .map(|r| r.wall_ns as f64 / 1e6),
                    "scope_active_satellites": self.database.scope_report().map(|r| r.active_satellites),
                    "scope_predicted_satellites": self.database.scope_report().map(|r| r.predicted_satellites),
                    "scope_satellites": self.database.scope_report().map(|r| r.scope_satellites),
                    "scope_sources": self.database.scope_report().map(|r| r.sources),
                    "scope_required": self.database.scope_report().map(|r| r.required),
                    "scope_landmarks": self.database.scope_report().map(|r| r.landmarks),
                    "scope_settled": self.database.scope_report().map(|r| r.settled),
                    "chaos_events": self.database.chaos_report().map(|r| r.events),
                    "chaos_active_faults": self.database.chaos_report().map(|r| r.active_faults),
                    "links_suppressed": self.database.chaos_report().map(|r| r.links_suppressed),
                }))
            }
            InfoRequest::Shell(shell) => {
                let s = self
                    .database
                    .shells()
                    .get(*shell as usize)
                    .ok_or_else(|| Error::not_found(format!("shell {shell} does not exist")))?;
                Ok(json!({
                    "shell": shell,
                    "altitude_km": s.walker.altitude_km,
                    "inclination_deg": s.walker.inclination_deg,
                    "planes": s.walker.planes,
                    "satellites_per_plane": s.walker.satellites_per_plane,
                    "arc_of_ascending_nodes_deg": s.walker.arc_of_ascending_nodes_deg,
                    "isl_bandwidth_bps": s.isl_bandwidth.as_bps(),
                    "min_elevation_deg": s.min_elevation_deg,
                    "vcpus": s.resources.vcpus,
                    "memory_mib": s.resources.memory_mib,
                }))
            }
            InfoRequest::Satellite(shell, sat) => {
                self.node_info(NodeId::satellite(*shell, *sat))
            }
            InfoRequest::GroundStation(name) => {
                let (id, _) = self
                    .database
                    .ground_station_by_name(name)
                    .ok_or_else(|| Error::not_found(format!("ground station '{name}' does not exist")))?;
                self.node_info(NodeId::GroundStation(id))
            }
            InfoRequest::Path(source, target) => {
                let a = self.parse_node(source)?;
                let b = self.parse_node(target)?;
                let latency = self.database.path_latency(a, b)?;
                let path = self.database.path(a, b)?;
                Ok(json!({
                    "source": a.dns_name(),
                    "target": b.dns_name(),
                    "connected": latency.is_some(),
                    "latency_ms": latency.map(|l| l.as_millis_f64()),
                    "path": path.map(|nodes| nodes.iter().map(|n| n.dns_name()).collect::<Vec<_>>()),
                }))
            }
        }
    }

    /// Handles a request given as a raw path string.
    ///
    /// # Errors
    ///
    /// See [`handle`](InfoApi::handle) and [`InfoRequest::parse`].
    pub fn handle_path(&self, requester: NodeId, path: &str) -> Result<Value> {
        self.handle(requester, &InfoRequest::parse(path)?)
    }

    /// Resolves a DNS-style node stem — `<index>.<shell>` for satellites,
    /// `<name|index>.gst` for ground stations — to a [`NodeId`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for a well-formed name that matches no
    /// node and [`Error::InfoApi`] for a name that does not parse at all.
    pub fn parse_node(&self, name: &str) -> Result<NodeId> {
        let parts: Vec<&str> = name.split('.').collect();
        match parts.as_slice() {
            [gst, "gst"] => {
                if let Ok(index) = gst.parse::<u32>() {
                    if (index as usize) < self.database.ground_stations().len() {
                        return Ok(NodeId::ground_station(index));
                    }
                    return Err(Error::not_found(format!("ground station {index} does not exist")));
                }
                let (id, _) = self
                    .database
                    .ground_station_by_name(gst)
                    .ok_or_else(|| Error::not_found(format!("ground station '{gst}' does not exist")))?;
                Ok(NodeId::GroundStation(id))
            }
            [sat, shell] => {
                let sat = parse_num::<u32>(sat)?;
                let shell = parse_num::<u16>(shell)?;
                Ok(NodeId::satellite(shell, sat))
            }
            _ => Err(Error::InfoApi(format!("cannot parse node '{name}'"))),
        }
    }

    fn node_info(&self, node: NodeId) -> Result<Value> {
        let position = self.database.position(node)?;
        let active = match node {
            NodeId::Satellite(sat) => self.database.is_active(sat)?,
            NodeId::GroundStation(_) => true,
        };
        let name = match node {
            NodeId::GroundStation(gst) => self
                .database
                .ground_stations()
                .get(gst.index())
                .map(|g| g.name.clone()),
            NodeId::Satellite(_) => None,
        };
        Ok(json!({
            "identifier": node.dns_name(),
            "kind": if node.is_satellite() { "satellite" } else { "ground_station" },
            "name": name,
            "active": active,
            "position": {
                "latitude_deg": position.latitude_deg(),
                "longitude_deg": position.longitude_deg(),
                "altitude_km": position.altitude_km(),
            },
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_constellation::{Constellation, GroundStation, Shell};
    use celestial_sgp4::WalkerShell;
    use celestial_types::geo::Geodetic;

    fn database() -> InfoDatabase {
        let shell = Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16));
        let gst = GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0));
        let constellation = Constellation::builder()
            .shell(shell.clone())
            .ground_station(gst.clone())
            .build()
            .unwrap();
        let mut db = InfoDatabase::new(vec![shell], vec![gst]);
        db.update(constellation.state_at(0.0).unwrap());
        db
    }

    #[test]
    fn request_parsing() {
        assert_eq!(InfoRequest::parse("/self").unwrap(), InfoRequest::SelfInfo);
        assert_eq!(InfoRequest::parse("/info").unwrap(), InfoRequest::Info);
        assert_eq!(InfoRequest::parse("/shell/2").unwrap(), InfoRequest::Shell(2));
        assert_eq!(
            InfoRequest::parse("/sat/0/878").unwrap(),
            InfoRequest::Satellite(0, 878)
        );
        assert_eq!(
            InfoRequest::parse("/gst/accra").unwrap(),
            InfoRequest::GroundStation("accra".to_owned())
        );
        assert_eq!(
            InfoRequest::parse("/path/0.0/accra.gst").unwrap(),
            InfoRequest::Path("0.0".to_owned(), "accra.gst".to_owned())
        );
        // Unknown routes are NotFound (→ 404); malformed parameters on a
        // known route are InfoApi (→ 400).
        assert!(matches!(InfoRequest::parse("/bogus"), Err(Error::NotFound(_))));
        assert!(matches!(InfoRequest::parse("/sat/x/1"), Err(Error::InfoApi(_))));
    }

    #[test]
    fn missing_entities_are_not_found_errors() {
        let db = database();
        let api = InfoApi::new(&db);
        let requester = NodeId::ground_station(0);
        assert!(matches!(
            api.handle_path(requester, "/shell/9"),
            Err(Error::NotFound(_))
        ));
        assert!(matches!(
            api.handle_path(requester, "/gst/lagos"),
            Err(Error::NotFound(_))
        ));
        assert!(matches!(
            api.handle_path(requester, "/path/lagos.gst/0.gst"),
            Err(Error::NotFound(_))
        ));
        assert!(matches!(
            api.handle_path(requester, "/path/9.gst/0.gst"),
            Err(Error::NotFound(_))
        ));
        // A node stem that cannot even be parsed stays a 400-class error.
        assert!(matches!(
            api.parse_node("not-a-node"),
            Err(Error::InfoApi(_))
        ));
    }

    #[test]
    fn self_info_describes_the_requester() {
        let db = database();
        let api = InfoApi::new(&db);
        let response = api.handle_path(NodeId::ground_station(0), "/self").unwrap();
        assert_eq!(response["identifier"], "0.gst.celestial");
        assert_eq!(response["kind"], "ground_station");
        assert_eq!(response["name"], "accra");
        assert_eq!(response["active"], true);
        assert!((response["position"]["latitude_deg"].as_f64().unwrap() - 5.6037).abs() < 1e-6);
    }

    #[test]
    fn info_and_shell_routes() {
        let db = database();
        let api = InfoApi::new(&db);
        let info = api.handle_path(NodeId::ground_station(0), "/info").unwrap();
        assert_eq!(info["satellites"], 192);
        assert_eq!(info["ground_stations"][0], "accra");
        assert_eq!(info["path_algorithm"], "dijkstra");
        let shell = api.handle_path(NodeId::ground_station(0), "/shell/0").unwrap();
        assert_eq!(shell["planes"], 12);
        assert!(api.handle_path(NodeId::ground_station(0), "/shell/3").is_err());
    }

    #[test]
    fn info_reply_is_tenant_scoped() {
        let mut db = database();
        db.update_tenant_report(0, "alpha", 5, 1);
        db.update_tenant_report(1, "beta", 7, 2);
        let api = InfoApi::for_tenant(&db, TenantId(1));
        assert_eq!(api.tenant(), TenantId(1));
        let info = api.handle_path(NodeId::ground_station(0), "/info").unwrap();
        assert_eq!(info["tenant"], "beta");
        assert_eq!(info["tenants"], 2);
        // The scalar programme fields are the handler's tenant slice...
        assert_eq!(info["programmed_pairs"], 7);
        assert_eq!(info["programme_delta_ops"], 2);
        // ...while the fleet-wide map names every tenant.
        assert_eq!(info["tenant_programmed_pairs"]["alpha"], 5);
        assert_eq!(info["tenant_programmed_pairs"]["beta"], 7);

        // A raw pre-tenancy database still answers as a single tenant, with
        // the global programme stats as fallback.
        let db = database();
        let info = InfoApi::new(&db)
            .handle_path(NodeId::ground_station(0), "/info")
            .unwrap();
        assert_eq!(info["tenants"], 1);
        assert!(info.get("tenant").and_then(Value::as_str).is_none());
    }

    #[test]
    fn info_reports_the_solve_scope() {
        let mut db = database();
        db.set_scope_report(crate::pipeline::ScopeReport {
            active_satellites: 18,
            predicted_satellites: 21,
            scope_satellites: 40,
            sources: 58,
            required: 19,
            landmarks: 8,
            settled: 12_345,
        });
        let info = InfoApi::new(&db)
            .handle_path(NodeId::ground_station(0), "/info")
            .unwrap();
        assert_eq!(info["scope_active_satellites"], 18);
        assert_eq!(info["scope_predicted_satellites"], 21);
        assert_eq!(info["scope_satellites"], 40);
        assert_eq!(info["scope_sources"], 58);
        assert_eq!(info["scope_required"], 19);
        assert_eq!(info["scope_landmarks"], 8);
        assert_eq!(info["scope_settled"], 12_345);
        // A database that never saw a coordinator reports no scope.
        let info = InfoApi::new(&database())
            .handle_path(NodeId::ground_station(0), "/info")
            .unwrap();
        assert!(info.get("scope_sources").map(Value::is_null).unwrap_or(true));
    }

    #[test]
    fn satellite_route_reports_position_and_activity() {
        let db = database();
        let api = InfoApi::new(&db);
        let sat = api.handle_path(NodeId::ground_station(0), "/sat/0/5").unwrap();
        assert_eq!(sat["kind"], "satellite");
        let altitude = sat["position"]["altitude_km"].as_f64().unwrap();
        assert!((altitude - 550.0).abs() < 5.0);
        assert!(api.handle_path(NodeId::ground_station(0), "/sat/0/9999").is_err());
    }

    #[test]
    fn path_route_reports_latency_and_hops() {
        let db = database();
        let api = InfoApi::new(&db);
        let visible = db
            .visible_satellites(celestial_types::ids::GroundStationId(0))
            .unwrap();
        let sat = visible[0];
        let path = api
            .handle_path(
                NodeId::ground_station(0),
                &format!("/path/accra.gst/{}.{}", sat.index, sat.shell.0),
            )
            .unwrap();
        assert_eq!(path["connected"], true);
        assert!(path["latency_ms"].as_f64().unwrap() > 0.0);
        let hops = path["path"].as_array().unwrap();
        assert_eq!(hops.first().unwrap(), "0.gst.celestial");
        // Numeric ground-station references work too.
        let by_index = api
            .handle_path(NodeId::ground_station(0), "/path/0.gst/0.gst")
            .unwrap();
        assert_eq!(by_index["latency_ms"], 0.0);
        assert!(api
            .handle_path(NodeId::ground_station(0), "/path/lagos.gst/0.gst")
            .is_err());
    }
}
