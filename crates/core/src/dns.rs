//! The Celestial DNS service.
//!
//! Every Celestial host runs a small DNS server so that applications can
//! resolve microVM addresses through friendly names instead of knowing the IP
//! address calculation (§3.2): `878.0.celestial` is satellite 878 of shell 0,
//! `1.gst.celestial` is the second ground station, and — as a convenience of
//! this reproduction — ground stations can also be resolved by their
//! configured name, e.g. `accra.gst.celestial`.

use crate::ipam::{IpAddressManager, VirtualIp};
use celestial_types::ids::NodeId;
use celestial_types::{Error, Result};
use std::collections::BTreeMap;

/// The DNS service resolving `*.celestial` names to virtual addresses.
#[derive(Debug, Clone, Default)]
pub struct DnsService {
    ipam: IpAddressManager,
    /// Ground-station names in configuration order.
    ground_station_names: BTreeMap<String, u32>,
    shell_sizes: Vec<u32>,
}

impl DnsService {
    /// Creates the DNS service for a constellation with the given shell sizes
    /// and ground-station names (in configuration order).
    pub fn new(shell_sizes: Vec<u32>, ground_station_names: Vec<String>) -> Self {
        DnsService {
            ipam: IpAddressManager::new(shell_sizes.len() as u16),
            ground_station_names: ground_station_names
                .into_iter()
                .enumerate()
                .map(|(i, name)| (name, i as u32))
                .collect(),
            shell_sizes,
        }
    }

    /// Resolves a `*.celestial` name to the node it refers to.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NameResolution`] for names outside the `.celestial`
    /// zone, malformed names, or nodes that do not exist.
    pub fn resolve_node(&self, name: &str) -> Result<NodeId> {
        let name = name.trim().trim_end_matches('.');
        let Some(stem) = name.strip_suffix(".celestial") else {
            return Err(Error::NameResolution(format!(
                "'{name}' is not in the .celestial zone"
            )));
        };
        let parts: Vec<&str> = stem.split('.').collect();
        match parts.as_slice() {
            [index, "gst"] => {
                let idx = if let Ok(numeric) = index.parse::<u32>() {
                    numeric
                } else {
                    *self.ground_station_names.get(*index).ok_or_else(|| {
                        Error::NameResolution(format!("unknown ground station '{index}'"))
                    })?
                };
                if idx as usize >= self.ground_station_names.len() {
                    return Err(Error::NameResolution(format!(
                        "ground station {idx} does not exist"
                    )));
                }
                Ok(NodeId::ground_station(idx))
            }
            [sat, shell] => {
                let sat: u32 = sat.parse().map_err(|_| {
                    Error::NameResolution(format!("invalid satellite index in '{name}'"))
                })?;
                let shell: u16 = shell.parse().map_err(|_| {
                    Error::NameResolution(format!("invalid shell index in '{name}'"))
                })?;
                let size = self.shell_sizes.get(shell as usize).ok_or_else(|| {
                    Error::NameResolution(format!("shell {shell} does not exist"))
                })?;
                if sat >= *size {
                    return Err(Error::NameResolution(format!(
                        "satellite {sat} does not exist in shell {shell}"
                    )));
                }
                Ok(NodeId::satellite(shell, sat))
            }
            _ => Err(Error::NameResolution(format!("malformed name '{name}'"))),
        }
    }

    /// Resolves a `*.celestial` name to the guest IP address of its machine
    /// (an A-record lookup).
    ///
    /// # Errors
    ///
    /// See [`resolve_node`](DnsService::resolve_node).
    pub fn resolve(&self, name: &str) -> Result<VirtualIp> {
        let node = self.resolve_node(name)?;
        self.ipam.guest_address(node)
    }

    /// The canonical DNS name of a node.
    pub fn name_of(&self, node: NodeId) -> String {
        node.dns_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dns() -> DnsService {
        DnsService::new(
            vec![1584, 1600],
            vec!["accra".to_owned(), "abuja".to_owned(), "yaounde".to_owned()],
        )
    }

    #[test]
    fn resolves_satellites_by_index_and_shell() {
        let dns = dns();
        assert_eq!(
            dns.resolve_node("878.0.celestial").unwrap(),
            NodeId::satellite(0, 878)
        );
        assert_eq!(
            dns.resolve_node("12.1.celestial").unwrap(),
            NodeId::satellite(1, 12)
        );
        let ip = dns.resolve("878.0.celestial").unwrap();
        assert_eq!(ip.to_string(), "10.0.13.186");
    }

    #[test]
    fn resolves_ground_stations_by_index_and_name() {
        let dns = dns();
        assert_eq!(
            dns.resolve_node("1.gst.celestial").unwrap(),
            NodeId::ground_station(1)
        );
        assert_eq!(
            dns.resolve_node("accra.gst.celestial").unwrap(),
            NodeId::ground_station(0)
        );
        assert_eq!(
            dns.resolve("yaounde.gst.celestial").unwrap(),
            dns.resolve("2.gst.celestial").unwrap()
        );
    }

    #[test]
    fn rejects_unknown_and_malformed_names() {
        let dns = dns();
        assert!(dns.resolve_node("example.com").is_err());
        assert!(dns.resolve_node("9999.0.celestial").is_err());
        assert!(dns.resolve_node("0.7.celestial").is_err());
        assert!(dns.resolve_node("lagos.gst.celestial").is_err());
        assert!(dns.resolve_node("5.gst.celestial").is_err());
        assert!(dns.resolve_node("a.b.c.celestial").is_err());
        assert!(dns.resolve_node("celestial").is_err());
    }

    #[test]
    fn trailing_dot_and_whitespace_are_tolerated() {
        let dns = dns();
        assert!(dns.resolve_node(" 0.0.celestial. ").is_ok());
    }

    #[test]
    fn name_of_round_trips_through_resolution() {
        let dns = dns();
        for node in [NodeId::satellite(1, 7), NodeId::ground_station(2)] {
            assert_eq!(dns.resolve_node(&dns.name_of(node)).unwrap(), node);
        }
    }
}
