//! A hand-written parser for the TOML subset used by Celestial configuration
//! files.
//!
//! Celestial passes all experiment parameters in a single TOML file to limit
//! side effects and ensure repeatable testing (§3.1). The subset supported
//! here covers what such configuration files need: top-level key/value pairs,
//! `[tables]`, `[[arrays of tables]]`, dotted section names one or more
//! levels deep (`[[scenario.block]]` nests under the `scenario` table,
//! creating it implicitly if needed), strings, integers, floats, booleans
//! and flat arrays. Inline tables and dotted *keys* are not supported.

use celestial_types::{Error, Result};
use std::collections::BTreeMap;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A quoted string.
    String(String),
    /// An integer.
    Integer(i64),
    /// A floating point number.
    Float(f64),
    /// A boolean.
    Boolean(bool),
    /// A flat array of values.
    Array(Vec<TomlValue>),
    /// A table of key/value pairs.
    Table(TomlTable),
    /// An array of tables (`[[name]]` sections).
    TableArray(Vec<TomlTable>),
}

/// A table: ordered map from keys to values.
pub type TomlTable = BTreeMap<String, TomlValue>;

impl TomlValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float; integers are widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Float(f) => Some(*f),
            TomlValue::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            TomlValue::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a table.
    pub fn as_table(&self) -> Option<&TomlTable> {
        match self {
            TomlValue::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The value as an array of tables.
    pub fn as_table_array(&self) -> Option<&[TomlTable]> {
        match self {
            TomlValue::TableArray(tables) => Some(tables),
            _ => None,
        }
    }

    /// The value as a flat array.
    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses a TOML document into its top-level table.
///
/// # Errors
///
/// Returns [`Error::Config`] describing the offending line on any syntax the
/// subset does not support.
pub fn parse(input: &str) -> Result<TomlTable> {
    let mut root: TomlTable = BTreeMap::new();
    // Path of the table currently being filled: None = root, otherwise the
    // dot-separated section path and whether it is an array-of-tables
    // element.
    let mut current_section: Option<(Vec<String>, bool)> = None;
    // Explicit `[name]` headers already seen, to reject duplicates while
    // still allowing tables created implicitly by dotted children.
    let mut declared: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();

    for (line_no, raw_line) in input.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = name.trim();
            let path = section_path(name, line_no)?;
            let parent = open_parent(&mut root, &path, line_no)?;
            let last = path.last().expect("section paths are non-empty");
            match parent
                .entry(last.clone())
                .or_insert_with(|| TomlValue::TableArray(Vec::new()))
            {
                TomlValue::TableArray(tables) => tables.push(BTreeMap::new()),
                _ => {
                    return Err(Error::config(format!(
                        "line {}: '{name}' is already defined as a non-array table",
                        line_no + 1
                    )))
                }
            }
            current_section = Some((path, true));
        } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim();
            let path = section_path(name, line_no)?;
            if !declared.insert(path.join(".")) {
                return Err(Error::config(format!(
                    "line {}: table '{name}' defined twice",
                    line_no + 1
                )));
            }
            let parent = open_parent(&mut root, &path, line_no)?;
            let last = path.last().expect("section paths are non-empty");
            match parent
                .entry(last.clone())
                .or_insert_with(|| TomlValue::Table(BTreeMap::new()))
            {
                TomlValue::Table(_) => {}
                _ => {
                    return Err(Error::config(format!(
                        "line {}: '{name}' is already defined as an array of tables",
                        line_no + 1
                    )))
                }
            }
            current_section = Some((path, false));
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim().to_owned();
            if key.is_empty() {
                return Err(Error::config(format!("line {}: empty key", line_no + 1)));
            }
            let value = parse_value(value.trim(), line_no)?;
            let target: &mut TomlTable = match &current_section {
                None => &mut root,
                Some((path, _)) => open_section(&mut root, path),
            };
            if target.insert(key.clone(), value).is_some() {
                return Err(Error::config(format!(
                    "line {}: duplicate key '{key}'",
                    line_no + 1
                )));
            }
        } else {
            return Err(Error::config(format!(
                "line {}: cannot parse '{line}'",
                line_no + 1
            )));
        }
    }
    Ok(root)
}

/// Splits a section header into its dot-separated path segments.
fn section_path(name: &str, line_no: usize) -> Result<Vec<String>> {
    let segments: Vec<String> = name.split('.').map(|s| s.trim().to_owned()).collect();
    if name.is_empty()
        || segments
            .iter()
            .any(|s| s.is_empty() || s.contains('[') || s.contains(']'))
    {
        return Err(Error::config(format!(
            "line {}: unsupported section name '{name}'",
            line_no + 1
        )));
    }
    Ok(segments)
}

/// Returns the table the section's *parent* path names, creating
/// intermediate tables implicitly (so `[[scenario.block]]` may appear before
/// any `[scenario]` header). Intermediate array-of-tables segments resolve to
/// their most recent element, as in standard TOML.
fn open_parent<'a>(
    root: &'a mut TomlTable,
    path: &[String],
    line_no: usize,
) -> Result<&'a mut TomlTable> {
    let mut table = root;
    for segment in &path[..path.len() - 1] {
        let value = table
            .entry(segment.clone())
            .or_insert_with(|| TomlValue::Table(BTreeMap::new()));
        table = match value {
            TomlValue::Table(t) => t,
            TomlValue::TableArray(tables) => {
                tables.last_mut().expect("array headers always push an element")
            }
            _ => {
                return Err(Error::config(format!(
                    "line {}: '{segment}' is not a table",
                    line_no + 1
                )))
            }
        };
    }
    Ok(table)
}

/// Navigates to the table the current section header selected (the most
/// recent element when a path segment is an array of tables).
fn open_section<'a>(root: &'a mut TomlTable, path: &[String]) -> &'a mut TomlTable {
    let mut table = root;
    for segment in path {
        table = match table.get_mut(segment).expect("section header inserted the path") {
            TomlValue::Table(t) => t,
            TomlValue::TableArray(tables) => {
                tables.last_mut().expect("section header pushed a table")
            }
            _ => unreachable!("section bookkeeping is consistent"),
        };
    }
    table
}

fn strip_comment(line: &str) -> &str {
    // A '#' starts a comment unless it is inside a quoted string.
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line_no: usize) -> Result<TomlValue> {
    let text = text.trim();
    if text.is_empty() {
        return Err(Error::config(format!("line {}: missing value", line_no + 1)));
    }
    if let Some(stripped) = text.strip_prefix('"') {
        let Some(end) = stripped.find('"') else {
            return Err(Error::config(format!(
                "line {}: unterminated string",
                line_no + 1
            )));
        };
        let rest = stripped[end + 1..].trim();
        if !rest.is_empty() {
            return Err(Error::config(format!(
                "line {}: trailing characters after string",
                line_no + 1
            )));
        }
        return Ok(TomlValue::String(stripped[..end].to_owned()));
    }
    if text == "true" {
        return Ok(TomlValue::Boolean(true));
    }
    if text == "false" {
        return Ok(TomlValue::Boolean(false));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(TomlValue::Array(Vec::new()));
        }
        let items = split_array_items(inner)
            .into_iter()
            .map(|item| parse_value(item.trim(), line_no))
            .collect::<Result<Vec<_>>>()?;
        return Ok(TomlValue::Array(items));
    }
    // Numbers: prefer integer when there is no decimal point or exponent.
    let numeric = text.replace('_', "");
    if !numeric.contains('.') && !numeric.contains(['e', 'E']) {
        if let Ok(i) = numeric.parse::<i64>() {
            return Ok(TomlValue::Integer(i));
        }
    }
    if let Ok(f) = numeric.parse::<f64>() {
        return Ok(TomlValue::Float(f));
    }
    Err(Error::config(format!(
        "line {}: cannot parse value '{text}'",
        line_no + 1
    )))
}

fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth = depth.saturating_sub(1),
            ',' if !in_string && depth == 0 => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < inner.len() {
        items.push(&inner[start..]);
    }
    items
}

/// Convenience accessors over a parsed table.
pub trait TableExt {
    /// A required float value (integers widen).
    fn require_f64(&self, key: &str) -> Result<f64>;
    /// An optional float value.
    fn get_f64(&self, key: &str) -> Option<f64>;
    /// An optional integer value.
    fn get_i64(&self, key: &str) -> Option<i64>;
    /// An optional string value.
    fn get_str(&self, key: &str) -> Option<&str>;
    /// An optional boolean value.
    fn get_bool(&self, key: &str) -> Option<bool>;
}

impl TableExt for TomlTable {
    fn require_f64(&self, key: &str) -> Result<f64> {
        self.get(key)
            .and_then(TomlValue::as_f64)
            .ok_or_else(|| Error::config(format!("missing or non-numeric key '{key}'")))
    }

    fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(TomlValue::as_f64)
    }

    fn get_i64(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(TomlValue::as_i64)
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(TomlValue::as_str)
    }

    fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(TomlValue::as_bool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_table_arrays() {
        let doc = r#"
# experiment configuration
seed = 42
update-interval-s = 2.5
name = "starlink meetup"   # inline comment
animate = false

[bounding-box]
lat-min = -5.0
lat-max = 25

[[shell]]
altitude-km = 550.0
planes = 72

[[shell]]
altitude-km = 1110.0
planes = 32
"#;
        let table = parse(doc).expect("valid document");
        assert_eq!(table.get_i64("seed"), Some(42));
        assert_eq!(table.get_f64("update-interval-s"), Some(2.5));
        assert_eq!(table.get_str("name"), Some("starlink meetup"));
        assert_eq!(table.get_bool("animate"), Some(false));
        let bbox = table["bounding-box"].as_table().expect("table");
        assert_eq!(bbox.get_f64("lat-min"), Some(-5.0));
        assert_eq!(bbox.get_f64("lat-max"), Some(25.0));
        let shells = table["shell"].as_table_array().expect("table array");
        assert_eq!(shells.len(), 2);
        assert_eq!(shells[1].get_f64("altitude-km"), Some(1110.0));
    }

    #[test]
    fn parses_arrays() {
        let table = parse("ports = [1, 2, 3]\nnames = [\"a\", \"b\"]\nempty = []").unwrap();
        let ports = table["ports"].as_array().unwrap();
        assert_eq!(ports.len(), 3);
        assert_eq!(ports[2].as_i64(), Some(3));
        let names = table["names"].as_array().unwrap();
        assert_eq!(names[1].as_str(), Some("b"));
        assert!(table["empty"].as_array().unwrap().is_empty());
    }

    #[test]
    fn rejects_duplicate_keys_and_tables() {
        assert!(parse("a = 1\na = 2").is_err());
        assert!(parse("[t]\nx = 1\n[t]\ny = 2").is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("this is not toml").is_err());
        assert!(parse("key = ").is_err());
        assert!(parse("key = \"unterminated").is_err());
        assert!(parse("[bad..name]\n").is_err());
        assert!(parse("[.bad]\n").is_err());
        assert!(parse("= 3").is_err());
    }

    #[test]
    fn parses_dotted_sections_and_nested_table_arrays() {
        let doc = r#"
[scenario]
tenants = 4

[[scenario.block]]
kind = "cbr"
population = 100

[[scenario.block]]
kind = "iot"
"#;
        let table = parse(doc).expect("valid document");
        let scenario = table["scenario"].as_table().expect("table");
        assert_eq!(scenario.get_i64("tenants"), Some(4));
        let blocks = scenario["block"].as_table_array().expect("table array");
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].get_str("kind"), Some("cbr"));
        assert_eq!(blocks[0].get_i64("population"), Some(100));
        assert_eq!(blocks[1].get_str("kind"), Some("iot"));
    }

    #[test]
    fn dotted_sections_create_parents_implicitly_and_merge_later_headers() {
        // The child appears before any [scenario] header; the parent table is
        // created implicitly and a later explicit header fills the same table.
        let doc = "[[scenario.block]]\nkind = \"cbr\"\n\n[scenario]\ntenants = 2\n";
        let table = parse(doc).expect("valid document");
        let scenario = table["scenario"].as_table().expect("table");
        assert_eq!(scenario.get_i64("tenants"), Some(2));
        assert_eq!(scenario["block"].as_table_array().unwrap().len(), 1);
        // Duplicate explicit headers are still rejected.
        assert!(parse("[a.b]\nx = 1\n[a.b]\ny = 2").is_err());
        // A dotted child under a scalar is rejected.
        assert!(parse("a = 1\n[[a.b]]\nx = 1").is_err());
        // Table/array mixing is rejected at nested level too.
        assert!(parse("[a.b]\nx = 1\n[[a.b]]\ny = 2").is_err());
    }

    #[test]
    fn mixing_table_and_table_array_is_rejected() {
        assert!(parse("[shell]\nx = 1\n[[shell]]\ny = 2").is_err());
    }

    #[test]
    fn comments_and_hash_in_strings() {
        let table = parse("name = \"value # not a comment\" # real comment").unwrap();
        assert_eq!(table.get_str("name"), Some("value # not a comment"));
    }

    #[test]
    fn integers_with_underscores_and_floats_with_exponent() {
        let table = parse("big = 1_000_000\nsmall = 1.5e-3").unwrap();
        assert_eq!(table.get_i64("big"), Some(1_000_000));
        assert!((table.get_f64("small").unwrap() - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn require_f64_reports_missing_keys() {
        let table = parse("x = 1").unwrap();
        assert!(table.require_f64("x").is_ok());
        let err = table.require_f64("y").unwrap_err();
        assert!(err.to_string().contains("'y'"));
    }
}
