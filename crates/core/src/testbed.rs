//! The testbed runtime: guest applications over the emulated constellation.
//!
//! [`Testbed`] assembles the full Celestial architecture — coordinator,
//! machine managers, network emulation, DNS and info API — and executes a
//! [`GuestApplication`] against it in virtual time. The application plays the
//! role of the software that would run *inside* the microVMs of the original
//! system: it addresses nodes by their identifiers, sends messages whose
//! delivery is governed by the emulated network, reacts to timers, and may
//! query the info API exactly as a real guest would query the per-host HTTP
//! server.
//!
//! # Multi-tenancy
//!
//! A testbed runs one or more *tenants* over a single shared epoch pipeline
//! (see `docs/TENANTS.md`). Each tenant is a full [`TenantRuntime`] — its
//! own machine managers, network plane, fault schedule and RNG — while the
//! expensive orbital propagation and path solve are computed once per epoch
//! and fanned out. A solo testbed is the one-tenant degenerate case and
//! behaves bit-identically to a pre-tenancy run; fleets execute one guest
//! application per tenant through [`Testbed::run_fleet`].

use crate::config::{ChaosConfig, TestbedConfig};
use crate::coordinator::Coordinator;
use crate::database::InfoDatabase;
use crate::dns::DnsService;
use crate::machine_manager::MachineManager;
use celestial_netem::ProgrammeDelta;
use celestial_constellation::{Constellation, FlapWindow, LinkSuppression};
use celestial_machines::chaos::{ChaosEngine, ChaosSpec, ChaosTopology};
use celestial_machines::{FaultEvent, FaultKind, FirecrackerModel};
use celestial_netem::overlay::HostOverlay;
use celestial_netem::packet::Packet;
use celestial_netem::shard::{NetworkPlane, PlacementPolicy, ShardApplyReport, ShardPlan};
use celestial_sim::metrics::TimeSeries;
use celestial_sim::{SimRng, Simulation};
use celestial_types::ids::{HostId, NodeId, TenantId};
use celestial_types::resources::MachineResources;
use celestial_types::time::{SimDuration, SimInstant};
use celestial_types::{Error, Latency, Result};
use std::collections::{BTreeMap, BTreeSet};

/// A guest application running on the testbed.
///
/// All methods have empty default implementations so applications only
/// implement the hooks they need.
pub trait GuestApplication {
    /// Called once at the start of the experiment, after the ground-station
    /// machines have booted and the first constellation update has run.
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        let _ = ctx;
    }

    /// Called after every constellation update (every `update-interval-s`
    /// seconds of simulated time).
    fn on_constellation_update(&mut self, ctx: &mut AppContext<'_>) {
        let _ = ctx;
    }

    /// Called when a timer set with [`AppContext::set_timer`] fires.
    fn on_timer(&mut self, tag: u64, ctx: &mut AppContext<'_>) {
        let _ = (tag, ctx);
    }

    /// Called when a message is delivered to a running machine.
    fn on_message(&mut self, message: &Packet, ctx: &mut AppContext<'_>) {
        let _ = (message, ctx);
    }
}

/// Deferred actions collected from application callbacks and applied by the
/// runtime once the callback returns.
#[derive(Debug)]
enum Command {
    Send {
        from: NodeId,
        to: NodeId,
        size_bytes: u64,
        payload: Vec<u8>,
    },
    SetTimer {
        delay: SimDuration,
        tag: u64,
    },
    SetCpuLoad {
        node: NodeId,
        load: f64,
    },
    FailMachine {
        node: NodeId,
    },
    RebootMachine {
        node: NodeId,
    },
}

/// The API surface available to a guest application inside a callback.
pub struct AppContext<'a> {
    now: SimInstant,
    tenant: TenantId,
    database: &'a InfoDatabase,
    dns: &'a DnsService,
    managers: &'a [MachineManager],
    node_to_host: &'a BTreeMap<NodeId, usize>,
    network: &'a NetworkPlane,
    rng: &'a mut SimRng,
    commands: Vec<Command>,
}

impl<'a> AppContext<'a> {
    /// The current simulated time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// The tenant this application runs as (tenant 0 in a solo testbed).
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The coordinator's information database (the guest-visible info API).
    pub fn database(&self) -> &InfoDatabase {
        self.database
    }

    /// The Celestial DNS service.
    pub fn dns(&self) -> &DnsService {
        self.dns
    }

    /// The node of the ground station with the given configured name.
    pub fn ground_station(&self, name: &str) -> Option<NodeId> {
        self.database
            .ground_station_by_name(name)
            .map(|(id, _)| NodeId::GroundStation(id))
    }

    /// The satellite currently offering the lowest-latency uplink to the
    /// given ground station, if any satellite is in view.
    pub fn best_uplink(&self, gst: NodeId) -> Option<NodeId> {
        let gst = gst.as_ground_station()?;
        self.database
            .state()
            .and_then(|s| s.best_uplink(gst))
            .map(NodeId::Satellite)
    }

    /// The satellites currently visible from a ground station.
    pub fn visible_satellites(&self, gst: NodeId) -> Vec<NodeId> {
        let Some(gst) = gst.as_ground_station() else {
            return Vec::new();
        };
        self.database
            .visible_satellites(gst)
            .map(|sats| sats.into_iter().map(NodeId::Satellite).collect())
            .unwrap_or_default()
    }

    /// The one-way network latency the constellation calculation expects
    /// between two nodes right now (the quantity a tracking service would
    /// compute), or `None` if they are not connected.
    pub fn expected_latency(&self, a: NodeId, b: NodeId) -> Option<Latency> {
        self.database.path_latency(a, b).ok().flatten()
    }

    /// The end-to-end latency currently programmed into the network
    /// emulation between two nodes, or `None` if the pair is unreachable.
    pub fn emulated_latency(&self, a: NodeId, b: NodeId) -> Option<Latency> {
        self.network.effective_latency(a, b)
    }

    /// Whether the machine backing `node` is currently running.
    pub fn is_running(&self, node: NodeId) -> bool {
        self.node_to_host
            .get(&node)
            .map(|host| self.managers[*host].is_running(node))
            .unwrap_or(false)
    }

    /// The deterministic random number generator of the experiment.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends a message of `size_bytes` (wire size) carrying `payload` from
    /// one node to another. Delivery time and loss are governed by the
    /// emulated network; messages from machines that are not running are
    /// dropped.
    pub fn send(&mut self, from: NodeId, to: NodeId, size_bytes: u64, payload: Vec<u8>) {
        self.commands.push(Command::Send {
            from,
            to,
            size_bytes,
            payload,
        });
    }

    /// Schedules [`GuestApplication::on_timer`] to be called with `tag` after
    /// `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.commands.push(Command::SetTimer { delay, tag });
    }

    /// Sets the guest CPU load of a node's machine (a fraction of its
    /// allocated vCPUs in `[0, 1]`), feeding the host utilisation traces.
    pub fn set_cpu_load(&mut self, node: NodeId, load: f64) {
        self.commands.push(Command::SetCpuLoad { node, load });
    }

    /// Crashes the machine backing `node`, e.g. to emulate a radiation
    /// fault from within the application.
    pub fn fail_machine(&mut self, node: NodeId) {
        self.commands.push(Command::FailMachine { node });
    }

    /// Reboots the machine backing `node` (valid after a failure or stop).
    pub fn reboot_machine(&mut self, node: NodeId) {
        self.commands.push(Command::RebootMachine { node });
    }
}

/// Events of the testbed's internal discrete-event loop. Each scheduled
/// event carries the index of the tenant it belongs to, so a fleet's tenants
/// interleave on one queue while every tenant's relative order matches its
/// solo run (the queue is FIFO-stable at equal timestamps).
#[derive(Debug)]
enum Event {
    ConstellationUpdate,
    UtilizationSample,
    BootComplete(NodeId),
    AppTimer(u64),
    Deliver(Packet),
    Fault(FaultEvent),
    Recover(NodeId),
}

enum AppCall {
    Start,
    ConstellationUpdate,
    Timer(u64),
    Message(Packet),
}

/// One tenant's private half of the testbed: machine managers, network
/// plane, placements, fault schedule, RNG and counters.
///
/// Every tenant borrows the shared orbital state and path matrix computed
/// once per epoch by the coordinator's pipeline; everything in this struct
/// is isolated per tenant (see `docs/TENANTS.md`).
#[derive(Debug)]
pub struct TenantRuntime {
    id: TenantId,
    name: String,
    managers: Vec<MachineManager>,
    node_to_host: BTreeMap<NodeId, usize>,
    network: NetworkPlane,
    placement: PlacementPolicy,
    rng: SimRng,
    scheduled_faults: Vec<FaultEvent>,
    host_cpu: Vec<TimeSeries>,
    host_memory: Vec<TimeSeries>,
    host_processes: Vec<TimeSeries>,
    messages_delivered: u64,
    messages_dropped: u64,
    failed_recoveries: u64,
    /// Faults that landed on a machine unable to take them (already down,
    /// never created, or not running for a degradation) and were ignored.
    ignored_faults: u64,
    /// Nodes currently degraded (reduced CPU share); their recovery restores
    /// the quota instead of re-activating the machine.
    degraded: BTreeSet<NodeId>,
    /// Injected fault windows currently in effect.
    active_faults: u64,
}

impl TenantRuntime {
    fn new(
        id: TenantId,
        name: String,
        config: &TestbedConfig,
        shard_plan: Option<ShardPlan>,
        scheduled_faults: Vec<FaultEvent>,
    ) -> Self {
        let model = FirecrackerModel {
            ballooning: config.ballooning,
            ..FirecrackerModel::default()
        };
        let managers: Vec<MachineManager> = config
            .hosts
            .iter()
            .enumerate()
            .map(|(i, h)| MachineManager::new(HostId(i as u32), h.cores, h.memory_mib, model))
            .collect();
        let mut network = match shard_plan {
            Some(plan) => NetworkPlane::sharded(plan),
            None => NetworkPlane::global(HostOverlay::new(config.hosts.len() as u32)),
        };
        if let Some(us) = config.host_latency_us {
            network.set_default_host_latency(Latency::from_micros(us));
        }
        let host_count = managers.len();
        TenantRuntime {
            id,
            name,
            managers,
            node_to_host: BTreeMap::new(),
            network,
            placement: PlacementPolicy::RoundRobin,
            // Every tenant draws from an identical stream seeded by the run
            // seed, exactly like a solo testbed: a pinned tenant's run is
            // reproducible independently of how many neighbours it has.
            rng: SimRng::seed_from_u64(config.seed),
            scheduled_faults,
            host_cpu: vec![TimeSeries::new(); host_count],
            host_memory: vec![TimeSeries::new(); host_count],
            host_processes: vec![TimeSeries::new(); host_count],
            messages_delivered: 0,
            messages_dropped: 0,
            failed_recoveries: 0,
            ignored_faults: 0,
            degraded: BTreeSet::new(),
            active_faults: 0,
        }
    }

    /// This tenant's identifier.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// This tenant's configured name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This tenant's machine managers, one per host.
    pub fn managers(&self) -> &[MachineManager] {
        &self.managers
    }

    /// This tenant's network plane.
    pub fn network(&self) -> &NetworkPlane {
        &self.network
    }

    /// Counters of this tenant's application messages
    /// `(delivered, dropped)`.
    pub fn message_counters(&self) -> (u64, u64) {
        (self.messages_delivered, self.messages_dropped)
    }

    /// Number of this tenant's post-fault reboots that failed.
    pub fn failed_recoveries(&self) -> u64 {
        self.failed_recoveries
    }

    /// Number of this tenant's injected faults that were ignored because
    /// the target machine could not take them.
    pub fn ignored_faults(&self) -> u64 {
        self.ignored_faults
    }

    /// Number of this tenant's injected fault windows currently in effect.
    pub fn active_faults(&self) -> u64 {
        self.active_faults
    }

    /// This tenant's per-host CPU utilisation traces (percent).
    pub fn host_cpu_series(&self) -> &[TimeSeries] {
        &self.host_cpu
    }

    /// This tenant's per-host memory utilisation traces (percent).
    pub fn host_memory_series(&self) -> &[TimeSeries] {
        &self.host_memory
    }

    /// This tenant's per-host Firecracker process counts.
    pub fn host_process_series(&self) -> &[TimeSeries] {
        &self.host_processes
    }

    fn host_for(&mut self, node: NodeId) -> usize {
        if let Some(host) = self.node_to_host.get(&node) {
            return *host;
        }
        // The placement policy is the same pure function the coordinator's
        // programme partitioning uses, so a sharded plane's slices always
        // agree with where the machines actually run.
        let host = self.placement.host_for(node, self.managers.len());
        self.node_to_host.insert(node, host.index());
        self.network.place(node, host);
        host.index()
    }

    fn boot_ground_stations(&mut self, config: &TestbedConfig) -> Result<()> {
        for (i, gst) in config.ground_stations.iter().enumerate() {
            let node = NodeId::ground_station(i as u32);
            let resources = gst.resources.clone();
            let host = self.host_for(node);
            let ready = self.managers[host].activate(node, &resources, SimInstant::EPOCH)?;
            self.managers[host].finish_boot(node, ready)?;
        }
        Ok(())
    }

    fn sample(&mut self, t: SimInstant) {
        for (i, manager) in self.managers.iter().enumerate() {
            let sample = manager.sample();
            self.host_cpu[i].record(t, sample.cpu * 100.0);
            self.host_memory[i].record(t, sample.memory * 100.0);
            self.host_processes[i].record(t, sample.firecracker_processes as f64);
        }
    }

    /// Applies one epoch's machine lifecycle and network programme to this
    /// tenant, returning the apply report when the plane is sharded.
    fn apply_epoch(
        &mut self,
        sim: &mut Simulation<(usize, Event)>,
        now: SimInstant,
        config: &TestbedConfig,
        to_activate: &[NodeId],
        suspended: &[NodeId],
        delta: &ProgrammeDelta,
        host_deltas: &[ProgrammeDelta],
    ) -> Result<Option<ShardApplyReport>> {
        // Machine lifecycle: boot newly active satellites, resume returning
        // ones, suspend those that left the bounding box. Ground stations
        // are booted during setup and never suspended.
        for node in to_activate {
            let resources = resources_for(config, *node);
            let host = self.host_for(*node);
            let ready = self.managers[host].activate(*node, &resources, now)?;
            if ready > now {
                sim.schedule_at(ready, (self.id.index(), Event::BootComplete(*node)));
            }
        }
        for node in suspended {
            let host = self.host_for(*node);
            if self.managers[host].has_machine(*node) {
                self.managers[host].suspend(*node)?;
            }
        }

        // Network programming: apply this tenant's change set. New pairs may
        // involve machines the placement has not seen yet; place them before
        // programming so compensation sees their hosts.
        let fresh_nodes: Vec<NodeId> = delta
            .added
            .iter()
            .flat_map(|pair| [pair.a, pair.b])
            .filter(|node| !self.node_to_host.contains_key(node))
            .collect();
        for node in fresh_nodes {
            self.host_for(node);
        }
        match &mut self.network {
            NetworkPlane::Global(network) => {
                network.apply_delta(delta);
                Ok(None)
            }
            NetworkPlane::Sharded(sharded) => {
                // Every host applies its own slice, in parallel — the
                // multi-host handover of the paper's architecture.
                Ok(Some(sharded.apply_delta_sharded(host_deltas)))
            }
        }
    }

    fn inject_fault(&mut self, sim: &mut Simulation<(usize, Event)>, fault: FaultEvent) {
        let host = self.host_for(fault.node);
        let applied = match fault.kind {
            // Degradation shrinks the CPU quota through the cgroup path;
            // the machine keeps running.
            FaultKind::Degradation { cpu_share_percent } => self.managers[host]
                .degrade(fault.node, cpu_share_percent)
                .map(|()| {
                    self.degraded.insert(fault.node);
                })
                .is_ok(),
            FaultKind::CrashAndReboot | FaultKind::PermanentFailure => {
                self.managers[host].fail(fault.node).is_ok()
            }
        };
        if applied {
            self.active_faults += 1;
            if let Some(recover_at) = fault.recover_at {
                sim.schedule_at(recover_at, (self.id.index(), Event::Recover(fault.node)));
            }
        } else {
            // A fault on a machine that cannot take it — already down inside
            // an earlier outage window, never created, or not running for a
            // degradation — is ignored and counted, and schedules no
            // recovery: the earlier window's recovery is already pending.
            self.ignored_faults += 1;
        }
    }

    fn recover(
        &mut self,
        sim: &mut Simulation<(usize, Event)>,
        config: &TestbedConfig,
        now: SimInstant,
        node: NodeId,
    ) -> Result<()> {
        self.active_faults = self.active_faults.saturating_sub(1);
        let host = self.host_for(node);
        if self.degraded.remove(&node) {
            // Degradation recovery: restore the full quota.
            if self.managers[host].restore(node).is_err() {
                self.failed_recoveries += 1;
            }
            return Ok(());
        }
        let resources = resources_for(config, node);
        match self.managers[host].activate(node, &resources, now) {
            Ok(ready) => {
                if ready > now {
                    sim.schedule_at(ready, (self.id.index(), Event::BootComplete(node)));
                }
            }
            // A failed post-fault reboot must not vanish: count it so
            // experiments can detect machines that never came back.
            Err(_) => self.failed_recoveries += 1,
        }
        Ok(())
    }

    fn apply_commands(
        &mut self,
        sim: &mut Simulation<(usize, Event)>,
        now: SimInstant,
        config: &TestbedConfig,
        commands: Vec<Command>,
    ) -> Result<()> {
        for command in commands {
            match command {
                Command::Send {
                    from,
                    to,
                    size_bytes,
                    payload,
                } => {
                    let host = self.host_for(from);
                    if !self.managers[host].is_running(from) {
                        self.messages_dropped += 1;
                        continue;
                    }
                    let packet = Packet::with_size_and_payload(from, to, size_bytes, payload);
                    let deliveries = self.network.send(&packet, now, &mut self.rng);
                    if deliveries.is_empty() {
                        self.messages_dropped += 1;
                    }
                    for (arrival, delivered) in deliveries {
                        sim.schedule_at(arrival, (self.id.index(), Event::Deliver(delivered)));
                    }
                }
                Command::SetTimer { delay, tag } => {
                    sim.schedule_at(now + delay, (self.id.index(), Event::AppTimer(tag)));
                }
                Command::SetCpuLoad { node, load } => {
                    let host = self.host_for(node);
                    self.managers[host].set_cpu_load(node, load);
                }
                Command::FailMachine { node } => {
                    let host = self.host_for(node);
                    self.managers[host]
                        .fail(node)
                        .map_err(|e| Error::Application(e.to_string()))?;
                }
                Command::RebootMachine { node } => {
                    let resources = resources_for(config, node);
                    let host = self.host_for(node);
                    let ready = self.managers[host].activate(node, &resources, now)?;
                    if ready > now {
                        sim.schedule_at(ready, (self.id.index(), Event::BootComplete(node)));
                    }
                }
            }
        }
        Ok(())
    }
}

fn resources_for(config: &TestbedConfig, node: NodeId) -> MachineResources {
    match node {
        NodeId::Satellite(sat) => config
            .shells
            .get(sat.shell.index())
            .map(|s| s.resources.clone())
            .unwrap_or_default(),
        NodeId::GroundStation(gst) => config
            .ground_stations
            .get(gst.index())
            .map(|g| g.resources.clone())
            .unwrap_or_default(),
    }
}

/// The assembled testbed.
pub struct Testbed {
    config: TestbedConfig,
    coordinator: Coordinator,
    tenants: Vec<TenantRuntime>,
    dns: DnsService,
    now: SimInstant,
    /// Total chaos events lowered from the chaos schedule (fault events plus
    /// link-flap windows); zero when chaos is disabled.
    chaos_events: u64,
    /// Whether a `[chaos]` section is configured (drives `/info` reporting).
    chaos_enabled: bool,
}

impl Testbed {
    /// Builds a testbed from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the configuration is invalid and
    /// propagates constellation construction failures.
    pub fn new(config: &TestbedConfig) -> Result<Self> {
        config.validate()?;
        let mut constellation = Constellation::builder()
            .shells(config.shells.iter().cloned())
            .ground_stations(config.ground_stations.iter().cloned())
            .bounding_box(config.bounding_box)
            .path_algorithm(config.path_algorithm)
            .build()?;

        // Lower the chaos schedule before the coordinator is built: the epoch
        // pipeline clones the constellation at construction, so the link-flap
        // mask must already be installed for the pipelined worker to see it.
        let mut chaos_faults: Vec<FaultEvent> = Vec::new();
        let mut chaos_events = 0u64;
        if let Some(chaos) = &config.chaos {
            let (faults, mask) = Self::schedule_chaos(config, chaos, &constellation)?;
            chaos_events = faults.len() as u64 + mask.windows().len() as u64;
            chaos_faults = faults;
            constellation.set_link_suppression(mask);
        }

        let dns = DnsService::new(
            config.shells.iter().map(|s| s.satellite_count()).collect(),
            config.ground_stations.iter().map(|g| g.name.clone()).collect(),
        );

        // One shard per host when the sharded plane is configured; the
        // coordinator partitions its programme with the same plan the
        // emulation places machines with, so each host's slice is complete.
        let shard_plan = config.shards.map(ShardPlan::new);
        // A [scenario] generates its own tenant fleet (scenario-0000..N,
        // mutually exclusive with [tenants] — enforced by validation);
        // otherwise the [tenants] fan-out or a solo tenant applies.
        let tenant_names: Vec<String> = if let Some(scenario) = &config.scenario {
            scenario.tenant_names()
        } else {
            config
                .tenants
                .as_ref()
                .map(|t| t.tenant_names())
                .unwrap_or_else(|| vec!["tenant-0".to_owned()])
        };
        let mut coordinator = Coordinator::with_scoped_fanout(
            constellation,
            SimDuration::from_secs_f64(config.update_interval_s),
            config.pipeline,
            shard_plan,
            tenant_names.clone(),
            config.paths.map(|p| p.scope_params()).unwrap_or_default(),
        );
        // With a `[serve]` section every update publishes an epoch snapshot
        // for the lock-free serving plane (see docs/SERVE.md).
        if config.serve.is_some() {
            coordinator.enable_snapshots();
        }

        // Every tenant runs the same chaos schedule against its own
        // machines, just as every tenant sees the same orbital mechanics.
        let tenants: Vec<TenantRuntime> = tenant_names
            .into_iter()
            .enumerate()
            .map(|(i, name)| {
                TenantRuntime::new(TenantId(i as u32), name, config, shard_plan, chaos_faults.clone())
            })
            .collect();

        Ok(Testbed {
            config: config.clone(),
            coordinator,
            tenants,
            dns,
            now: SimInstant::EPOCH,
            chaos_events,
            chaos_enabled: config.chaos.is_some(),
        })
    }

    /// Lowers the `[chaos]` configuration onto concrete fault events and a
    /// link-suppression mask.
    ///
    /// Every generator draws from its own `SimRng::derive("chaos.<g>")`
    /// stream seeded from the run seed, so the schedule is bit-reproducible
    /// and independent of everything else the testbed randomises. The
    /// horizon leaves two update intervals of slack before the experiment
    /// ends, which is what makes the post-recovery convergence guarantee of
    /// `docs/CHAOS.md` observable within the run.
    fn schedule_chaos(
        config: &TestbedConfig,
        chaos: &ChaosConfig,
        constellation: &Constellation,
    ) -> Result<(Vec<FaultEvent>, LinkSuppression)> {
        let engine = ChaosEngine {
            plane_outages: chaos.plane_outages,
            plane_outage_mean_s: chaos.plane_outage_mean_s,
            solar_storms: chaos.solar_storms,
            solar_storm_mean_s: chaos.solar_storm_mean_s,
            solar_storm_band_half_width_deg: chaos.solar_storm_band_half_width_deg,
            solar_storm_cpu_share_percent: chaos.solar_storm_cpu_share_percent,
            region_blackouts: chaos.region_blackouts,
            region_blackout_mean_s: chaos.region_blackout_mean_s,
            region_blackout_radius_km: chaos.region_blackout_radius_km,
            link_flap_storms: chaos.link_flap_storms,
            link_flap_mean_s: chaos.link_flap_mean_s,
            link_flap_period_s: chaos.link_flap_period_s,
        };
        let topology = ChaosTopology {
            shells: config
                .shells
                .iter()
                .map(|s| (s.walker.planes, s.walker.satellites_per_plane))
                .collect(),
            ground_stations: config
                .ground_stations
                .iter()
                .map(|g| (g.position.latitude_deg(), g.position.longitude_deg()))
                .collect(),
        };
        let horizon = (config.duration_s - 2.0 * config.update_interval_s).max(0.0);
        let windows = engine.generate(&topology, horizon, &SimRng::seed_from_u64(config.seed));

        let mut faults = Vec::new();
        let mut flaps = Vec::new();
        for window in &windows {
            let at = SimInstant::from_secs_f64(window.start_s);
            let recover_at = Some(SimInstant::from_secs_f64(window.end_s));
            match window.spec {
                ChaosSpec::PlaneOutage { shell, plane } => {
                    let per_plane = config.shells[shell as usize].walker.satellites_per_plane;
                    for idx in plane * per_plane..(plane + 1) * per_plane {
                        faults.push(FaultEvent {
                            node: NodeId::satellite(shell, idx),
                            at,
                            kind: FaultKind::CrashAndReboot,
                            recover_at,
                        });
                    }
                }
                ChaosSpec::SolarStorm { lat_min_deg, lat_max_deg, cpu_share_percent } => {
                    // Band membership against propagated positions at the
                    // window start — the storm hits the satellites actually
                    // crossing the band, not a static index range.
                    let state = constellation.state_at(window.start_s)?;
                    for (shell_idx, shell) in config.shells.iter().enumerate() {
                        for sat_idx in 0..shell.satellite_count() {
                            let node = NodeId::satellite(shell_idx as u16, sat_idx);
                            let lat = state.position(node)?.to_geodetic().latitude_deg();
                            if (lat_min_deg..=lat_max_deg).contains(&lat) {
                                faults.push(FaultEvent {
                                    node,
                                    at,
                                    kind: FaultKind::Degradation { cpu_share_percent },
                                    recover_at,
                                });
                            }
                        }
                    }
                }
                ChaosSpec::RegionBlackout { center_lat_deg, center_lon_deg, radius_km } => {
                    let center = celestial_types::geo::Geodetic::new(
                        center_lat_deg,
                        center_lon_deg,
                        0.0,
                    );
                    for (gst_idx, gst) in config.ground_stations.iter().enumerate() {
                        if center.great_circle_distance_km(&gst.position) <= radius_km {
                            faults.push(FaultEvent {
                                node: NodeId::ground_station(gst_idx as u32),
                                at,
                                kind: FaultKind::CrashAndReboot,
                                recover_at,
                            });
                        }
                    }
                }
                ChaosSpec::LinkFlap { period_s, down_fraction, salt } => {
                    flaps.push(FlapWindow {
                        start_s: window.start_s,
                        end_s: window.end_s,
                        period_s,
                        down_fraction,
                        salt,
                    });
                }
            }
        }
        faults.sort_by_key(|f| (f.at, f.node));
        Ok((faults, LinkSuppression::new(flaps)))
    }

    /// The configuration this testbed was built from.
    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    /// The emulated constellation.
    pub fn constellation(&self) -> &Constellation {
        self.coordinator.constellation()
    }

    /// The coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The epoch-snapshot store the serving plane reads from; `Some` exactly
    /// when the configuration has a `[serve]` section (see `docs/SERVE.md`).
    pub fn snapshot_store(&self) -> Option<&std::sync::Arc<crate::snapshot::SnapshotStore>> {
        self.coordinator.snapshot_store()
    }

    /// The DNS service.
    pub fn dns(&self) -> &DnsService {
        &self.dns
    }

    /// Number of tenants sharing this testbed's epoch pipeline (1 for a
    /// solo testbed; see `docs/TENANTS.md`).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// One tenant's runtime, by identifier.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn tenant(&self, tenant: TenantId) -> &TenantRuntime {
        &self.tenants[tenant.index()]
    }

    /// All tenant runtimes, indexed by [`TenantId`].
    pub fn tenants(&self) -> &[TenantRuntime] {
        &self.tenants
    }

    /// The machine managers of tenant 0, one per host.
    pub fn managers(&self) -> &[MachineManager] {
        &self.tenants[0].managers
    }

    /// Tenant 0's network plane: the single global rule table, or one shard
    /// per host when `shards = N` is configured (see `docs/SHARDING.md`).
    pub fn network(&self) -> &NetworkPlane {
        &self.tenants[0].network
    }

    /// Tenant 0's per-host CPU utilisation traces recorded during the run
    /// (percent).
    pub fn host_cpu_series(&self) -> &[TimeSeries] {
        &self.tenants[0].host_cpu
    }

    /// Tenant 0's per-host memory utilisation traces recorded during the
    /// run (percent).
    pub fn host_memory_series(&self) -> &[TimeSeries] {
        &self.tenants[0].host_memory
    }

    /// Tenant 0's per-host Firecracker process counts recorded during the
    /// run.
    pub fn host_process_series(&self) -> &[TimeSeries] {
        &self.tenants[0].host_processes
    }

    /// Counters of tenant 0's application messages `(delivered, dropped)`.
    pub fn message_counters(&self) -> (u64, u64) {
        self.tenants[0].message_counters()
    }

    /// Number of tenant 0's post-fault reboots that failed (the machine
    /// could not be re-activated when its recovery event fired). A healthy
    /// run reports zero; failures no longer vanish silently.
    pub fn failed_recoveries(&self) -> u64 {
        self.tenants[0].failed_recoveries
    }

    /// Number of tenant 0's injected faults that were ignored because the
    /// target machine could not take them — e.g. a second crash landing
    /// inside an earlier outage window, or a degradation of a machine that
    /// is not running. Mirrors
    /// [`failed_recoveries`](Self::failed_recoveries): nothing vanishes
    /// silently.
    pub fn ignored_faults(&self) -> u64 {
        self.tenants[0].ignored_faults
    }

    /// Total chaos events lowered from the `[chaos]` schedule (fault events
    /// plus link-flap windows); zero when chaos is disabled.
    pub fn chaos_events(&self) -> u64 {
        self.chaos_events
    }

    /// Number of tenant 0's injected fault windows currently in effect.
    pub fn active_faults(&self) -> u64 {
        self.tenants[0].active_faults
    }

    /// Schedules fault events (e.g. generated by
    /// [`celestial_machines::FaultInjector`]) to be injected into tenant 0
    /// during the run.
    pub fn schedule_faults(&mut self, faults: impl IntoIterator<Item = FaultEvent>) {
        self.tenants[0].scheduled_faults.extend(faults);
    }

    /// Schedules fault events to be injected into one tenant during the
    /// run; other tenants are unaffected (see `docs/TENANTS.md`).
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn schedule_faults_for(
        &mut self,
        tenant: TenantId,
        faults: impl IntoIterator<Item = FaultEvent>,
    ) {
        self.tenants[tenant.index()].scheduled_faults.extend(faults);
    }

    /// Runs a guest application for the configured experiment duration.
    ///
    /// The application runs as tenant 0; fleets run one application per
    /// tenant through [`run_fleet`](Self::run_fleet).
    ///
    /// # Errors
    ///
    /// Propagates constellation, machine and configuration errors, and
    /// rejects multi-tenant testbeds (which need one application per
    /// tenant).
    pub fn run(&mut self, app: &mut dyn GuestApplication) -> Result<()> {
        let mut apps: [&mut dyn GuestApplication; 1] = [app];
        self.run_fleet(&mut apps)
    }

    /// Runs one guest application per tenant for the configured experiment
    /// duration, interleaving all tenants over the shared epoch pipeline.
    ///
    /// `apps[i]` runs as tenant `i`. Tenants are isolated: each has its own
    /// machines, network, faults and RNG, so a tenant's observations are
    /// bit-identical whether it runs solo or inside a fleet (see
    /// `docs/TENANTS.md`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Application`] when the number of applications does
    /// not match the number of tenants, and propagates constellation,
    /// machine and configuration errors.
    pub fn run_fleet(&mut self, apps: &mut [&mut dyn GuestApplication]) -> Result<()> {
        if apps.len() != self.tenants.len() {
            return Err(Error::Application(format!(
                "the fleet has {} tenants but {} applications were supplied",
                self.tenants.len(),
                apps.len()
            )));
        }
        let end = SimInstant::from_secs_f64(self.config.duration_s);
        let mut sim: Simulation<(usize, Event)> = Simulation::new();

        // Setup: boot every ground-station machine so applications can start
        // immediately (the paper's experiments have a setup phase before the
        // measured window).
        for tenant in &mut self.tenants {
            tenant.boot_ground_stations(&self.config)?;
        }

        // First constellation update, then recurring events.
        self.apply_constellation_update(&mut sim, SimInstant::EPOCH)?;
        let interval = self.coordinator.update_interval();
        sim.schedule_at(SimInstant::EPOCH + interval, (0, Event::ConstellationUpdate));
        for i in 0..self.tenants.len() {
            sim.schedule_at(SimInstant::EPOCH, (i, Event::UtilizationSample));
        }
        for i in 0..self.tenants.len() {
            for fault in std::mem::take(&mut self.tenants[i].scheduled_faults) {
                sim.schedule_at(fault.at, (i, Event::Fault(fault)));
            }
        }

        for (i, app) in apps.iter_mut().enumerate() {
            self.run_app_callback(&mut sim, SimInstant::EPOCH, i, &mut **app, AppCall::Start)?;
        }

        while let Some((t, (i, event))) = sim.step() {
            if t > end {
                break;
            }
            self.now = t;
            match event {
                Event::ConstellationUpdate => {
                    self.apply_constellation_update(&mut sim, t)?;
                    sim.schedule_at(t + interval, (0, Event::ConstellationUpdate));
                    for (j, app) in apps.iter_mut().enumerate() {
                        self.run_app_callback(
                            &mut sim,
                            t,
                            j,
                            &mut **app,
                            AppCall::ConstellationUpdate,
                        )?;
                    }
                }
                Event::UtilizationSample => {
                    self.tenants[i].sample(t);
                    sim.schedule_at(
                        t + SimDuration::from_secs_f64(self.config.utilization_sample_interval_s),
                        (i, Event::UtilizationSample),
                    );
                }
                Event::BootComplete(node) => {
                    let tenant = &mut self.tenants[i];
                    let host = tenant.host_for(node);
                    tenant.managers[host].finish_boot(node, t)?;
                }
                Event::AppTimer(tag) => {
                    self.run_app_callback(&mut sim, t, i, &mut *apps[i], AppCall::Timer(tag))?;
                }
                Event::Deliver(packet) => {
                    let tenant = &mut self.tenants[i];
                    let host = tenant.host_for(packet.destination);
                    if tenant.managers[host].is_running(packet.destination) {
                        tenant.messages_delivered += 1;
                        self.run_app_callback(
                            &mut sim,
                            t,
                            i,
                            &mut *apps[i],
                            AppCall::Message(packet),
                        )?;
                    } else {
                        tenant.messages_dropped += 1;
                    }
                }
                Event::Fault(fault) => {
                    self.tenants[i].inject_fault(&mut sim, fault);
                }
                Event::Recover(node) => {
                    self.tenants[i].recover(&mut sim, &self.config, t, node)?;
                }
            }
        }
        self.now = end;
        Ok(())
    }

    fn apply_constellation_update(
        &mut self,
        sim: &mut Simulation<(usize, Event)>,
        now: SimInstant,
    ) -> Result<()> {
        let diff = self.coordinator.update(now.as_secs_f64())?;

        if self.chaos_enabled {
            // Surface the chaos counters on `/info` at every epoch boundary:
            // the static schedule size, the fault windows currently in
            // effect, and how many links this epoch's flap mask removed.
            let suppressed = self
                .coordinator
                .database()
                .state()
                .map_or(0, |s| s.suppressed_link_count() as u64);
            self.coordinator.record_chaos(
                self.chaos_events,
                self.tenants[0].active_faults,
                suppressed,
            );
        }

        // The orbital diff is shared: every tenant boots and suspends the
        // same machines, then applies its own programme change set.
        let mut to_activate: Vec<NodeId> = Vec::new();
        for (node, activity) in &diff.machines_added {
            if *activity == celestial_constellation::snapshot::MachineActivity::Active {
                to_activate.push(*node);
            }
        }
        to_activate.extend(diff.activated.iter().copied());

        for i in 0..self.tenants.len() {
            let tenant = TenantId(i as u32);
            let report = self.tenants[i].apply_epoch(
                sim,
                now,
                &self.config,
                &to_activate,
                &diff.suspended,
                self.coordinator.programme_delta_for(tenant),
                self.coordinator.host_deltas_for(tenant),
            )?;
            // The `/info` shard-apply report tracks tenant 0, keeping solo
            // reporting bit-identical to a pre-tenancy run.
            if i == 0 {
                if let Some(report) = report {
                    self.coordinator.record_shard_apply(&report);
                }
            }
        }
        Ok(())
    }

    fn run_app_callback(
        &mut self,
        sim: &mut Simulation<(usize, Event)>,
        now: SimInstant,
        index: usize,
        app: &mut dyn GuestApplication,
        call: AppCall,
    ) -> Result<()> {
        let tenant = &mut self.tenants[index];
        let mut ctx = AppContext {
            now,
            tenant: tenant.id,
            database: self.coordinator.database(),
            dns: &self.dns,
            managers: &tenant.managers,
            node_to_host: &tenant.node_to_host,
            network: &tenant.network,
            rng: &mut tenant.rng,
            commands: Vec::new(),
        };
        match call {
            AppCall::Start => app.on_start(&mut ctx),
            AppCall::ConstellationUpdate => app.on_constellation_update(&mut ctx),
            AppCall::Timer(tag) => app.on_timer(tag, &mut ctx),
            AppCall::Message(packet) => app.on_message(&packet, &mut ctx),
        }
        let commands = ctx.commands;
        self.tenants[index].apply_commands(sim, now, &self.config, commands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_constellation::{BoundingBox, GroundStation, Shell};
    use celestial_sgp4::WalkerShell;
    use celestial_types::geo::Geodetic;

    fn west_africa_config(duration_s: f64) -> TestbedConfig {
        TestbedConfig::builder()
            .seed(1)
            .update_interval_s(2.0)
            .duration_s(duration_s)
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 24, 22)))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap()
    }

    /// A ping-pong application between the two configured ground stations.
    #[derive(Default)]
    struct PingPong {
        accra: Option<NodeId>,
        abuja: Option<NodeId>,
        rtts_ms: Vec<f64>,
        sent_at: BTreeMap<u64, SimInstant>,
        next_seq: u64,
    }

    impl PingPong {
        fn send_ping(&mut self, ctx: &mut AppContext<'_>) {
            let (Some(a), Some(b)) = (self.accra, self.abuja) else { return };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.sent_at.insert(seq, ctx.now());
            ctx.send(a, b, 1_250, seq.to_le_bytes().to_vec());
        }
    }

    impl GuestApplication for PingPong {
        fn on_start(&mut self, ctx: &mut AppContext<'_>) {
            self.accra = ctx.ground_station("accra");
            self.abuja = ctx.ground_station("abuja");
            assert!(ctx.is_running(self.accra.unwrap()));
            self.send_ping(ctx);
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }

        fn on_timer(&mut self, _tag: u64, ctx: &mut AppContext<'_>) {
            self.send_ping(ctx);
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }

        fn on_message(&mut self, message: &Packet, ctx: &mut AppContext<'_>) {
            let seq = u64::from_le_bytes(message.payload[..8].try_into().unwrap());
            if message.destination == self.abuja.unwrap() {
                // Bounce the ping straight back.
                ctx.send(self.abuja.unwrap(), self.accra.unwrap(), 1_250, message.payload.to_vec());
            } else if let Some(sent) = self.sent_at.remove(&seq) {
                self.rtts_ms.push(ctx.now().duration_since(sent).as_millis_f64());
            }
        }
    }

    #[test]
    fn ping_pong_round_trips_match_the_emulated_network() {
        let config = west_africa_config(30.0);
        let mut testbed = Testbed::new(&config).unwrap();
        let mut app = PingPong::default();
        testbed.run(&mut app).unwrap();
        // One ping per second for 30 seconds; most should complete.
        assert!(app.rtts_ms.len() >= 20, "only {} RTTs", app.rtts_ms.len());
        for rtt in &app.rtts_ms {
            // Accra–Abuja over 550 km satellites: a few ms each way, never
            // more than a few tens of milliseconds, never below ~2 ms.
            assert!(*rtt >= 2.0 && *rtt <= 80.0, "rtt {rtt}");
        }
        let (delivered, _) = testbed.message_counters();
        assert!(delivered >= 40);
    }

    #[test]
    fn utilization_traces_are_recorded() {
        let config = west_africa_config(10.0);
        let mut testbed = Testbed::new(&config).unwrap();
        let mut app = PingPong::default();
        testbed.run(&mut app).unwrap();
        assert_eq!(testbed.host_cpu_series().len(), 3);
        for series in testbed.host_cpu_series() {
            assert!(series.len() >= 10);
        }
        // At least one host runs satellites of the bounding box.
        let max_processes: f64 = testbed
            .host_process_series()
            .iter()
            .flat_map(|s| s.values())
            .fold(0.0, f64::max);
        assert!(max_processes >= 1.0);
    }

    #[test]
    fn bounding_box_suspends_and_resumes_machines_over_time() {
        let config = west_africa_config(120.0);
        let mut testbed = Testbed::new(&config).unwrap();
        struct Nop;
        impl GuestApplication for Nop {}
        testbed.run(&mut Nop).unwrap();
        // Some machines must have been created for satellites.
        let total_machines: usize = testbed.managers().iter().map(|m| m.host().machine_count()).sum();
        assert!(total_machines > 2, "machines {total_machines}");
        // Process counts change over time as satellites enter and leave.
        let any_change = testbed.host_process_series().iter().any(|s| {
            let values = s.values();
            values.iter().any(|v| *v != values[0])
        });
        assert!(any_change);
    }

    #[test]
    fn fault_injection_crashes_and_recovers_machines() {
        let config = west_africa_config(20.0);
        let mut testbed = Testbed::new(&config).unwrap();
        let accra = NodeId::ground_station(0);
        testbed.schedule_faults([FaultEvent {
            node: accra,
            at: SimInstant::from_secs_f64(5.0),
            kind: celestial_machines::FaultKind::CrashAndReboot,
            recover_at: Some(SimInstant::from_secs_f64(10.0)),
        }]);
        let mut app = PingPong::default();
        testbed.run(&mut app).unwrap();
        // The experiment still completes and produces RTTs despite the crash.
        assert!(!app.rtts_ms.is_empty());
        let (_, dropped) = testbed.message_counters();
        assert!(dropped > 0, "messages to the crashed machine should drop");
        // The machine recovered before the end of the run, and no recovery
        // attempt failed silently.
        let host = testbed
            .managers()
            .iter()
            .find(|m| m.has_machine(accra))
            .unwrap();
        assert!(host.is_running(accra));
        assert_eq!(testbed.failed_recoveries(), 0);
    }

    #[test]
    fn degradation_throttles_instead_of_crashing() {
        let config = west_africa_config(20.0);
        let mut testbed = Testbed::new(&config).unwrap();
        let accra = NodeId::ground_station(0);
        // No recovery: the reduced quota must still be in force at the end.
        testbed.schedule_faults([FaultEvent {
            node: accra,
            at: SimInstant::from_secs_f64(5.0),
            kind: celestial_machines::FaultKind::Degradation { cpu_share_percent: 25 },
            recover_at: None,
        }]);
        let mut app = PingPong::default();
        testbed.run(&mut app).unwrap();
        let host = testbed
            .managers()
            .iter()
            .find(|m| m.has_machine(accra))
            .unwrap();
        // The machine was throttled, not killed: it keeps running, keeps
        // answering pings, and no message is dropped.
        assert!(host.is_running(accra));
        assert!((host.cpu_share(accra).unwrap() - 0.25).abs() < 1e-9);
        assert!(!app.rtts_ms.is_empty());
        let (_, dropped) = testbed.message_counters();
        assert_eq!(dropped, 0, "degradation must not drop traffic");
        assert_eq!(testbed.ignored_faults(), 0);
    }

    #[test]
    fn degradation_recovery_restores_the_full_quota() {
        let config = west_africa_config(20.0);
        let mut testbed = Testbed::new(&config).unwrap();
        let accra = NodeId::ground_station(0);
        testbed.schedule_faults([FaultEvent {
            node: accra,
            at: SimInstant::from_secs_f64(5.0),
            kind: celestial_machines::FaultKind::Degradation { cpu_share_percent: 25 },
            recover_at: Some(SimInstant::from_secs_f64(10.0)),
        }]);
        let mut app = PingPong::default();
        testbed.run(&mut app).unwrap();
        let host = testbed
            .managers()
            .iter()
            .find(|m| m.has_machine(accra))
            .unwrap();
        assert!(host.is_running(accra));
        assert!((host.cpu_share(accra).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(testbed.failed_recoveries(), 0);
    }

    #[test]
    fn faults_on_downed_machines_are_ignored_and_counted() {
        let config = west_africa_config(30.0);
        let mut testbed = Testbed::new(&config).unwrap();
        let accra = NodeId::ground_station(0);
        testbed.schedule_faults([
            FaultEvent {
                node: accra,
                at: SimInstant::from_secs_f64(5.0),
                kind: celestial_machines::FaultKind::CrashAndReboot,
                recover_at: Some(SimInstant::from_secs_f64(15.0)),
            },
            // Strikes while the machine is already down: ignored, and its
            // recovery must not be scheduled (the machine stays down until
            // the first fault's recovery at t=15).
            FaultEvent {
                node: accra,
                at: SimInstant::from_secs_f64(8.0),
                kind: celestial_machines::FaultKind::CrashAndReboot,
                recover_at: Some(SimInstant::from_secs_f64(9.0)),
            },
            // A degradation on a downed machine is equally ignored.
            FaultEvent {
                node: accra,
                at: SimInstant::from_secs_f64(10.0),
                kind: celestial_machines::FaultKind::Degradation { cpu_share_percent: 50 },
                recover_at: Some(SimInstant::from_secs_f64(12.0)),
            },
        ]);
        let mut app = PingPong::default();
        testbed.run(&mut app).unwrap();
        assert_eq!(testbed.ignored_faults(), 2);
        let host = testbed
            .managers()
            .iter()
            .find(|m| m.has_machine(accra))
            .unwrap();
        assert!(host.is_running(accra));
        // The ignored degradation left no residual quota once the machine
        // rebooted.
        assert!((host.cpu_share(accra).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(testbed.failed_recoveries(), 0);
    }

    #[test]
    fn chaos_section_schedules_faults_and_reports_counters() {
        let mut config = west_africa_config(40.0);
        config.chaos = Some(crate::config::ChaosConfig::default());
        let mut testbed = Testbed::new(&config).unwrap();
        assert!(testbed.chaos_events() > 0);
        let mut app = PingPong::default();
        testbed.run(&mut app).unwrap();
        let report = testbed
            .coordinator()
            .database()
            .chaos_report()
            .expect("chaos runs must publish a chaos report");
        assert_eq!(report.events, testbed.chaos_events());
        // Deterministic: the same seed schedules the same chaos.
        let twin = Testbed::new(&config).unwrap();
        assert_eq!(twin.chaos_events(), testbed.chaos_events());
    }

    #[test]
    fn chaos_free_runs_publish_no_chaos_report() {
        let config = west_africa_config(10.0);
        let mut testbed = Testbed::new(&config).unwrap();
        let mut app = PingPong::default();
        testbed.run(&mut app).unwrap();
        assert!(testbed.coordinator().database().chaos_report().is_none());
        assert_eq!(testbed.chaos_events(), 0);
    }

    #[test]
    fn a_fleet_runs_every_tenant_identically_to_a_solo_run() {
        let solo_config = west_africa_config(20.0);
        let mut solo = Testbed::new(&solo_config).unwrap();
        let mut solo_app = PingPong::default();
        solo.run(&mut solo_app).unwrap();

        let mut fleet_config = west_africa_config(20.0);
        fleet_config.tenants = Some(crate::config::TenantsConfig {
            count: 3,
            names: Vec::new(),
        });
        let mut fleet = Testbed::new(&fleet_config).unwrap();
        assert_eq!(fleet.tenant_count(), 3);
        let mut apps = [PingPong::default(), PingPong::default(), PingPong::default()];
        {
            let mut refs: Vec<&mut dyn GuestApplication> = apps
                .iter_mut()
                .map(|a| a as &mut dyn GuestApplication)
                .collect();
            fleet.run_fleet(&mut refs).unwrap();
        }
        for (i, app) in apps.iter().enumerate() {
            assert_eq!(
                app.rtts_ms, solo_app.rtts_ms,
                "tenant {i} diverged from the solo run"
            );
            let tenant = fleet.tenant(TenantId(i as u32));
            assert_eq!(tenant.message_counters(), solo.message_counters());
            assert_eq!(tenant.failed_recoveries(), 0);
            assert_eq!(tenant.name(), format!("tenant-{i}"));
        }
    }

    #[test]
    fn fleet_faults_stay_with_their_tenant() {
        let mut config = west_africa_config(20.0);
        config.tenants = Some(crate::config::TenantsConfig {
            count: 2,
            names: vec!["victim".to_owned(), "bystander".to_owned()],
        });
        let mut testbed = Testbed::new(&config).unwrap();
        let accra = NodeId::ground_station(0);
        testbed.schedule_faults_for(
            TenantId(0),
            [FaultEvent {
                node: accra,
                at: SimInstant::from_secs_f64(5.0),
                kind: celestial_machines::FaultKind::CrashAndReboot,
                recover_at: Some(SimInstant::from_secs_f64(10.0)),
            }],
        );
        let mut victim = PingPong::default();
        let mut bystander = PingPong::default();
        {
            let mut refs: Vec<&mut dyn GuestApplication> = vec![&mut victim, &mut bystander];
            testbed.run_fleet(&mut refs).unwrap();
        }
        let (_, victim_dropped) = testbed.tenant(TenantId(0)).message_counters();
        let (_, bystander_dropped) = testbed.tenant(TenantId(1)).message_counters();
        assert!(victim_dropped > 0, "the victim's crash must drop messages");
        assert_eq!(bystander_dropped, 0, "the bystander must be unaffected");
        assert_eq!(testbed.tenant(TenantId(0)).name(), "victim");
        assert_eq!(testbed.tenant(TenantId(1)).name(), "bystander");
    }

    #[test]
    fn run_fleet_rejects_a_mismatched_application_count() {
        let mut config = west_africa_config(10.0);
        config.tenants = Some(crate::config::TenantsConfig { count: 2, names: Vec::new() });
        let mut testbed = Testbed::new(&config).unwrap();
        let mut app = PingPong::default();
        let mut refs: Vec<&mut dyn GuestApplication> = vec![&mut app];
        let err = testbed.run_fleet(&mut refs).unwrap_err();
        assert!(err.to_string().contains("2 tenants"), "{err}");
    }
}
