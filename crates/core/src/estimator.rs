//! Resource estimation and cloud cost model.
//!
//! Celestial helps users size their host fleet: given the satellite density,
//! the per-microVM resources and the bounding box, it estimates how many CPU
//! cores and how much memory the emulation needs (§3.3 — the §4 experiment is
//! estimated at 137 cores). The cost model reproduces the paper's comparison
//! between running a Celestial emulation on a handful of cloud hosts and
//! naively renting one cloud VM per satellite server (§4.2).

use crate::config::TestbedConfig;
use serde::{Deserialize, Serialize};

/// The estimated resource demand of an emulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ResourceEstimate {
    /// Expected number of satellite microVMs active at any one time (inside
    /// the bounding box).
    pub expected_active_satellites: f64,
    /// Ground-station microVMs (always active).
    pub ground_stations: usize,
    /// Estimated vCPUs required for all active machines.
    pub required_vcpus: f64,
    /// Estimated memory required in MiB. Satellites outside the bounding box
    /// still hold memory once booted, so this uses the total satellite count.
    pub required_memory_mib: f64,
    /// Recommended number of hosts of the configured size.
    pub recommended_hosts: u32,
}

/// The resource estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceEstimator;

impl ResourceEstimator {
    /// Estimates the resource demand of the given configuration.
    pub fn estimate(config: &TestbedConfig) -> ResourceEstimate {
        let area_fraction = config.bounding_box.area_fraction();
        let mut active_sats = 0.0;
        let mut vcpus = 0.0;
        let mut memory = 0.0;
        for shell in &config.shells {
            let total = f64::from(shell.satellite_count());
            let active = total * area_fraction;
            active_sats += active;
            vcpus += active * f64::from(shell.resources.vcpus);
            // Memory is held by every satellite that has booted at least
            // once; be conservative and assume satellites pass through the
            // box over time, bounded by the total.
            let booted = (active * 3.0).min(total);
            memory += booted * shell.resources.memory_mib as f64;
        }
        for gst in &config.ground_stations {
            vcpus += f64::from(gst.resources.vcpus);
            memory += gst.resources.memory_mib as f64;
        }

        let host = config.hosts.first().copied().unwrap_or_default();
        let by_cpu = (vcpus / f64::from(host.cores)).ceil();
        let by_memory = (memory / host.memory_mib as f64).ceil();
        let recommended_hosts = by_cpu.max(by_memory).max(1.0) as u32;

        ResourceEstimate {
            expected_active_satellites: active_sats,
            ground_stations: config.ground_stations.len(),
            required_vcpus: vcpus,
            required_memory_mib: memory,
            recommended_hosts,
        }
    }

    /// Whether the configured host fleet can be expected to satisfy the
    /// estimate, allowing CPU over-provisioning by `overprovision_factor`
    /// (the paper runs an estimated 137 cores on 96, a factor of ~1.4).
    pub fn fleet_sufficient(
        config: &TestbedConfig,
        estimate: &ResourceEstimate,
        overprovision_factor: f64,
    ) -> bool {
        let cores: f64 = config.hosts.iter().map(|h| f64::from(h.cores)).sum();
        let memory: f64 = config.hosts.iter().map(|h| h.memory_mib as f64).sum();
        // Guest memory is backed lazily by Firecracker; compare the resident
        // share of the allocation (see `FirecrackerModel::resident_fraction`)
        // against the physical memory.
        let resident_memory = estimate.required_memory_mib * 0.25;
        estimate.required_vcpus <= cores * overprovision_factor && resident_memory <= memory
    }
}

/// Hourly prices of the machine types involved in the cost comparison, in US
/// dollars. Defaults approximate GCP on-demand pricing at the time of the
/// paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Hourly price of one Celestial host (N2-highcpu-32 in the paper).
    pub host_hourly_usd: f64,
    /// Hourly price of the coordinator machine (C2 with 16 cores).
    pub coordinator_hourly_usd: f64,
    /// Hourly price of the smallest cloud VM able to stand in for one
    /// satellite server in the naive one-VM-per-satellite deployment.
    pub per_satellite_vm_hourly_usd: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            host_hourly_usd: 1.15,
            coordinator_hourly_usd: 0.84,
            per_satellite_vm_hourly_usd: 0.489,
        }
    }
}

impl CostModel {
    /// The cost of running a Celestial emulation with `host_count` hosts plus
    /// one coordinator for `minutes` minutes.
    pub fn emulation_cost_usd(&self, host_count: u32, minutes: f64) -> f64 {
        let hours = minutes / 60.0;
        (f64::from(host_count) * self.host_hourly_usd + self.coordinator_hourly_usd) * hours
    }

    /// The cost of the naive alternative: one cloud VM per satellite server
    /// for `minutes` minutes.
    pub fn per_satellite_cost_usd(&self, satellite_count: u32, minutes: f64) -> f64 {
        let hours = minutes / 60.0;
        f64::from(satellite_count) * self.per_satellite_vm_hourly_usd * hours
    }

    /// The cost-saving factor of emulation over one-VM-per-satellite for the
    /// same duration.
    pub fn saving_factor(&self, host_count: u32, satellite_count: u32, minutes: f64) -> f64 {
        self.per_satellite_cost_usd(satellite_count, minutes)
            / self.emulation_cost_usd(host_count, minutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HostConfig;
    use celestial_constellation::{BoundingBox, GroundStation, Shell};
    use celestial_sgp4::WalkerShell;
    use celestial_types::geo::Geodetic;
    use celestial_types::MachineResources;

    fn paper_config() -> TestbedConfig {
        TestbedConfig::builder()
            .shells(WalkerShell::starlink_phase1().into_iter().map(Shell::from_walker))
            .ground_station(
                GroundStation::new("accra", Geodetic::new(5.6, -0.19, 0.0))
                    .with_resources(MachineResources::paper_client()),
            )
            .ground_station(
                GroundStation::new("abuja", Geodetic::new(9.08, 7.4, 0.0))
                    .with_resources(MachineResources::paper_client()),
            )
            .ground_station(
                GroundStation::new("yaounde", Geodetic::new(3.85, 11.5, 0.0))
                    .with_resources(MachineResources::paper_client()),
            )
            .ground_station(
                GroundStation::new("johannesburg-dc", Geodetic::new(-26.2, 28.05, 0.0))
                    .with_resources(MachineResources::paper_client()),
            )
            .bounding_box(BoundingBox::west_africa())
            .hosts(vec![HostConfig::default(); 3])
            .build()
            .unwrap()
    }

    #[test]
    fn estimate_for_the_paper_scenario_is_in_the_right_range() {
        let config = paper_config();
        let estimate = ResourceEstimator::estimate(&config);
        // The paper reports an estimate of 137 cores for this bounding box
        // over the full phase-I constellation.
        assert!(
            estimate.required_vcpus > 60.0 && estimate.required_vcpus < 250.0,
            "estimated {} vcpus",
            estimate.required_vcpus
        );
        assert!(estimate.expected_active_satellites > 20.0);
        assert_eq!(estimate.ground_stations, 4);
        assert!(estimate.recommended_hosts >= 2);
    }

    #[test]
    fn overprovisioning_allows_a_smaller_fleet() {
        let config = paper_config();
        let estimate = ResourceEstimator::estimate(&config);
        // Without over-provisioning, 96 cores may not be enough; with the
        // paper's ~1.5x over-provisioning they are.
        assert!(ResourceEstimator::fleet_sufficient(&config, &estimate, 2.0));
    }

    #[test]
    fn larger_bounding_boxes_need_more_resources() {
        let small = paper_config();
        let mut big = small.clone();
        big.bounding_box = BoundingBox::whole_earth();
        let e_small = ResourceEstimator::estimate(&small);
        let e_big = ResourceEstimator::estimate(&big);
        assert!(e_big.required_vcpus > e_small.required_vcpus);
        assert!(e_big.recommended_hosts >= e_small.recommended_hosts);
    }

    #[test]
    fn cost_comparison_matches_the_paper_shape() {
        let model = CostModel::default();
        // Three hosts + coordinator for a 10-minute experiment with 5 minutes
        // of setup, repeated three times: 45 minutes of fleet time.
        let emulation = model.emulation_cost_usd(3, 45.0);
        assert!((emulation - 3.30).abs() < 0.4, "emulation cost {emulation}");
        // 4,409 single-satellite VMs for 15 minutes.
        let naive = model.per_satellite_cost_usd(4409, 15.0);
        assert!((naive - 539.0).abs() < 20.0, "naive cost {naive}");
        // Two orders of magnitude saving.
        assert!(model.saving_factor(3, 4409, 15.0) > 100.0);
    }
}
