//! The Celestial configuration file.
//!
//! All parameters of a testbed run are passed in a single file (§3.1): the
//! orbital parameters of every shell, network bandwidths, machine resources,
//! ground stations, the bounding box, the update interval and the host fleet.
//! This module defines the strongly typed configuration and its construction
//! from the TOML subset parsed by [`crate::toml`], plus a builder API for
//! constructing configurations programmatically.

use crate::pipeline::PipelineMode;
use crate::toml::{self, TableExt, TomlTable};
use celestial_constellation::{BoundingBox, GroundStation, PathAlgorithm, ScopeParams, Shell};
use celestial_sgp4::WalkerShell;
use celestial_types::constants::DEFAULT_MIN_ELEVATION_DEG;
use celestial_types::geo::Geodetic;
use celestial_types::{Bandwidth, Error, MachineResources, Result};
use serde::{Deserialize, Serialize};

/// Configuration of one Celestial host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Number of physical CPU cores of the host.
    pub cores: u32,
    /// Memory of the host in MiB.
    pub memory_mib: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        // The GCP N2-highcpu-32 instances used in the paper's evaluation.
        HostConfig {
            cores: 32,
            memory_mib: 32 * 1024,
        }
    }
}

/// The complete configuration of a testbed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Seed for all randomised behaviour; fixing it makes runs repeatable.
    pub seed: u64,
    /// Interval at which the coordinator recomputes the constellation, in
    /// seconds (the paper uses 2 s in §4 and 5 s in §5).
    pub update_interval_s: f64,
    /// Total experiment duration in seconds.
    pub duration_s: f64,
    /// Interval at which host utilisation is sampled, in seconds.
    pub utilization_sample_interval_s: f64,
    /// The constellation shells.
    pub shells: Vec<Shell>,
    /// The ground stations.
    pub ground_stations: Vec<GroundStation>,
    /// The bounding box limiting which satellites are emulated.
    pub bounding_box: BoundingBox,
    /// The shortest-path algorithm used for all-pairs computations.
    pub path_algorithm: PathAlgorithm,
    /// How the coordinator schedules epoch computation: inline at each
    /// boundary, or precomputed on a background worker (see
    /// `docs/PIPELINE.md`).
    pub pipeline: PipelineMode,
    /// When set, the network programme is sharded per host: the coordinator
    /// partitions every update into one per-host change set and the
    /// emulation applies all shards in parallel, exactly one shard per host
    /// (so the value must equal the host count; see `docs/SHARDING.md`).
    /// `None` keeps the classic single global rule table.
    pub shards: Option<u32>,
    /// Default one-way latency between hosts in microseconds (the measured
    /// WireGuard overlay latency the compensation subtracts). `None` keeps
    /// the paper's 0.2 ms figure.
    pub host_latency_us: Option<u64>,
    /// The hosts the testbed runs on.
    pub hosts: Vec<HostConfig>,
    /// Whether suspended microVMs return their memory (virtio ballooning).
    pub ballooning: bool,
    /// Correlated chaos injection (`[chaos]` in TOML). `None` disables the
    /// chaos engine entirely (see `docs/CHAOS.md`).
    pub chaos: Option<ChaosConfig>,
    /// The HTTP serving plane (`[serve]` in TOML). `None` disables the
    /// server and snapshot publication entirely (see `docs/SERVE.md`).
    pub serve: Option<ServeConfig>,
    /// Multi-tenant fan-out (`[tenants]` or `[[tenant]]` in TOML): several
    /// independent testbeds share one epoch pipeline. `None` runs a single
    /// tenant, bit-identical to a pre-tenancy testbed (see
    /// `docs/TENANTS.md`).
    pub tenants: Option<TenantsConfig>,
    /// Scale-aware path-solve tuning (`[paths]` in TOML). `None` uses the
    /// defaults; the scoped solve is exact on every programmed row for any
    /// parameter choice, so this tunes cost, never results (see
    /// `docs/MEGASCALE.md`).
    pub paths: Option<PathsConfig>,
    /// Generated tenant fleet (`[scenario]` plus `[[scenario.block]]` in
    /// TOML): composable workload blocks expanded into N generated tenants
    /// riding the multi-tenant fan-out, with populations aggregated at flow
    /// level. Mutually exclusive with `[tenants]` (see `docs/SCENARIOS.md`).
    pub scenario: Option<ScenarioConfig>,
}

/// The `[paths]` section: parameters of the scale-aware solve scope (see
/// `docs/MEGASCALE.md`). All three knobs trade solve work against the
/// one-shot fallback rate of out-of-scope `/path` queries — the programmed
/// rules are bit-identical for every setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathsConfig {
    /// Degrees the bounding box is expanded by to form the solve scope
    /// (`scope-margin-deg`). Satellites inside the margin get solved rows so
    /// they answer `/path` queries without a fallback shortly before they
    /// activate.
    pub scope_margin_deg: f64,
    /// Number of nearest satellites solved per ground station (`k-nearest`),
    /// covering uplink neighbourhoods outside the margin.
    pub k_nearest: u32,
    /// Number of fully solved landmark rows kept for the ALT-accelerated
    /// one-shot fallback (`landmarks`).
    pub landmarks: u32,
}

impl Default for PathsConfig {
    fn default() -> Self {
        PathsConfig {
            scope_margin_deg: 10.0,
            k_nearest: 16,
            landmarks: 8,
        }
    }
}

impl PathsConfig {
    /// Validates the solve-scope parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for a negative or non-finite margin.
    pub fn validate(&self) -> Result<()> {
        if !(self.scope_margin_deg >= 0.0 && self.scope_margin_deg.is_finite()) {
            return Err(Error::config(format!(
                "paths scope-margin-deg must be non-negative and finite, got {} \
                 (see docs/MEGASCALE.md)",
                self.scope_margin_deg
            )));
        }
        Ok(())
    }

    /// The engine-facing parameter set this configuration selects.
    pub fn scope_params(&self) -> ScopeParams {
        ScopeParams {
            margin_deg: self.scope_margin_deg,
            k_nearest: self.k_nearest as usize,
            landmarks: self.landmarks as usize,
        }
    }
}

/// The `[tenants]` section: how many independent tenants share the epoch
/// pipeline, and what they are called (see `docs/TENANTS.md`).
///
/// A tenant is a full testbed — machines, network emulation, faults,
/// journal — that borrows the shared orbital state and path matrix instead
/// of recomputing them. Tenants can alternatively be declared one by one as
/// top-level `[[tenant]]` blocks carrying a `name` key; the two forms are
/// mutually exclusive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantsConfig {
    /// Number of tenants sharing the pipeline (`count`).
    pub count: u32,
    /// Explicit tenant names (`names`). Empty derives `tenant-0` through
    /// `tenant-{count-1}`; non-empty lists must have exactly `count`
    /// entries, unique and non-empty.
    pub names: Vec<String>,
}

impl Default for TenantsConfig {
    fn default() -> Self {
        TenantsConfig {
            count: 1,
            names: Vec::new(),
        }
    }
}

impl TenantsConfig {
    /// The effective tenant names, indexed by tenant id: the explicit
    /// `names` list, or `tenant-0..tenant-{count-1}` when it is empty.
    pub fn tenant_names(&self) -> Vec<String> {
        if self.names.is_empty() {
            (0..self.count).map(|i| format!("tenant-{i}")).collect()
        } else {
            self.names.clone()
        }
    }

    /// Validates the tenant fan-out parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for a zero or oversized count, a name list
    /// whose length disagrees with `count`, or duplicate/empty names.
    pub fn validate(&self) -> Result<()> {
        if self.count < 1 {
            return Err(Error::config(
                "tenants count must be at least 1 (see docs/TENANTS.md)",
            ));
        }
        if self.count > 4096 {
            return Err(Error::config(format!(
                "tenants count must be at most 4096, got {} (see docs/TENANTS.md)",
                self.count
            )));
        }
        if !self.names.is_empty() && self.names.len() != self.count as usize {
            return Err(Error::config(format!(
                "tenants lists {} names but count = {}; name every tenant or none \
                 (see docs/TENANTS.md)",
                self.names.len(),
                self.count
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for name in &self.names {
            if name.is_empty() {
                return Err(Error::config("tenant names must not be empty"));
            }
            if !seen.insert(name.as_str()) {
                return Err(Error::config(format!("duplicate tenant name '{name}'")));
            }
        }
        Ok(())
    }
}

/// The kinds of reusable workload blocks a `[[scenario.block]]` may select
/// (see `docs/SCENARIOS.md` for the behaviour of each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioBlockKind {
    /// Constant-bit-rate flows from a source to a sink ground station.
    Cbr,
    /// Handover-chasing mobile clients streaming through the currently best
    /// uplink satellite of their ground station.
    Mobile,
    /// A bursty IoT fleet (DART-style): baseline readings with
    /// seed-deterministic burst windows multiplying the emission rate.
    Iot,
    /// A CDN-style edge cache: requests served from the best uplink
    /// satellite at the configured hit ratio, misses falling back to the
    /// origin ground station.
    Cdn,
    /// Region-blackout failover consumers: stream from the primary sink
    /// while it runs, fail over to the backup when it is down.
    Failover,
}

impl ScenarioBlockKind {
    /// All block kinds, in documentation order.
    pub const ALL: [ScenarioBlockKind; 5] = [
        ScenarioBlockKind::Cbr,
        ScenarioBlockKind::Mobile,
        ScenarioBlockKind::Iot,
        ScenarioBlockKind::Cdn,
        ScenarioBlockKind::Failover,
    ];

    /// The TOML name of the kind (`kind = "..."`).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioBlockKind::Cbr => "cbr",
            ScenarioBlockKind::Mobile => "mobile",
            ScenarioBlockKind::Iot => "iot",
            ScenarioBlockKind::Cdn => "cdn",
            ScenarioBlockKind::Failover => "failover",
        }
    }
}

/// One `[[scenario.block]]`: a reusable workload building block replicated
/// into every generated tenant (see `docs/SCENARIOS.md`).
///
/// Station roles are names from the `[[ground-station]]` list; the empty
/// string resolves positionally (source → first station, sink and fallback →
/// last station), so a minimal block needs no explicit wiring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioBlock {
    /// Which workload the block runs (`kind`).
    pub kind: ScenarioBlockKind,
    /// Block name (`name`), seeding the block's derived RNG stream
    /// `scenario.<tenant>.<block>`; empty derives `<kind>-<index>`.
    pub name: String,
    /// Number of simulated users aggregated at flow level (`population`).
    pub population: u64,
    /// Ground station the users attach to (`source`).
    pub source: String,
    /// Primary destination ground station (`sink`).
    pub sink: String,
    /// CDN origin / failover backup ground station (`fallback`).
    pub fallback: String,
    /// Per-user bit rate in bits per second (`bitrate-bps`).
    pub bitrate_bps: u64,
    /// Per-user emission interval in milliseconds (`interval-ms`).
    pub interval_ms: f64,
    /// Fraction of CDN requests served at the edge (`hit-ratio`, in [0, 1]).
    pub hit_ratio: f64,
    /// Probability an IoT window bursts (`burst-prob`, in [0, 1]).
    pub burst_prob: f64,
    /// Emission-rate multiplier inside an IoT burst (`burst-factor`).
    pub burst_factor: u32,
}

impl Default for ScenarioBlock {
    fn default() -> Self {
        ScenarioBlock {
            kind: ScenarioBlockKind::Cbr,
            name: String::new(),
            population: 100,
            source: String::new(),
            sink: String::new(),
            fallback: String::new(),
            bitrate_bps: 2_600_000,
            interval_ms: 1_000.0,
            hit_ratio: 0.9,
            burst_prob: 0.1,
            burst_factor: 10,
        }
    }
}

impl ScenarioBlock {
    /// The per-user emission interval, rounded to whole microseconds (the
    /// sim's tick), which is what keeps flow accounting exactly integral.
    pub fn interval(&self) -> celestial_types::time::SimDuration {
        celestial_types::time::SimDuration::from_micros((self.interval_ms * 1_000.0).round() as u64)
    }

    /// The block's effective name: `name`, or `<kind>-<index>` when empty.
    pub fn effective_name(&self, index: usize) -> String {
        if self.name.is_empty() {
            format!("{}-{index}", self.kind.name())
        } else {
            self.name.clone()
        }
    }
}

/// The `[scenario]` section: a generator expanding composable workload
/// blocks into a fleet of generated tenants (see `docs/SCENARIOS.md`).
///
/// Every generated tenant runs every block; per-block populations are
/// aggregated at flow level on the deterministic engine, so thousands of
/// tenants with millions of aggregate users stay affordable and
/// bit-reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of generated tenants sharing the epoch pipeline (`tenants`).
    pub tenants: u32,
    /// The workload blocks every tenant is composed of
    /// (`[[scenario.block]]`).
    pub blocks: Vec<ScenarioBlock>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            tenants: 1,
            blocks: Vec::new(),
        }
    }
}

impl ScenarioConfig {
    /// The generated tenant names, indexed by tenant id:
    /// `scenario-0000..scenario-{tenants-1}`.
    pub fn tenant_names(&self) -> Vec<String> {
        (0..self.tenants).map(|i| format!("scenario-{i:04}")).collect()
    }

    /// Simulated users per generated tenant (the sum of block populations).
    pub fn users_per_tenant(&self) -> u64 {
        self.blocks.iter().map(|b| b.population).sum()
    }

    /// Aggregate simulated users across the whole generated fleet.
    pub fn aggregate_users(&self) -> u64 {
        u64::from(self.tenants) * self.users_per_tenant()
    }

    /// Validates the scenario parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for a zero or oversized tenant count, an
    /// empty block list, out-of-range block parameters, or duplicate block
    /// names.
    pub fn validate(&self) -> Result<()> {
        if self.tenants < 1 {
            return Err(Error::config(
                "scenario tenants must be at least 1 (see docs/SCENARIOS.md)",
            ));
        }
        if self.tenants > 4096 {
            return Err(Error::config(format!(
                "scenario tenants must be at most 4096, got {} (see docs/SCENARIOS.md)",
                self.tenants
            )));
        }
        if self.blocks.is_empty() {
            return Err(Error::config(
                "a scenario needs at least one [[scenario.block]] (see docs/SCENARIOS.md)",
            ));
        }
        let mut names = std::collections::BTreeSet::new();
        for (index, block) in self.blocks.iter().enumerate() {
            let name = block.effective_name(index);
            if !names.insert(name.clone()) {
                return Err(Error::config(format!(
                    "duplicate scenario block name '{name}' (block names seed RNG \
                     streams and must be unique; see docs/SCENARIOS.md)"
                )));
            }
            if block.population < 1 {
                return Err(Error::config(format!(
                    "scenario block '{name}' population must be at least 1"
                )));
            }
            if block.bitrate_bps < 1 {
                return Err(Error::config(format!(
                    "scenario block '{name}' bitrate-bps must be at least 1"
                )));
            }
            if !(block.interval_ms > 0.0 && block.interval_ms.is_finite()) {
                return Err(Error::config(format!(
                    "scenario block '{name}' interval-ms must be positive and finite, got {}",
                    block.interval_ms
                )));
            }
            for (key, value) in [("hit-ratio", block.hit_ratio), ("burst-prob", block.burst_prob)] {
                if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                    return Err(Error::config(format!(
                        "scenario block '{name}' {key} must be in [0, 1], got {value}"
                    )));
                }
            }
            if block.burst_factor < 1 {
                return Err(Error::config(format!(
                    "scenario block '{name}' burst-factor must be at least 1"
                )));
            }
        }
        Ok(())
    }
}

/// The `[serve]` section: the HTTP serving plane answering info-API queries
/// lock-free against epoch-versioned snapshots, with a middleware pipeline
/// for auth, rate limiting and metrics (see `docs/SERVE.md`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// TCP port to bind (`port`); `0` picks an ephemeral port.
    pub port: u16,
    /// Number of worker threads answering requests (`workers`).
    pub workers: u32,
    /// Token-bucket capacity per client (`rate-limit-burst`); a client can
    /// issue at most this many requests within one epoch.
    pub rate_limit_burst: u32,
    /// Tokens refilled per epoch boundary (`rate-limit-per-epoch`); `0`
    /// disables rate limiting entirely.
    pub rate_limit_per_epoch: u32,
    /// Accepted bearer tokens (`auth-tokens`); an empty list leaves the
    /// server open (no auth middleware rejection).
    pub auth_tokens: Vec<String>,
    /// Whether connections are kept alive between requests (`keep-alive`).
    pub keep_alive: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 4,
            rate_limit_burst: 64,
            rate_limit_per_epoch: 32,
            auth_tokens: Vec::new(),
            keep_alive: true,
        }
    }
}

impl ServeConfig {
    /// Validates the serving-plane parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for a zero worker count or a zero burst
    /// with rate limiting enabled.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(Error::config("serve workers must be at least 1 (see docs/SERVE.md)"));
        }
        if self.rate_limit_per_epoch > 0 && self.rate_limit_burst == 0 {
            return Err(Error::config(
                "serve rate-limit-burst must be at least 1 when rate limiting is \
                 enabled (see docs/SERVE.md)",
            ));
        }
        if self.auth_tokens.iter().any(|t| t.is_empty()) {
            return Err(Error::config("serve auth-tokens must not contain empty tokens"));
        }
        Ok(())
    }
}

/// The `[chaos]` section: how many correlated fault windows of each kind the
/// chaos engine schedules, and their shape. All schedules derive from the
/// run's `seed` through per-generator `SimRng::derive("chaos.<generator>")`
/// streams, so they are bit-reproducible and stream-independent (see
/// `docs/CHAOS.md`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Number of whole-orbital-plane outage windows (`plane-outages`).
    pub plane_outages: u32,
    /// Mean plane-outage duration in seconds (`plane-outage-mean-s`).
    pub plane_outage_mean_s: f64,
    /// Number of solar-storm windows degrading a latitude band
    /// (`solar-storms`).
    pub solar_storms: u32,
    /// Mean solar-storm duration in seconds (`solar-storm-mean-s`).
    pub solar_storm_mean_s: f64,
    /// Half-width of the degraded latitude band in degrees
    /// (`solar-storm-band-half-width-deg`).
    pub solar_storm_band_half_width_deg: f64,
    /// CPU share degraded machines keep, in percent `(0, 100]`
    /// (`solar-storm-cpu-share-percent`).
    pub solar_storm_cpu_share_percent: u8,
    /// Number of ground-station region blackouts (`region-blackouts`).
    pub region_blackouts: u32,
    /// Mean region-blackout duration in seconds (`region-blackout-mean-s`).
    pub region_blackout_mean_s: f64,
    /// Blackout radius in kilometres (`region-blackout-radius-km`).
    pub region_blackout_radius_km: f64,
    /// Number of link-flap storms (`link-flap-storms`).
    pub link_flap_storms: u32,
    /// Mean link-flap storm duration in seconds (`link-flap-mean-s`).
    pub link_flap_mean_s: f64,
    /// Flap period within a storm in seconds (`link-flap-period-s`).
    pub link_flap_period_s: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            plane_outages: 1,
            plane_outage_mean_s: 10.0,
            solar_storms: 1,
            solar_storm_mean_s: 10.0,
            solar_storm_band_half_width_deg: 15.0,
            solar_storm_cpu_share_percent: 25,
            region_blackouts: 1,
            region_blackout_mean_s: 10.0,
            region_blackout_radius_km: 500.0,
            link_flap_storms: 1,
            link_flap_mean_s: 10.0,
            link_flap_period_s: 4.0,
        }
    }
}

impl ChaosConfig {
    /// Validates the chaos parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for non-positive durations or an
    /// out-of-range CPU share.
    pub fn validate(&self) -> Result<()> {
        for (key, value) in [
            ("plane-outage-mean-s", self.plane_outage_mean_s),
            ("solar-storm-mean-s", self.solar_storm_mean_s),
            ("region-blackout-mean-s", self.region_blackout_mean_s),
            ("region-blackout-radius-km", self.region_blackout_radius_km),
            ("link-flap-mean-s", self.link_flap_mean_s),
            ("link-flap-period-s", self.link_flap_period_s),
        ] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(Error::config(format!(
                    "chaos {key} must be positive and finite, got {value} (see docs/CHAOS.md)"
                )));
            }
        }
        if self.solar_storm_band_half_width_deg < 0.0 {
            return Err(Error::config(
                "chaos solar-storm-band-half-width-deg must be non-negative (see docs/CHAOS.md)",
            ));
        }
        if self.solar_storm_cpu_share_percent == 0 || self.solar_storm_cpu_share_percent > 100 {
            return Err(Error::config(format!(
                "chaos solar-storm-cpu-share-percent must be in (0, 100], got {} \
                 (see docs/CHAOS.md)",
                self.solar_storm_cpu_share_percent
            )));
        }
        Ok(())
    }
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 0,
            update_interval_s: 2.0,
            duration_s: 600.0,
            utilization_sample_interval_s: 1.0,
            shells: Vec::new(),
            ground_stations: Vec::new(),
            bounding_box: BoundingBox::whole_earth(),
            path_algorithm: PathAlgorithm::Dijkstra,
            pipeline: PipelineMode::Synchronous,
            shards: None,
            host_latency_us: None,
            hosts: vec![HostConfig::default(); 3],
            ballooning: false,
            chaos: None,
            serve: None,
            tenants: None,
            paths: None,
            scenario: None,
        }
    }
}

impl TestbedConfig {
    /// Parses a configuration from Celestial's TOML format.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] on syntax errors, missing required keys or
    /// semantically invalid values.
    pub fn from_toml(input: &str) -> Result<Self> {
        let table = toml::parse(input)?;
        let mut config = TestbedConfig {
            seed: table.get_i64("seed").unwrap_or(0) as u64,
            update_interval_s: table.get_f64("update-interval-s").unwrap_or(2.0),
            duration_s: table.get_f64("duration-s").unwrap_or(600.0),
            utilization_sample_interval_s: table
                .get_f64("utilization-sample-interval-s")
                .unwrap_or(1.0),
            ballooning: table.get_bool("ballooning").unwrap_or(false),
            ..TestbedConfig::default()
        };

        if let Some(value) = table.get("path-algorithm") {
            let text = value.as_str();
            config.path_algorithm = text
                .and_then(|t| PathAlgorithm::ALL.iter().find(|a| a.name() == t).copied())
                .ok_or_else(|| {
                    let expected: Vec<String> = PathAlgorithm::ALL
                        .iter()
                        .map(|a| format!("\"{}\"", a.name()))
                        .collect();
                    Error::config(format!(
                        "unknown path-algorithm {text:?}; expected one of {} (see docs/PATHS.md)",
                        expected.join(", ")
                    ))
                })?;
        }

        if let Some(value) = table.get("pipeline") {
            let text = value.as_str();
            config.pipeline = text
                .and_then(|t| PipelineMode::ALL.iter().find(|m| m.name() == t).copied())
                .ok_or_else(|| {
                    let expected: Vec<String> = PipelineMode::ALL
                        .iter()
                        .map(|m| format!("\"{}\"", m.name()))
                        .collect();
                    Error::config(format!(
                        "unknown pipeline {text:?}; expected one of {} (see docs/PIPELINE.md)",
                        expected.join(", ")
                    ))
                })?;
        }

        if let Some(shards) = table.get_i64("shards") {
            if shards < 1 {
                return Err(Error::config("shards must be at least 1 (see docs/SHARDING.md)"));
            }
            config.shards = Some(shards as u32);
            // `shards = N` alone provisions N default hosts; explicit
            // `[[host]]` tables must agree with it (validated below).
            config.hosts = vec![HostConfig::default(); shards as usize];
        }
        if let Some(us) = table.get_i64("host-latency-us") {
            if us < 0 {
                return Err(Error::config("host-latency-us must be non-negative"));
            }
            config.host_latency_us = Some(us as u64);
        }

        if let Some(bbox) = table.get("bounding-box").and_then(|v| v.as_table()) {
            config.bounding_box = BoundingBox::new(
                bbox.require_f64("lat-min")?,
                bbox.require_f64("lat-max")?,
                bbox.require_f64("lon-min")?,
                bbox.require_f64("lon-max")?,
            );
        }

        if let Some(shells) = table.get("shell").and_then(|v| v.as_table_array()) {
            for shell in shells {
                config.shells.push(parse_shell(shell)?);
            }
        }
        if let Some(stations) = table.get("ground-station").and_then(|v| v.as_table_array()) {
            for gst in stations {
                config.ground_stations.push(parse_ground_station(gst)?);
            }
        }
        if let Some(chaos) = table.get("chaos").and_then(|v| v.as_table()) {
            let defaults = ChaosConfig::default();
            let count = |key: &str, default: u32| -> Result<u32> {
                match chaos.get_i64(key) {
                    Some(n) if n < 0 => {
                        Err(Error::config(format!("chaos {key} must be non-negative")))
                    }
                    Some(n) => Ok(n as u32),
                    None => Ok(default),
                }
            };
            config.chaos = Some(ChaosConfig {
                plane_outages: count("plane-outages", defaults.plane_outages)?,
                plane_outage_mean_s: chaos
                    .get_f64("plane-outage-mean-s")
                    .unwrap_or(defaults.plane_outage_mean_s),
                solar_storms: count("solar-storms", defaults.solar_storms)?,
                solar_storm_mean_s: chaos
                    .get_f64("solar-storm-mean-s")
                    .unwrap_or(defaults.solar_storm_mean_s),
                solar_storm_band_half_width_deg: chaos
                    .get_f64("solar-storm-band-half-width-deg")
                    .unwrap_or(defaults.solar_storm_band_half_width_deg),
                solar_storm_cpu_share_percent: chaos
                    .get_i64("solar-storm-cpu-share-percent")
                    .map_or(defaults.solar_storm_cpu_share_percent, |p| {
                        p.clamp(0, 255) as u8
                    }),
                region_blackouts: count("region-blackouts", defaults.region_blackouts)?,
                region_blackout_mean_s: chaos
                    .get_f64("region-blackout-mean-s")
                    .unwrap_or(defaults.region_blackout_mean_s),
                region_blackout_radius_km: chaos
                    .get_f64("region-blackout-radius-km")
                    .unwrap_or(defaults.region_blackout_radius_km),
                link_flap_storms: count("link-flap-storms", defaults.link_flap_storms)?,
                link_flap_mean_s: chaos
                    .get_f64("link-flap-mean-s")
                    .unwrap_or(defaults.link_flap_mean_s),
                link_flap_period_s: chaos
                    .get_f64("link-flap-period-s")
                    .unwrap_or(defaults.link_flap_period_s),
            });
        }
        if let Some(serve) = table.get("serve").and_then(|v| v.as_table()) {
            let defaults = ServeConfig::default();
            let count = |key: &str, default: u32| -> Result<u32> {
                match serve.get_i64(key) {
                    Some(n) if n < 0 => {
                        Err(Error::config(format!("serve {key} must be non-negative")))
                    }
                    Some(n) => Ok(n as u32),
                    None => Ok(default),
                }
            };
            let port = match serve.get_i64("port") {
                Some(p) if !(0..=u16::MAX as i64).contains(&p) => {
                    return Err(Error::config(format!("serve port must be a valid TCP port, got {p}")));
                }
                Some(p) => p as u16,
                None => defaults.port,
            };
            let auth_tokens = match serve.get("auth-tokens") {
                Some(value) => value
                    .as_array()
                    .ok_or_else(|| Error::config("serve auth-tokens must be an array of strings"))?
                    .iter()
                    .map(|v| {
                        v.as_str().map(str::to_owned).ok_or_else(|| {
                            Error::config("serve auth-tokens must be an array of strings")
                        })
                    })
                    .collect::<Result<Vec<String>>>()?,
                None => defaults.auth_tokens,
            };
            config.serve = Some(ServeConfig {
                port,
                workers: count("workers", defaults.workers)?,
                rate_limit_burst: count("rate-limit-burst", defaults.rate_limit_burst)?,
                rate_limit_per_epoch: count(
                    "rate-limit-per-epoch",
                    defaults.rate_limit_per_epoch,
                )?,
                auth_tokens,
                keep_alive: serve.get_bool("keep-alive").unwrap_or(defaults.keep_alive),
            });
        }
        if let Some(paths) = table.get("paths").and_then(|v| v.as_table()) {
            let defaults = PathsConfig::default();
            let count = |key: &str, default: u32| -> Result<u32> {
                match paths.get_i64(key) {
                    Some(n) if n < 0 => {
                        Err(Error::config(format!("paths {key} must be non-negative")))
                    }
                    Some(n) => Ok(n as u32),
                    None => Ok(default),
                }
            };
            config.paths = Some(PathsConfig {
                scope_margin_deg: paths
                    .get_f64("scope-margin-deg")
                    .unwrap_or(defaults.scope_margin_deg),
                k_nearest: count("k-nearest", defaults.k_nearest)?,
                landmarks: count("landmarks", defaults.landmarks)?,
            });
        }
        let tenant_blocks = table.get("tenant").and_then(|v| v.as_table_array());
        if let Some(tenants) = table.get("tenants").and_then(|v| v.as_table()) {
            if tenant_blocks.is_some() {
                return Err(Error::config(
                    "use either a [tenants] table or [[tenant]] blocks, not both \
                     (see docs/TENANTS.md)",
                ));
            }
            let defaults = TenantsConfig::default();
            let count = match tenants.get_i64("count") {
                Some(n) if n < 1 => {
                    return Err(Error::config(
                        "tenants count must be at least 1 (see docs/TENANTS.md)",
                    ));
                }
                Some(n) => n as u32,
                None => defaults.count,
            };
            let names = match tenants.get("names") {
                Some(value) => value
                    .as_array()
                    .ok_or_else(|| Error::config("tenants names must be an array of strings"))?
                    .iter()
                    .map(|v| {
                        v.as_str().map(str::to_owned).ok_or_else(|| {
                            Error::config("tenants names must be an array of strings")
                        })
                    })
                    .collect::<Result<Vec<String>>>()?,
                None => defaults.names,
            };
            config.tenants = Some(TenantsConfig { count, names });
        } else if let Some(blocks) = tenant_blocks {
            let names = blocks
                .iter()
                .map(|t| {
                    t.get_str("name")
                        .map(str::to_owned)
                        .ok_or_else(|| Error::config("tenant is missing 'name' (see docs/TENANTS.md)"))
                })
                .collect::<Result<Vec<String>>>()?;
            config.tenants = Some(TenantsConfig {
                count: names.len() as u32,
                names,
            });
        }
        if let Some(scenario) = table.get("scenario").and_then(|v| v.as_table()) {
            let defaults = ScenarioConfig::default();
            let tenants = match scenario.get_i64("tenants") {
                Some(n) if n < 1 => {
                    return Err(Error::config(
                        "scenario tenants must be at least 1 (see docs/SCENARIOS.md)",
                    ));
                }
                Some(n) => n as u32,
                None => defaults.tenants,
            };
            let mut blocks = Vec::new();
            if let Some(list) = scenario.get("block").and_then(|v| v.as_table_array()) {
                for block in list {
                    blocks.push(parse_scenario_block(block)?);
                }
            }
            config.scenario = Some(ScenarioConfig { tenants, blocks });
        }
        if let Some(hosts) = table.get("host").and_then(|v| v.as_table_array()) {
            config.hosts = hosts
                .iter()
                .map(|h| HostConfig {
                    cores: h.get_i64("cores").unwrap_or(32) as u32,
                    memory_mib: h.get_i64("memory-mib").unwrap_or(32 * 1024) as u64,
                })
                .collect();
        }

        config.validate()?;
        Ok(config)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the configuration cannot produce a
    /// runnable testbed.
    pub fn validate(&self) -> Result<()> {
        if self.shells.is_empty() {
            return Err(Error::config("at least one shell is required"));
        }
        if self.update_interval_s <= 0.0 {
            return Err(Error::config("update-interval-s must be positive"));
        }
        if self.duration_s <= 0.0 {
            return Err(Error::config("duration-s must be positive"));
        }
        if self.hosts.is_empty() {
            return Err(Error::config("at least one host is required"));
        }
        if let Some(shards) = self.shards {
            if shards < 1 {
                return Err(Error::config("shards must be at least 1 (see docs/SHARDING.md)"));
            }
            if shards as usize != self.hosts.len() {
                return Err(Error::config(format!(
                    "shards = {shards} but {} hosts are configured; the sharded plane \
                     runs exactly one shard per host (see docs/SHARDING.md)",
                    self.hosts.len()
                )));
            }
        }
        let mut names = std::collections::BTreeSet::new();
        for gst in &self.ground_stations {
            if !names.insert(gst.name.clone()) {
                return Err(Error::config(format!(
                    "duplicate ground station name '{}'",
                    gst.name
                )));
            }
        }
        if let Some(chaos) = &self.chaos {
            chaos.validate()?;
        }
        if let Some(serve) = &self.serve {
            serve.validate()?;
        }
        if let Some(tenants) = &self.tenants {
            tenants.validate()?;
        }
        if let Some(paths) = &self.paths {
            paths.validate()?;
        }
        if let Some(scenario) = &self.scenario {
            scenario.validate()?;
            if self.tenants.is_some() {
                return Err(Error::config(
                    "use either a [scenario] generator or a [tenants] fan-out, not both \
                     (the scenario generates its own tenant fleet; see docs/SCENARIOS.md)",
                ));
            }
            if self.ground_stations.is_empty() {
                return Err(Error::config(
                    "a scenario needs at least one ground station to attach its blocks to \
                     (see docs/SCENARIOS.md)",
                ));
            }
            for (index, block) in scenario.blocks.iter().enumerate() {
                for role in [&block.source, &block.sink, &block.fallback] {
                    if !role.is_empty() && !self.ground_stations.iter().any(|g| &g.name == role) {
                        return Err(Error::config(format!(
                            "scenario block '{}' references unknown ground station '{role}' \
                             (see docs/SCENARIOS.md)",
                            block.effective_name(index)
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Starts building a configuration programmatically.
    pub fn builder() -> TestbedConfigBuilder {
        TestbedConfigBuilder::default()
    }
}

fn parse_shell(table: &TomlTable) -> Result<Shell> {
    let altitude = table.require_f64("altitude-km")?;
    let inclination = table.require_f64("inclination-deg")?;
    let planes = table
        .get_i64("planes")
        .ok_or_else(|| Error::config("shell is missing 'planes'"))? as u32;
    let per_plane = table
        .get_i64("satellites-per-plane")
        .ok_or_else(|| Error::config("shell is missing 'satellites-per-plane'"))?
        as u32;
    let mut walker = WalkerShell::new(altitude, inclination, planes, per_plane);
    if let Some(arc) = table.get_f64("arc-of-ascending-nodes-deg") {
        walker = walker.with_arc_of_ascending_nodes(arc);
    }
    if let Some(phase) = table.get_i64("phase-offset") {
        walker = walker.with_phase_offset(phase as u32);
    }
    let mut shell = Shell::from_walker(walker);
    if let Some(bw) = table.get_i64("isl-bandwidth-kbps") {
        shell = shell.with_isl_bandwidth(Bandwidth::from_kbps(bw as u64));
    }
    if let Some(bw) = table.get_i64("ground-link-bandwidth-kbps") {
        shell = shell.with_ground_link_bandwidth(Bandwidth::from_kbps(bw as u64));
    }
    shell = shell.with_min_elevation_deg(
        table
            .get_f64("min-elevation-deg")
            .unwrap_or(DEFAULT_MIN_ELEVATION_DEG),
    );
    let vcpus = table.get_i64("vcpus").unwrap_or(2) as u32;
    let memory = table.get_i64("memory-mib").unwrap_or(512) as u64;
    shell = shell.with_resources(MachineResources::new(vcpus, memory));
    Ok(shell)
}

fn parse_scenario_block(table: &TomlTable) -> Result<ScenarioBlock> {
    let defaults = ScenarioBlock::default();
    let kind = match table.get_str("kind") {
        Some(text) => ScenarioBlockKind::ALL
            .iter()
            .find(|k| k.name() == text)
            .copied()
            .ok_or_else(|| {
                let expected: Vec<String> = ScenarioBlockKind::ALL
                    .iter()
                    .map(|k| format!("\"{}\"", k.name()))
                    .collect();
                Error::config(format!(
                    "unknown scenario block kind \"{text}\"; expected one of {} \
                     (see docs/SCENARIOS.md)",
                    expected.join(", ")
                ))
            })?,
        None => defaults.kind,
    };
    let nonneg = |key: &str, default: u64| -> Result<u64> {
        match table.get_i64(key) {
            Some(n) if n < 0 => Err(Error::config(format!(
                "scenario block {key} must be non-negative"
            ))),
            Some(n) => Ok(n as u64),
            None => Ok(default),
        }
    };
    let station = |key: &str, default: &str| -> String {
        table.get_str(key).unwrap_or(default).to_owned()
    };
    Ok(ScenarioBlock {
        kind,
        name: station("name", &defaults.name),
        population: nonneg("population", defaults.population)?,
        source: station("source", &defaults.source),
        sink: station("sink", &defaults.sink),
        fallback: station("fallback", &defaults.fallback),
        bitrate_bps: nonneg("bitrate-bps", defaults.bitrate_bps)?,
        interval_ms: table.get_f64("interval-ms").unwrap_or(defaults.interval_ms),
        hit_ratio: table.get_f64("hit-ratio").unwrap_or(defaults.hit_ratio),
        burst_prob: table.get_f64("burst-prob").unwrap_or(defaults.burst_prob),
        burst_factor: nonneg("burst-factor", u64::from(defaults.burst_factor))? as u32,
    })
}

fn parse_ground_station(table: &TomlTable) -> Result<GroundStation> {
    let name = table
        .get_str("name")
        .ok_or_else(|| Error::config("ground station is missing 'name'"))?;
    let lat = table.require_f64("lat")?;
    let lon = table.require_f64("lon")?;
    let mut gst = GroundStation::new(name, Geodetic::new(lat, lon, 0.0));
    if let (Some(vcpus), Some(memory)) = (table.get_i64("vcpus"), table.get_i64("memory-mib")) {
        gst = gst.with_resources(MachineResources::new(vcpus as u32, memory as u64));
    }
    if let Some(bw) = table.get_i64("bandwidth-kbps") {
        gst = gst.with_bandwidth(Bandwidth::from_kbps(bw as u64));
    }
    if let Some(elev) = table.get_f64("min-elevation-deg") {
        gst = gst.with_min_elevation_deg(elev);
    }
    Ok(gst)
}

/// Builder for [`TestbedConfig`].
#[derive(Debug, Clone, Default)]
pub struct TestbedConfigBuilder {
    config: TestbedConfig,
}

impl TestbedConfigBuilder {
    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the constellation update interval in seconds.
    pub fn update_interval_s(mut self, interval: f64) -> Self {
        self.config.update_interval_s = interval;
        self
    }

    /// Sets the experiment duration in seconds.
    pub fn duration_s(mut self, duration: f64) -> Self {
        self.config.duration_s = duration;
        self
    }

    /// Adds a shell.
    pub fn shell(mut self, shell: Shell) -> Self {
        self.config.shells.push(shell);
        self
    }

    /// Adds several shells.
    pub fn shells(mut self, shells: impl IntoIterator<Item = Shell>) -> Self {
        self.config.shells.extend(shells);
        self
    }

    /// Adds a ground station.
    pub fn ground_station(mut self, gst: GroundStation) -> Self {
        self.config.ground_stations.push(gst);
        self
    }

    /// Adds several ground stations.
    pub fn ground_stations(mut self, stations: impl IntoIterator<Item = GroundStation>) -> Self {
        self.config.ground_stations.extend(stations);
        self
    }

    /// Sets the bounding box.
    pub fn bounding_box(mut self, bbox: BoundingBox) -> Self {
        self.config.bounding_box = bbox;
        self
    }

    /// Sets the shortest-path algorithm.
    pub fn path_algorithm(mut self, algorithm: PathAlgorithm) -> Self {
        self.config.path_algorithm = algorithm;
        self
    }

    /// Sets the epoch-pipeline mode.
    pub fn pipeline(mut self, mode: PipelineMode) -> Self {
        self.config.pipeline = mode;
        self
    }

    /// Enables the host-sharded programming plane with one shard per host,
    /// provisioning `shards` default hosts unless an explicit host fleet of
    /// the same size is set (see `docs/SHARDING.md`).
    pub fn shards(mut self, shards: u32) -> Self {
        self.config.shards = Some(shards);
        if self.config.hosts.len() != shards as usize {
            self.config.hosts = vec![HostConfig::default(); shards as usize];
        }
        self
    }

    /// Sets the default one-way inter-host latency in microseconds.
    pub fn host_latency_us(mut self, us: u64) -> Self {
        self.config.host_latency_us = Some(us);
        self
    }

    /// Sets the host fleet.
    pub fn hosts(mut self, hosts: Vec<HostConfig>) -> Self {
        self.config.hosts = hosts;
        self
    }

    /// Enables or disables virtio ballooning for suspended machines.
    pub fn ballooning(mut self, enabled: bool) -> Self {
        self.config.ballooning = enabled;
        self
    }

    /// Enables the chaos engine with the given generator mix (see
    /// `docs/CHAOS.md`).
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.config.chaos = Some(chaos);
        self
    }

    /// Enables the HTTP serving plane with the given parameters (see
    /// `docs/SERVE.md`).
    pub fn serve(mut self, serve: ServeConfig) -> Self {
        self.config.serve = Some(serve);
        self
    }

    /// Tunes the scale-aware solve scope (see `docs/MEGASCALE.md`).
    pub fn paths(mut self, paths: PathsConfig) -> Self {
        self.config.paths = Some(paths);
        self
    }

    /// Fans the testbed out to several tenants sharing one epoch pipeline
    /// (see `docs/TENANTS.md`).
    pub fn tenants(mut self, tenants: TenantsConfig) -> Self {
        self.config.tenants = Some(tenants);
        self
    }

    /// Fans the testbed out to `count` anonymous tenants (named
    /// `tenant-0..tenant-{count-1}`; see `docs/TENANTS.md`).
    pub fn tenant_count(mut self, count: u32) -> Self {
        self.config.tenants = Some(TenantsConfig {
            count,
            names: Vec::new(),
        });
        self
    }

    /// Generates a tenant fleet from composable workload blocks (see
    /// `docs/SCENARIOS.md`).
    pub fn scenario(mut self, scenario: ScenarioConfig) -> Self {
        self.config.scenario = Some(scenario);
        self
    }

    /// Finishes building and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the configuration is invalid.
    pub fn build(self) -> Result<TestbedConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
seed = 42
update-interval-s = 2.0
duration-s = 600.0
path-algorithm = "dijkstra"

[bounding-box]
lat-min = -5.0
lat-max = 25.0
lon-min = -15.0
lon-max = 25.0

[[host]]
cores = 32
memory-mib = 32768

[[host]]
cores = 32
memory-mib = 32768

[[shell]]
altitude-km = 550.0
inclination-deg = 53.0
planes = 72
satellites-per-plane = 22
phase-offset = 17
isl-bandwidth-kbps = 10000000
vcpus = 2
memory-mib = 512

[[ground-station]]
name = "accra"
lat = 5.6037
lon = -0.187
vcpus = 4
memory-mib = 4096

[[ground-station]]
name = "johannesburg-dc"
lat = -26.2041
lon = 28.0473
vcpus = 8
memory-mib = 8192
min-elevation-deg = 30.0
"#;

    #[test]
    fn parses_the_example_configuration() {
        let config = TestbedConfig::from_toml(EXAMPLE).expect("valid config");
        assert_eq!(config.seed, 42);
        assert_eq!(config.update_interval_s, 2.0);
        assert_eq!(config.hosts.len(), 2);
        assert_eq!(config.shells.len(), 1);
        assert_eq!(config.shells[0].satellite_count(), 1584);
        assert_eq!(config.shells[0].isl_bandwidth, Bandwidth::from_gbps(10));
        assert_eq!(config.shells[0].resources.memory_mib, 512);
        assert_eq!(config.ground_stations.len(), 2);
        assert_eq!(config.ground_stations[0].name, "accra");
        assert_eq!(config.ground_stations[1].min_elevation_deg, Some(30.0));
        assert!(!config.bounding_box.contains(
            &Geodetic::new(-26.2, 28.0, 0.0)
        ));
    }

    #[test]
    fn missing_shell_fields_are_reported() {
        let bad = "[[shell]]\naltitude-km = 550.0";
        let err = TestbedConfig::from_toml(bad).unwrap_err();
        assert!(err.to_string().contains("inclination-deg"));
    }

    #[test]
    fn empty_configuration_is_invalid() {
        assert!(TestbedConfig::from_toml("").is_err());
    }

    #[test]
    fn incremental_and_auto_path_algorithms_parse() {
        for (text, expected) in [
            ("incremental", PathAlgorithm::Incremental),
            ("auto", PathAlgorithm::Auto),
        ] {
            let toml = format!(
                "path-algorithm = \"{text}\"\n[[shell]]\naltitude-km = 550.0\n\
                 inclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2"
            );
            let config = TestbedConfig::from_toml(&toml).expect("valid config");
            assert_eq!(config.path_algorithm, expected);
        }
    }

    #[test]
    fn pipeline_modes_parse_and_default_to_synchronous() {
        for (text, expected) in [
            ("synchronous", PipelineMode::Synchronous),
            ("pipelined", PipelineMode::Pipelined),
        ] {
            let toml = format!(
                "pipeline = \"{text}\"\n[[shell]]\naltitude-km = 550.0\n\
                 inclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2"
            );
            let config = TestbedConfig::from_toml(&toml).expect("valid config");
            assert_eq!(config.pipeline, expected);
        }
        let bare = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                    planes = 1\nsatellites-per-plane = 2";
        let config = TestbedConfig::from_toml(bare).expect("valid config");
        assert_eq!(config.pipeline, PipelineMode::Synchronous);
        let bad = "pipeline = \"speculative\"\n[[shell]]\naltitude-km = 550.0\n\
                   inclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2";
        let err = TestbedConfig::from_toml(bad).unwrap_err();
        assert!(err.to_string().contains("pipeline"), "{err}");
    }

    #[test]
    fn shards_key_provisions_one_host_per_shard() {
        let toml = "shards = 4\nhost-latency-us = 350\n[[shell]]\naltitude-km = 550.0\n\
                    inclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2";
        let config = TestbedConfig::from_toml(toml).expect("valid config");
        assert_eq!(config.shards, Some(4));
        assert_eq!(config.hosts.len(), 4);
        assert_eq!(config.host_latency_us, Some(350));
        // Absent key: global plane, default host fleet, paper's 0.2 ms.
        let bare = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                    planes = 1\nsatellites-per-plane = 2";
        let config = TestbedConfig::from_toml(bare).expect("valid config");
        assert_eq!(config.shards, None);
        assert_eq!(config.host_latency_us, None);
    }

    #[test]
    fn shards_must_match_an_explicit_host_fleet() {
        let toml = "shards = 4\n[[host]]\ncores = 8\nmemory-mib = 8192\n[[shell]]\n\
                    altitude-km = 550.0\ninclination-deg = 53.0\nplanes = 1\n\
                    satellites-per-plane = 2";
        let err = TestbedConfig::from_toml(toml).unwrap_err();
        assert!(err.to_string().contains("one shard per host"), "{err}");
        let zero = "shards = 0\n[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                    planes = 1\nsatellites-per-plane = 2";
        assert!(TestbedConfig::from_toml(zero).is_err());
        // Builder: shards resizes a default fleet, and an agreeing explicit
        // fleet is kept.
        let config = TestbedConfig::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 1, 2)))
            .hosts(vec![HostConfig { cores: 8, memory_mib: 4096 }; 2])
            .shards(2)
            .build()
            .expect("valid config");
        assert_eq!(config.hosts.len(), 2);
        assert_eq!(config.hosts[0].cores, 8, "explicit fleet kept");
        let config = TestbedConfig::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 1, 2)))
            .shards(5)
            .build()
            .expect("valid config");
        assert_eq!(config.hosts.len(), 5);
    }

    #[test]
    fn unknown_path_algorithm_is_rejected() {
        let bad = "path-algorithm = \"bellman-ford\"\n[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\nplanes = 1\nsatellites-per-plane = 2";
        assert!(TestbedConfig::from_toml(bad).is_err());
    }

    #[test]
    fn duplicate_ground_station_names_are_rejected() {
        let config = TestbedConfig::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 1, 2)))
            .ground_station(GroundStation::new("a", Geodetic::new(0.0, 0.0, 0.0)))
            .ground_station(GroundStation::new("a", Geodetic::new(1.0, 1.0, 0.0)))
            .build();
        assert!(config.is_err());
    }

    #[test]
    fn builder_produces_valid_configurations() {
        let config = TestbedConfig::builder()
            .seed(7)
            .update_interval_s(5.0)
            .duration_s(900.0)
            .shell(Shell::from_walker(WalkerShell::iridium()))
            .ground_station(GroundStation::new("ptwc", Geodetic::new(21.36, -157.98, 0.0)))
            .bounding_box(BoundingBox::pacific())
            .path_algorithm(PathAlgorithm::Dijkstra)
            .hosts(vec![HostConfig::default(); 4])
            .ballooning(true)
            .build()
            .expect("valid config");
        assert_eq!(config.seed, 7);
        assert_eq!(config.shells[0].satellite_count(), 66);
        assert!(config.ballooning);
    }

    #[test]
    fn invalid_intervals_are_rejected() {
        let result = TestbedConfig::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 1, 2)))
            .update_interval_s(0.0)
            .build();
        assert!(result.is_err());
        let result = TestbedConfig::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 1, 2)))
            .duration_s(-1.0)
            .build();
        assert!(result.is_err());
        let result = TestbedConfig::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 1, 2)))
            .hosts(Vec::new())
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn chaos_section_parses_with_defaults_and_overrides() {
        let toml = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                    planes = 2\nsatellites-per-plane = 4\n\n\
                    [chaos]\nplane-outages = 3\nsolar-storm-cpu-share-percent = 10\n\
                    link-flap-period-s = 2.5\n";
        let config = TestbedConfig::from_toml(toml).expect("parses");
        let chaos = config.chaos.expect("[chaos] section enables the engine");
        assert_eq!(chaos.plane_outages, 3);
        assert_eq!(chaos.solar_storm_cpu_share_percent, 10);
        assert_eq!(chaos.link_flap_period_s, 2.5);
        // Unspecified keys keep the documented defaults.
        let defaults = ChaosConfig::default();
        assert_eq!(chaos.solar_storms, defaults.solar_storms);
        assert_eq!(chaos.region_blackout_radius_km, defaults.region_blackout_radius_km);
        // No [chaos] section → chaos disabled.
        let plain = TestbedConfig::from_toml(
            "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\nplanes = 2\nsatellites-per-plane = 4\n",
        )
        .expect("parses");
        assert!(plain.chaos.is_none());
    }

    #[test]
    fn serve_section_parses_with_defaults_and_overrides() {
        let toml = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                    planes = 2\nsatellites-per-plane = 4\n\n\
                    [serve]\nworkers = 2\nrate-limit-per-epoch = 8\n\
                    auth-tokens = [\"alpha\", \"beta\"]\n";
        let config = TestbedConfig::from_toml(toml).expect("parses");
        let serve = config.serve.expect("[serve] section enables the plane");
        assert_eq!(serve.workers, 2);
        assert_eq!(serve.rate_limit_per_epoch, 8);
        assert_eq!(serve.auth_tokens, vec!["alpha".to_owned(), "beta".to_owned()]);
        // Unspecified keys keep the documented defaults.
        let defaults = ServeConfig::default();
        assert_eq!(serve.port, defaults.port);
        assert_eq!(serve.rate_limit_burst, defaults.rate_limit_burst);
        assert_eq!(serve.keep_alive, defaults.keep_alive);
        // No [serve] section → serving plane disabled.
        let plain = TestbedConfig::from_toml(
            "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\nplanes = 2\nsatellites-per-plane = 4\n",
        )
        .expect("parses");
        assert!(plain.serve.is_none());
    }

    #[test]
    fn serve_section_rejects_invalid_values() {
        let base = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                    planes = 2\nsatellites-per-plane = 4\n\n[serve]\n";
        for bad in [
            "workers = 0\n",
            "workers = -1\n",
            "port = 70000\n",
            "rate-limit-burst = 0\n",
            "auth-tokens = [\"\"]\n",
            "auth-tokens = [1, 2]\n",
        ] {
            let toml = format!("{base}{bad}");
            assert!(
                TestbedConfig::from_toml(&toml).is_err(),
                "accepted invalid serve config {bad:?}"
            );
        }
    }

    #[test]
    fn paths_section_parses_with_defaults_and_overrides() {
        let toml = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                    planes = 2\nsatellites-per-plane = 4\n\n\
                    [paths]\nscope-margin-deg = 5.0\nk-nearest = 4\n";
        let config = TestbedConfig::from_toml(toml).expect("parses");
        let paths = config.paths.expect("[paths] section tunes the scope");
        assert_eq!(paths.scope_margin_deg, 5.0);
        assert_eq!(paths.k_nearest, 4);
        // Unspecified keys keep the documented defaults.
        assert_eq!(paths.landmarks, PathsConfig::default().landmarks);
        // The engine-facing parameters mirror the section.
        let params = paths.scope_params();
        assert_eq!(params.margin_deg, 5.0);
        assert_eq!(params.k_nearest, 4);
        assert_eq!(params.landmarks, 8);
        // No [paths] section → the engine defaults apply.
        let plain = TestbedConfig::from_toml(
            "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\nplanes = 2\nsatellites-per-plane = 4\n",
        )
        .expect("parses");
        assert!(plain.paths.is_none());
        assert_eq!(PathsConfig::default().scope_params(), ScopeParams::default());
    }

    #[test]
    fn paths_section_rejects_invalid_values() {
        let base = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                    planes = 2\nsatellites-per-plane = 4\n\n[paths]\n";
        for bad in ["scope-margin-deg = -1.0\n", "k-nearest = -1\n", "landmarks = -3\n"] {
            let toml = format!("{base}{bad}");
            assert!(
                TestbedConfig::from_toml(&toml).is_err(),
                "accepted invalid paths config {bad:?}"
            );
        }
    }

    #[test]
    fn tenants_section_parses_both_schemas() {
        let shell = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                     planes = 2\nsatellites-per-plane = 4\n";
        // A [tenants] table with a count derives anonymous names.
        let counted = format!("{shell}\n[tenants]\ncount = 3\n");
        let config = TestbedConfig::from_toml(&counted).expect("parses");
        let tenants = config.tenants.expect("[tenants] enables the fan-out");
        assert_eq!(tenants.count, 3);
        assert_eq!(
            tenants.tenant_names(),
            vec!["tenant-0".to_owned(), "tenant-1".to_owned(), "tenant-2".to_owned()]
        );
        // Explicit names in the table form.
        let named = format!("{shell}\n[tenants]\ncount = 2\nnames = [\"red\", \"blue\"]\n");
        let config = TestbedConfig::from_toml(&named).expect("parses");
        assert_eq!(
            config.tenants.unwrap().tenant_names(),
            vec!["red".to_owned(), "blue".to_owned()]
        );
        // One [[tenant]] block per tenant.
        let blocks = format!("{shell}\n[[tenant]]\nname = \"red\"\n\n[[tenant]]\nname = \"blue\"\n");
        let config = TestbedConfig::from_toml(&blocks).expect("parses");
        let tenants = config.tenants.unwrap();
        assert_eq!(tenants.count, 2);
        assert_eq!(tenants.tenant_names(), vec!["red".to_owned(), "blue".to_owned()]);
        // No tenant configuration → solo testbed.
        let plain = TestbedConfig::from_toml(shell).expect("parses");
        assert!(plain.tenants.is_none());
    }

    #[test]
    fn invalid_tenant_configurations_are_rejected() {
        let shell = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                     planes = 2\nsatellites-per-plane = 4\n";
        for bad in [
            "[tenants]\ncount = 0\n",
            "[tenants]\ncount = 5000\n",
            "[tenants]\ncount = 2\nnames = [\"only\"]\n",
            "[tenants]\ncount = 2\nnames = [\"twin\", \"twin\"]\n",
            "[tenants]\ncount = 1\nnames = [\"\"]\n",
            "[tenants]\nnames = [1, 2]\n",
            "[[tenant]]\nname = \"a\"\n\n[tenants]\ncount = 2\n",
            "[[tenant]]\nlabel = \"unnamed\"\n",
        ] {
            let toml = format!("{shell}\n{bad}");
            assert!(
                TestbedConfig::from_toml(&toml).is_err(),
                "accepted invalid tenant config {bad:?}"
            );
        }
    }

    #[test]
    fn scenario_section_parses_with_defaults_and_overrides() {
        let shell = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                     planes = 2\nsatellites-per-plane = 4\n\
                     [[ground-station]]\nname = \"accra\"\nlat = 5.6\nlon = -0.19\n\
                     [[ground-station]]\nname = \"abuja\"\nlat = 9.08\nlon = 7.4\n";
        let toml = format!(
            "{shell}\n[scenario]\ntenants = 8\n\n\
             [[scenario.block]]\nkind = \"cbr\"\npopulation = 250\n\n\
             [[scenario.block]]\nkind = \"iot\"\nname = \"buoys\"\nburst-prob = 0.25\n\
             source = \"abuja\"\nsink = \"accra\"\n"
        );
        let config = TestbedConfig::from_toml(&toml).expect("parses");
        let scenario = config.scenario.clone().expect("[scenario] enables the generator");
        assert_eq!(scenario.tenants, 8);
        assert_eq!(scenario.blocks.len(), 2);
        assert_eq!(scenario.blocks[0].kind, ScenarioBlockKind::Cbr);
        assert_eq!(scenario.blocks[0].population, 250);
        assert_eq!(scenario.blocks[0].effective_name(0), "cbr-0");
        // Unspecified keys keep the documented defaults.
        let defaults = ScenarioBlock::default();
        assert_eq!(scenario.blocks[0].bitrate_bps, defaults.bitrate_bps);
        assert_eq!(scenario.blocks[0].interval_ms, defaults.interval_ms);
        assert_eq!(scenario.blocks[1].kind, ScenarioBlockKind::Iot);
        assert_eq!(scenario.blocks[1].effective_name(1), "buoys");
        assert_eq!(scenario.blocks[1].burst_prob, 0.25);
        assert_eq!(scenario.blocks[1].source, "abuja");
        assert_eq!(scenario.users_per_tenant(), 350);
        assert_eq!(scenario.aggregate_users(), 8 * 350);
        assert_eq!(scenario.tenant_names()[7], "scenario-0007");
        // A scenario config round-trips through serde.
        let json = serde_json::to_string(&config).expect("serializes");
        let back: TestbedConfig = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(config, back);
        // No [scenario] section → no generated fleet.
        let plain = TestbedConfig::from_toml(shell).expect("parses");
        assert!(plain.scenario.is_none());
    }

    #[test]
    fn invalid_scenario_configurations_are_rejected() {
        let shell = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                     planes = 2\nsatellites-per-plane = 4\n\
                     [[ground-station]]\nname = \"accra\"\nlat = 5.6\nlon = -0.19\n";
        for bad in [
            // No blocks at all.
            "[scenario]\ntenants = 4\n",
            // Tenant count out of range.
            "[scenario]\ntenants = 0\n\n[[scenario.block]]\nkind = \"cbr\"\n",
            "[scenario]\ntenants = 5000\n\n[[scenario.block]]\nkind = \"cbr\"\n",
            // Unknown kind, bad parameters, duplicate names.
            "[[scenario.block]]\nkind = \"warp\"\n",
            "[[scenario.block]]\npopulation = 0\n",
            "[[scenario.block]]\ninterval-ms = 0.0\n",
            "[[scenario.block]]\nhit-ratio = 1.5\n",
            "[[scenario.block]]\nburst-prob = -0.1\n",
            "[[scenario.block]]\nburst-factor = 0\n",
            "[[scenario.block]]\nname = \"twin\"\n\n[[scenario.block]]\nname = \"twin\"\n",
            // Unknown ground-station reference.
            "[[scenario.block]]\nsource = \"nowhere\"\n",
            // Mutually exclusive with the [tenants] fan-out.
            "[tenants]\ncount = 2\n\n[[scenario.block]]\nkind = \"cbr\"\n",
        ] {
            let toml = format!("{shell}\n{bad}");
            assert!(
                TestbedConfig::from_toml(&toml).is_err(),
                "accepted invalid scenario config {bad:?}"
            );
        }
        // A scenario without ground stations cannot attach its blocks.
        let no_stations = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                           planes = 2\nsatellites-per-plane = 4\n\n\
                           [[scenario.block]]\nkind = \"cbr\"\n";
        assert!(TestbedConfig::from_toml(no_stations).is_err());
    }

    #[test]
    fn invalid_chaos_parameters_are_rejected() {
        let base = "[[shell]]\naltitude-km = 550.0\ninclination-deg = 53.0\n\
                    planes = 2\nsatellites-per-plane = 4\n\n[chaos]\n";
        for bad in [
            "plane-outage-mean-s = 0.0\n",
            "link-flap-period-s = -2.0\n",
            "solar-storm-cpu-share-percent = 0\n",
            "solar-storm-cpu-share-percent = 150\n",
            "plane-outages = -1\n",
        ] {
            let toml = format!("{base}{bad}");
            assert!(TestbedConfig::from_toml(&toml).is_err(), "accepted {bad:?}");
        }
        let invalid = ChaosConfig { solar_storm_cpu_share_percent: 0, ..ChaosConfig::default() };
        let result = TestbedConfig::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 1, 2)))
            .chaos(invalid)
            .build();
        assert!(result.is_err());
    }
}
