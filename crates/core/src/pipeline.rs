//! The pipelined epoch engine: background precompute of the next
//! constellation epoch.
//!
//! Celestial's core scalability trick (§3.1) is that the state for timestep
//! *t + Δ* is computed **while** timestep *t* is live, so the emulation never
//! stalls on orbital math. This module reproduces that overlap and — in the
//! spirit of RAFDA's separation of concerns — decouples the epoch
//! *computation* policy from the event-loop *application* logic:
//!
//! * [`EpochCompute`] is the pure computation: batch satellite propagation
//!   into retained buffers ([`celestial_constellation::StateBuffers`]), the
//!   parallel [`PathEngine`] solve and the [`ProgrammeStore`] delta. It is a
//!   deterministic function of the sequence of epoch times it is fed.
//! * [`EpochBundle`] is the handover unit: an [`Arc`]-shared immutable
//!   [`SharedEpoch`] core (epoch time, constellation state, path matrix,
//!   machine diff, solve stats — computed **once**) plus one [`TenantEpoch`]
//!   per tenant (programme delta, per-host partition, programme counters)
//!   fanned out from the same solve. Bundles are recycled between the
//!   producer and the consumer, so the steady state moves epochs without
//!   allocating.
//! * [`EpochPipeline`] owns the policy: in [`PipelineMode::Synchronous`]
//!   every epoch is computed inline at the boundary (the seed behaviour); in
//!   [`PipelineMode::Pipelined`] a background worker thread precomputes the
//!   *next* epoch while the testbed plays the current epoch's events and the
//!   boundary handover is (ideally) a channel receive of a finished bundle.
//!
//! # Determinism
//!
//! [`EpochCompute::compute`] depends only on the constellation and the
//! sequence of epoch times — never on wall-clock time or thread scheduling —
//! so a pipelined run is **bit-identical** to a synchronous run: the same
//! `ProgrammeDelta` sequence, the same path matrices, the same positions.
//! The lockstep tests in this module and in `tests/pipeline_lockstep.rs` pin
//! that guarantee. If a caller deviates from the predicted cadence the
//! pipeline composes the mispredicted epoch with a fresh one (see
//! [`compose_deltas`]/[`compose_diffs`]), so even off-cadence callers observe
//! a correct cumulative change stream.
//!
//! # Multi-tenancy
//!
//! One pipeline can drive N independent tenants: [`EpochCompute`] owns one
//! [`ProgrammeStore`] per tenant ([`EpochCompute::set_tenant_count`]), so
//! the dominant shared work — propagation, snapshot diff, path solve — runs
//! once per epoch while the cheap programme walk runs once per tenant. The
//! tenants=1 case is the degenerate solo testbed and is bit-identical to the
//! pre-tenant engine. See `docs/TENANTS.md` for the shared/tenant split.
//!
//! `docs/PIPELINE.md` is the user-facing guide: epoch lifecycle, handover
//! contract and the `pipeline` configuration key.

use crate::netprog::ProgrammeStore;
use celestial_constellation::snapshot::{LinkProperties, MachineActivity};
use celestial_constellation::{
    Constellation, ConstellationDiff, ConstellationSnapshot, ConstellationState, PathAlgorithm,
    PathEngine, ScopeParams, ShortestPaths, SolveKind, SolveScope, SolveStats, StateBuffers,
};
use celestial_netem::{PairProgram, ProgrammeDelta, ShardPlan};
use celestial_types::ids::{NodeId, TenantId};
use celestial_types::time::{SimDuration, SimInstant};
use celestial_types::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// How epoch computation is scheduled relative to the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PipelineMode {
    /// Compute each epoch inline at its boundary (the seed behaviour): the
    /// event loop stalls for the full constellation calculation.
    #[default]
    Synchronous,
    /// Precompute the next epoch on a background worker thread while the
    /// current epoch's events play; the boundary handover is a channel
    /// receive of an already finished bundle.
    Pipelined,
}

impl PipelineMode {
    /// Every mode, in documentation order — the single source of truth for
    /// configuration parsing and error messages.
    pub const ALL: [PipelineMode; 2] = [PipelineMode::Synchronous, PipelineMode::Pipelined];

    /// The configuration-file spelling of the mode (the value accepted by
    /// the `pipeline` TOML key; see `docs/PIPELINE.md`).
    pub fn name(&self) -> &'static str {
        match self {
            PipelineMode::Synchronous => "synchronous",
            PipelineMode::Pipelined => "pipelined",
        }
    }
}

/// Runtime statistics of the epoch pipeline, surfaced through the `/info`
/// route (`pipeline*` fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// The configured mode.
    pub mode: PipelineMode,
    /// Epoch bundles handed over so far.
    pub handovers: u64,
    /// Handovers served from a background precompute (always 0 in
    /// synchronous mode; in pipelined mode everything after the cold first
    /// epoch should count here).
    pub precomputed: u64,
    /// Precomputed epochs whose time did not match the requested boundary
    /// (the caller deviated from the update cadence); the pipeline composed
    /// the mispredicted epoch with a fresh one.
    pub mispredicted: u64,
    /// Wall-clock nanoseconds the most recent handover blocked the event
    /// loop (synchronous mode: the full inline compute time).
    pub last_wait_ns: u64,
    /// Total wall-clock nanoseconds spent blocked at epoch boundaries.
    pub total_wait_ns: u64,
    /// How long the most recent precomputed bundle sat finished before the
    /// boundary arrived (the precompute lead; 0 when the loop had to wait).
    pub last_lead_ns: u64,
    /// Total precompute lead across all handovers.
    pub total_lead_ns: u64,
}

/// Summary of the scale-aware solve scope of one epoch, surfaced through
/// the `/info` route (`scope*` fields). All zeros when the epoch ran an
/// unscoped solve (e.g. the incremental algorithm). See `docs/MEGASCALE.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScopeReport {
    /// Satellites inside the (unexpanded) bounding box this epoch — the
    /// microVMs that are actually live.
    pub active_satellites: usize,
    /// The `area_fraction`-predicted active satellite count (the resource
    /// estimator's expectation), for comparison against the observed value.
    pub predicted_satellites: usize,
    /// Satellites inside the margin-expanded solve scope.
    pub scope_satellites: usize,
    /// Rows the scoped solve ran (scope satellites + ground stations +
    /// k-nearest neighbourhoods + landmarks).
    pub sources: usize,
    /// Nodes every solved row is guaranteed exact for (active satellites +
    /// ground stations — the programme sources).
    pub required: usize,
    /// Landmark rows solved fully for the one-shot fallback's ALT heuristic.
    pub landmarks: usize,
    /// Total nodes settled across all bounded row solves (the work the
    /// scope actually did; a full solve would settle `sources × nodes`).
    pub settled: u64,
}

/// The immutable tenant-shared half of one epoch: everything that is a
/// function of the constellation alone, computed **once** per epoch no
/// matter how many tenants the pipeline serves, and shared behind an [`Arc`]
/// so per-tenant snapshot views are reference-counted, not copied.
#[derive(Debug, Clone)]
pub struct SharedEpoch {
    /// The epoch time in simulated seconds.
    pub t_seconds: f64,
    /// The computed constellation state.
    pub state: ConstellationState,
    /// The solved path matrix (ground stations + active satellites rows).
    pub paths: ShortestPaths,
    /// The machine/link change set relative to the previous epoch.
    pub diff: ConstellationDiff,
    /// How the path solve was executed.
    pub solve: SolveStats,
    /// The solve scope of this epoch (all zeros for unscoped solves).
    pub scope: ScopeReport,
    /// Wall-clock nanoseconds the computation took (shared solve plus all
    /// tenant programme walks).
    pub compute_ns: u64,
    /// When the computation finished (drives the precompute-lead statistic).
    finished_at: Instant,
}

/// The per-tenant half of one epoch: the network-programme change set the
/// tenant's own [`ProgrammeStore`] derived from the shared path matrix.
/// Buffers are recycled epoch-to-epoch via `clone_from`.
#[derive(Debug, Clone, Default)]
pub struct TenantEpoch {
    /// The tenant's network-programme change set relative to the previous
    /// epoch.
    pub delta: ProgrammeDelta,
    /// The per-host partition of `delta`, indexed by host — empty unless
    /// the computation runs with a [`ShardPlan`] (see `docs/SHARDING.md`).
    pub host_deltas: Vec<ProgrammeDelta>,
    /// Number of pairs owned by each shard after this epoch (empty without
    /// a shard plan).
    pub shard_pairs: Vec<usize>,
    /// The programme epoch this change set leads to (1 for the first).
    pub programme_epoch: u64,
    /// Number of pairs in the tenant's full programme after this epoch.
    pub programme_pairs: usize,
}

/// One epoch's complete handover unit: the [`Arc`]-shared immutable core
/// plus one [`TenantEpoch`] per tenant, produced by [`EpochCompute`] and
/// recycled between producer and consumer so the steady state allocates
/// nothing.
///
/// Bundles handed out by the pipeline always hold the *only* strong
/// reference to their core — recycling reuses it via [`Arc::get_mut`] and
/// mints a fresh core only when a consumer kept a clone of the `Arc` alive.
#[derive(Debug)]
pub struct EpochBundle {
    /// The tenant-shared immutable core of the epoch.
    pub shared: Arc<SharedEpoch>,
    /// One programme change set per tenant, indexed by [`TenantId`].
    pub tenants: Vec<TenantEpoch>,
}

impl EpochBundle {
    /// The epoch time in simulated seconds.
    pub fn t_seconds(&self) -> f64 {
        self.shared.t_seconds
    }

    /// Number of tenants this bundle fans out to (at least 1).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The change set of one tenant.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn tenant(&self, tenant: TenantId) -> &TenantEpoch {
        &self.tenants[tenant.index()]
    }

    /// The first tenant's change set — the whole bundle, for a solo
    /// (tenants=1) run.
    pub fn solo(&self) -> &TenantEpoch {
        &self.tenants[0]
    }
}

/// The deterministic epoch computation: constellation state, path solve and
/// programme delta, with all epoch-to-epoch caches (previous snapshot,
/// incremental path engine, retained programme) owned here so the whole
/// computation can move onto a background worker thread.
#[derive(Debug)]
pub struct EpochCompute {
    constellation: Constellation,
    buffers: StateBuffers,
    previous: Option<ConstellationSnapshot>,
    engine: PathEngine,
    /// One retained programme per tenant (at least one); every store walks
    /// the same shared path matrix, so N tenants cost N cheap programme
    /// walks on top of one propagation + solve.
    tenants: Vec<ProgrammeStore>,
    sources: Vec<u32>,
    /// The reusable scale-aware solve scope (see `docs/MEGASCALE.md`): the
    /// solve runs over the margin-expanded bounding box plus per-ground-
    /// station neighbourhoods instead of every row the full solve would.
    scope: SolveScope,
    scope_params: ScopeParams,
}

impl EpochCompute {
    /// Creates the computation for a constellation with as many propagation
    /// worker threads as the machine offers.
    pub fn new(constellation: Constellation) -> Self {
        let buffers = StateBuffers::new();
        Self::with_buffers(constellation, buffers)
    }

    /// Creates the computation with an explicit propagation worker-thread
    /// count (1 reproduces the seed's serial per-satellite loop).
    pub fn with_threads(constellation: Constellation, threads: usize) -> Self {
        Self::with_buffers(constellation, StateBuffers::with_threads(threads))
    }

    fn with_buffers(constellation: Constellation, buffers: StateBuffers) -> Self {
        let engine = PathEngine::new(constellation.path_algorithm());
        // The programme walk's metric phase fans out over the same worker
        // budget as propagation; the recorded delta is bit-identical for
        // every thread count.
        let mut store = ProgrammeStore::new();
        store.set_threads(buffers.threads());
        EpochCompute {
            constellation,
            buffers,
            previous: None,
            engine,
            tenants: vec![store],
            sources: Vec::new(),
            scope: SolveScope::new(),
            scope_params: ScopeParams::default(),
        }
    }

    /// Overrides the scale-aware solve-scope parameters (bounding-box margin,
    /// per-ground-station neighbourhood size, ALT landmark count). Takes
    /// effect from the next epoch; the scoped solve is bit-identical to a
    /// full solve on every row the programme reads for *any* parameter
    /// choice, so this tunes cost, never results.
    pub fn set_scope_params(&mut self, params: ScopeParams) {
        self.scope_params = params;
    }

    /// The constellation this computation serves.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// Enables host-sharded programme partitioning: every epoch additionally
    /// emits one [`ProgrammeDelta`] per host, for every tenant. Must be
    /// called before the first epoch (see
    /// [`crate::netprog::ProgrammeStore::set_shard_plan`]).
    pub fn set_shard_plan(&mut self, plan: Option<ShardPlan>) {
        for store in &mut self.tenants {
            store.set_shard_plan(plan);
        }
    }

    /// Fans the programme computation out to `count` tenants: every epoch
    /// runs the shared propagation + path solve once and one programme walk
    /// per tenant. The new stores inherit the first tenant's shard plan.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, or after the first epoch — the tenant set
    /// is part of the programme's identity, like the shard plan.
    pub fn set_tenant_count(&mut self, count: usize) {
        assert!(count >= 1, "an epoch computation serves at least one tenant");
        assert!(
            self.tenants[0].epoch() == 0,
            "the tenant count must be fixed before the first epoch"
        );
        let template = self.tenants[0].clone();
        self.tenants.resize(count, template);
    }

    /// Number of tenants this computation fans out to (at least 1).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The first tenant's per-host change sets of the most recent epoch
    /// (empty without a shard plan).
    pub fn host_deltas(&self) -> &[ProgrammeDelta] {
        self.tenants[0].host_deltas()
    }

    /// Runs one epoch at `t_seconds`: batch propagation into the retained
    /// buffers, snapshot diff, source-restricted path solve and programme
    /// delta. Returns the machine/link diff; the remaining results stay
    /// inside (`state`, `paths`, `delta`, …) for bundling.
    ///
    /// # Errors
    ///
    /// Returns an error if the orbital propagation fails; the epoch-to-epoch
    /// caches are only advanced on success, so a failed epoch can be retried.
    pub fn compute(&mut self, t_seconds: f64) -> Result<ConstellationDiff> {
        // Propagation is the only fallible step; everything below is
        // infallible, so an error here leaves the previous epoch's caches
        // untouched.
        self.constellation.state_at_into(t_seconds, &mut self.buffers)?;
        let state = self.buffers.state().expect("state was just computed");

        let snapshot = ConstellationSnapshot::from_state(state);
        let diff = match &self.previous {
            Some(previous) => previous.diff(&snapshot),
            None => ConstellationSnapshot::default().diff(&snapshot),
        };
        self.previous = Some(snapshot);

        // Solve shortest paths for the rows the coordinator actually needs:
        // every active satellite and every ground station. Suspended
        // satellites carry traffic *on* paths but never originate a
        // programmed pair, so their rows are skipped. Node indices put
        // satellites before ground stations and `active_satellites` ascends,
        // so `sources` is strictly ascending — the order the programme store
        // requires.
        self.sources.clear();
        for sat in state.active_satellites() {
            self.sources
                .push(state.node_index(NodeId::Satellite(sat))? as u32);
        }
        for gst in 0..state.ground_station_count() as u32 {
            self.sources
                .push(state.node_index(NodeId::ground_station(gst))? as u32);
        }
        // The scale-aware scoped solve: derive the solve scope from the
        // bounding box (margin-expanded, plus per-ground-station
        // neighbourhoods and ALT landmarks) and run bounded rows that are
        // bit-identical to full rows on every programme source — the
        // property-tested exactness contract (`docs/MEGASCALE.md`). The
        // incremental algorithm keeps the full solve: its row reuse across
        // epochs is incompatible with bounded rows.
        if self.constellation.path_algorithm() == PathAlgorithm::Incremental {
            self.engine.solve_sources(state.graph(), &self.sources);
        } else {
            let bounding_box = self.constellation.bounding_box();
            self.scope.derive(state, &bounding_box, &self.scope_params);
            self.engine.solve_scope(state.graph(), &self.scope);
        }
        let paths = self.engine.paths().expect("paths were just solved");
        // The fan-out: everything above ran once; each tenant's programme
        // walk reads the same state and path matrix.
        for store in &mut self.tenants {
            store.update_epoch(state, paths, &self.sources);
        }
        Ok(diff)
    }

    /// The state of the most recent successful epoch.
    pub fn state(&self) -> Option<&ConstellationState> {
        self.buffers.state()
    }

    /// The path matrix of the most recent successful epoch.
    pub fn paths(&self) -> Option<&ShortestPaths> {
        self.engine.paths()
    }

    /// The first tenant's programme delta of the most recent epoch.
    pub fn delta(&self) -> &ProgrammeDelta {
        self.tenants[0].delta()
    }

    /// Statistics of the most recent path solve.
    pub fn last_solve(&self) -> SolveStats {
        self.engine.last_solve()
    }

    /// The solve scope of the most recent epoch, as surfaced through `/info`
    /// (all zeros when the epoch ran an unscoped solve).
    pub fn scope_report(&self) -> ScopeReport {
        let stats = self.engine.last_solve();
        if stats.kind != SolveKind::Scoped {
            return ScopeReport::default();
        }
        let total = self.buffers.state().map_or(0, |s| s.satellite_count());
        let predicted =
            (self.constellation.bounding_box().area_fraction() * total as f64).round() as usize;
        ScopeReport {
            active_satellites: self.scope.active_satellites(),
            predicted_satellites: predicted,
            scope_satellites: self.scope.scope_satellites(),
            sources: stats.scope_sources,
            required: stats.scope_required,
            landmarks: stats.scope_landmarks,
            settled: stats.scope_settled,
        }
    }

    /// The current programme epoch (tenants advance in lockstep).
    pub fn programme_epoch(&self) -> u64 {
        self.tenants[0].epoch()
    }

    /// Number of pairs in the first tenant's current full programme.
    pub fn programme_pairs(&self) -> usize {
        self.tenants[0].pair_count()
    }

    /// Computes one epoch and packages the results into a (possibly
    /// recycled) bundle. The returned bundle always holds the only strong
    /// reference to its shared core: recycling reuses the core in place via
    /// [`Arc::get_mut`] and falls back to a fresh core only when a consumer
    /// kept a clone of the `Arc` alive.
    fn compute_bundle(
        &mut self,
        t_seconds: f64,
        recycled: Option<Box<EpochBundle>>,
    ) -> Result<Box<EpochBundle>> {
        let started = Instant::now();
        let diff = self.compute(t_seconds)?;
        let compute_ns = started.elapsed().as_nanos() as u64;
        let state = self.state().expect("state was just computed");
        let paths = self.paths().expect("paths were just solved");
        let solve = self.last_solve();
        let scope = self.scope_report();
        let mut bundle = match recycled {
            Some(mut bundle) => {
                match Arc::get_mut(&mut bundle.shared) {
                    Some(shared) => {
                        shared.t_seconds = t_seconds;
                        shared.state.clone_from(state);
                        shared.paths.clone_from(paths);
                        shared.diff = diff;
                        shared.solve = solve;
                        shared.scope = scope;
                        shared.compute_ns = compute_ns;
                        shared.finished_at = Instant::now();
                    }
                    // A consumer still holds a view of the recycled core
                    // (e.g. a retained snapshot): mint a fresh one so the
                    // uniqueness invariant is re-established.
                    None => {
                        bundle.shared = Arc::new(SharedEpoch {
                            t_seconds,
                            state: state.clone(),
                            paths: paths.clone(),
                            diff,
                            solve,
                            scope,
                            compute_ns,
                            finished_at: Instant::now(),
                        });
                    }
                }
                bundle
            }
            None => Box::new(EpochBundle {
                shared: Arc::new(SharedEpoch {
                    t_seconds,
                    state: state.clone(),
                    paths: paths.clone(),
                    diff,
                    solve,
                    scope,
                    compute_ns,
                    finished_at: Instant::now(),
                }),
                tenants: Vec::new(),
            }),
        };
        bundle.tenants.resize_with(self.tenants.len(), TenantEpoch::default);
        for (out, store) in bundle.tenants.iter_mut().zip(&self.tenants) {
            out.delta.clone_from(store.delta());
            clone_deltas_into(&mut out.host_deltas, store.host_deltas());
            out.shard_pairs.clear();
            out.shard_pairs.extend_from_slice(store.shard_pair_counts());
            out.programme_epoch = store.epoch();
            out.programme_pairs = store.pair_count();
        }
        Ok(bundle)
    }
}

/// A request to the background worker: compute the epoch at `t`, reusing
/// `recycled` as the output bundle if provided.
struct WorkerRequest {
    t_seconds: f64,
    recycled: Option<Box<EpochBundle>>,
}

/// The epoch scheduling policy: synchronous inline computation or background
/// precompute with boundary handover.
///
/// # Examples
///
/// ```
/// use celestial::pipeline::{EpochCompute, EpochPipeline, PipelineMode};
/// use celestial_constellation::{Constellation, Shell};
/// use celestial_types::time::SimDuration;
///
/// let constellation = Constellation::builder()
///     .shell(Shell::from_walker(celestial_sgp4::WalkerShell::new(550.0, 53.0, 2, 4)))
///     .build()
///     .unwrap();
/// let compute = EpochCompute::new(constellation);
/// let mut pipeline = EpochPipeline::new(compute, PipelineMode::Pipelined, SimDuration::from_secs(2));
/// // Epoch 0 is computed on demand; epoch 2 s is precomputed in the
/// // background while the caller plays epoch 0's events.
/// let bundle = pipeline.advance(0.0).unwrap();
/// assert_eq!(bundle.t_seconds(), 0.0);
/// pipeline.recycle(bundle);
/// let bundle = pipeline.advance(2.0).unwrap();
/// assert_eq!(bundle.solo().programme_epoch, 2);
/// assert_eq!(pipeline.stats().precomputed, 1);
/// # pipeline.recycle(bundle);
/// ```
#[derive(Debug)]
pub struct EpochPipeline {
    interval: SimDuration,
    stats: PipelineStats,
    /// A consumed bundle awaiting reuse by the next computation.
    spare: Option<Box<EpochBundle>>,
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Synchronous {
        compute: Box<EpochCompute>,
    },
    Pipelined {
        requests: mpsc::Sender<WorkerRequest>,
        results: mpsc::Receiver<Result<Box<EpochBundle>>>,
        /// The epoch time the worker is (or will be) computing, if any.
        pending_t: Option<f64>,
        worker: Option<std::thread::JoinHandle<()>>,
    },
}

impl std::fmt::Debug for WorkerRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerRequest")
            .field("t_seconds", &self.t_seconds)
            .field("recycled", &self.recycled.is_some())
            .finish()
    }
}

impl EpochPipeline {
    /// Creates a pipeline over the given computation. In
    /// [`PipelineMode::Pipelined`] the computation moves onto a background
    /// worker thread; `interval` is the cadence used to predict the next
    /// epoch boundary after each handover.
    pub fn new(compute: EpochCompute, mode: PipelineMode, interval: SimDuration) -> Self {
        let inner = match mode {
            PipelineMode::Synchronous => Inner::Synchronous {
                compute: Box::new(compute),
            },
            PipelineMode::Pipelined => {
                let (request_tx, request_rx) = mpsc::channel::<WorkerRequest>();
                let (result_tx, result_rx) = mpsc::channel::<Result<Box<EpochBundle>>>();
                let worker = std::thread::Builder::new()
                    .name("epoch-pipeline".to_owned())
                    .spawn(move || worker_loop(compute, request_rx, result_tx))
                    .expect("spawn epoch-pipeline worker");
                Inner::Pipelined {
                    requests: request_tx,
                    results: result_rx,
                    pending_t: None,
                    worker: Some(worker),
                }
            }
        };
        EpochPipeline {
            interval,
            stats: PipelineStats {
                mode,
                ..PipelineStats::default()
            },
            spare: None,
            inner,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> PipelineMode {
        self.stats.mode
    }

    /// The epoch cadence used to predict the next boundary.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Runtime statistics (handover wait, precompute lead, mispredictions).
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Hands the epoch at `t_seconds` over to the caller.
    ///
    /// Synchronous mode computes it inline. Pipelined mode serves the
    /// precomputed bundle when the prediction matched (blocking only for
    /// whatever computation is still outstanding) and immediately schedules
    /// the precompute of `t_seconds + interval`; a mispredicted epoch is
    /// composed with a freshly computed one so the cumulative change stream
    /// stays correct.
    ///
    /// Callers should hand consumed bundles back via
    /// [`EpochPipeline::recycle`] so the steady state allocates nothing.
    ///
    /// # Errors
    ///
    /// Propagates orbital-propagation failures and reports a dead worker
    /// thread as [`Error::Application`].
    pub fn advance(&mut self, t_seconds: f64) -> Result<Box<EpochBundle>> {
        let wait_start = Instant::now();
        let mut spare = self.spare.take();
        let interval = self.interval;
        let mut precomputed = false;
        let bundle = match &mut self.inner {
            Inner::Synchronous { compute } => compute.compute_bundle(t_seconds, spare.take())?,
            Inner::Pipelined {
                requests,
                results,
                pending_t,
                ..
            } => {
                let bundle = match pending_t.take() {
                    // The prediction matched: the boundary handover is a
                    // channel receive of (ideally) an already finished
                    // bundle.
                    Some(predicted) if predicted == t_seconds => {
                        let bundle = recv_bundle(results)?;
                        self.stats.precomputed += 1;
                        precomputed = true;
                        bundle
                    }
                    // The caller deviated from the cadence. The worker's
                    // epoch caches have already advanced through the
                    // mispredicted epoch, so its change sets must not be
                    // lost: compose them with a fresh epoch at the
                    // requested time.
                    Some(_) => {
                        let stale = recv_bundle(results)?;
                        send_request(requests, t_seconds, spare.take())?;
                        let fresh = recv_bundle(results)?;
                        self.stats.mispredicted += 1;
                        compose_bundles(stale, fresh)
                    }
                    // Cold start: nothing precomputed yet.
                    None => {
                        send_request(requests, t_seconds, spare.take())?;
                        recv_bundle(results)?
                    }
                };
                // Schedule the precompute of the predicted next boundary,
                // shipping the caller's recycled bundle (if any is still
                // unused) to the worker for reuse. The prediction runs
                // through `SimInstant` micros so it is bit-identical to the
                // testbed's own event arithmetic.
                let next = (SimInstant::from_secs_f64(t_seconds) + interval).as_secs_f64();
                send_request(requests, next, spare.take())?;
                *pending_t = Some(next);
                bundle
            }
        };
        self.record_handover(wait_start, &bundle, precomputed);
        Ok(bundle)
    }

    /// Returns a consumed bundle's buffers for reuse by a later computation.
    pub fn recycle(&mut self, bundle: Box<EpochBundle>) {
        self.spare = Some(bundle);
    }

    fn record_handover(&mut self, wait_start: Instant, bundle: &EpochBundle, precomputed: bool) {
        let wait_ns = wait_start.elapsed().as_nanos() as u64;
        // Lead: how long the bundle sat finished before this boundary. Only
        // meaningful for precomputed handovers; inline computes finish the
        // moment the wait ends.
        let lead_ns = if precomputed {
            (bundle.shared.finished_at.elapsed().as_nanos() as u64).saturating_sub(wait_ns)
        } else {
            0
        };
        self.stats.handovers += 1;
        self.stats.last_wait_ns = wait_ns;
        self.stats.total_wait_ns += wait_ns;
        self.stats.last_lead_ns = lead_ns;
        self.stats.total_lead_ns += lead_ns;
    }
}

impl Drop for EpochPipeline {
    fn drop(&mut self) {
        if let Inner::Pipelined {
            requests, worker, ..
        } = &mut self.inner
        {
            // Replace the sender with a dangling one so the worker's receive
            // loop ends, then reap the thread.
            let (dangling, _) = mpsc::channel();
            drop(std::mem::replace(requests, dangling));
            if let Some(handle) = worker.take() {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(
    mut compute: EpochCompute,
    requests: mpsc::Receiver<WorkerRequest>,
    results: mpsc::Sender<Result<Box<EpochBundle>>>,
) {
    while let Ok(request) = requests.recv() {
        let outcome = compute.compute_bundle(request.t_seconds, request.recycled);
        if results.send(outcome).is_err() {
            break;
        }
    }
}

fn send_request(
    requests: &mpsc::Sender<WorkerRequest>,
    t_seconds: f64,
    recycled: Option<Box<EpochBundle>>,
) -> Result<()> {
    requests
        .send(WorkerRequest { t_seconds, recycled })
        .map_err(|_| Error::Application("epoch-pipeline worker terminated".to_owned()))
}

fn recv_bundle(
    results: &mpsc::Receiver<Result<Box<EpochBundle>>>,
) -> Result<Box<EpochBundle>> {
    results
        .recv()
        .map_err(|_| Error::Application("epoch-pipeline worker terminated".to_owned()))?
}

/// Composes two consecutive epoch bundles into one, as if the first epoch
/// had never been observed separately: the final state is the second
/// bundle's, the change sets — shared machine/link diff and every tenant's
/// programme delta — are the composition of both.
fn compose_bundles(first: Box<EpochBundle>, second: Box<EpochBundle>) -> Box<EpochBundle> {
    let mut bundle = second;
    {
        // Both bundles come straight from `compute_bundle`, whose contract
        // guarantees a uniquely owned core.
        let shared = Arc::get_mut(&mut bundle.shared)
            .expect("bundle cores are uniquely owned until handover");
        shared.diff = compose_diffs(&first.shared.diff, &shared.diff);
        shared.compute_ns += first.shared.compute_ns;
    }
    // Tenant change sets compose pairwise: both bundles come from the same
    // computation, so the tenant vectors (and each tenant's host vector)
    // always have the same length.
    for (out, prior) in bundle.tenants.iter_mut().zip(&first.tenants) {
        out.delta = compose_deltas(&prior.delta, &out.delta);
        out.host_deltas = prior
            .host_deltas
            .iter()
            .zip(&out.host_deltas)
            .map(|(a, b)| compose_deltas(a, b))
            .collect();
    }
    bundle
}

/// Clone-from semantics for a retained vector of per-host deltas: refresh in
/// place without re-allocating the change-set vectors in steady state. Also
/// used by the coordinator to retain the bundle's per-host deltas.
pub(crate) fn clone_deltas_into(dst: &mut Vec<ProgrammeDelta>, src: &[ProgrammeDelta]) {
    dst.resize_with(src.len(), ProgrammeDelta::default);
    for (d, s) in dst.iter_mut().zip(src) {
        d.clone_from(s);
    }
}

/// Composes two consecutive machine/link change sets: applying the result to
/// a snapshot is equivalent to applying `first` then `second`, with
/// transitions that cancel out (activated → suspended, added → removed)
/// dropped entirely.
pub fn compose_diffs(first: &ConstellationDiff, second: &ConstellationDiff) -> ConstellationDiff {
    let mut out = ConstellationDiff {
        time_seconds: second.time_seconds,
        ..ConstellationDiff::default()
    };

    // Machines. Track per node: whether it was created/destroyed in the
    // window, and its first-known prior activity vs its final activity. The
    // first operation seen for a node reveals its pre-window state
    // (`activated` ⇒ it was suspended, `suspended` ⇒ it was active).
    #[derive(Clone, Copy)]
    struct MachineTrack {
        prior: Option<MachineActivity>,
        added: bool,
        fin: Option<MachineActivity>, // None = removed
    }
    let mut machines: BTreeMap<NodeId, MachineTrack> = BTreeMap::new();
    let track = |node: NodeId,
                     machines: &mut BTreeMap<NodeId, MachineTrack>,
                     prior: Option<MachineActivity>,
                     added: bool,
                     fin: Option<MachineActivity>| {
        machines
            .entry(node)
            .and_modify(|t| {
                t.added = t.added || added;
                t.fin = fin;
            })
            .or_insert(MachineTrack { prior, added, fin });
    };
    for diff in [first, second] {
        for &(node, activity) in &diff.machines_added {
            track(node, &mut machines, None, true, Some(activity));
        }
        for &node in &diff.machines_removed {
            track(node, &mut machines, Some(MachineActivity::Active), false, None);
        }
        for &node in &diff.activated {
            track(
                node,
                &mut machines,
                Some(MachineActivity::Suspended),
                false,
                Some(MachineActivity::Active),
            );
        }
        for &node in &diff.suspended {
            track(
                node,
                &mut machines,
                Some(MachineActivity::Active),
                false,
                Some(MachineActivity::Suspended),
            );
        }
    }
    for (node, track) in machines {
        match (track.added, track.prior, track.fin) {
            // Created in the window and still present.
            (true, _, Some(activity)) => out.machines_added.push((node, activity)),
            // Created and destroyed within the window: invisible.
            (true, _, None) => {}
            (false, _, None) => out.machines_removed.push(node),
            (false, prior, Some(fin)) => {
                if prior != Some(fin) {
                    match fin {
                        MachineActivity::Active => out.activated.push(node),
                        MachineActivity::Suspended => out.suspended.push(node),
                    }
                }
            }
        }
    }

    // Links: same pattern. First operation reveals pre-window presence
    // (`added` ⇒ absent, `changed`/`removed` ⇒ present).
    #[derive(Clone, Copy)]
    struct LinkTrack<P> {
        was_present: bool,
        fin: Option<P>, // None = removed
    }
    let mut links: BTreeMap<(NodeId, NodeId), LinkTrack<LinkProperties>> = BTreeMap::new();
    for diff in [first, second] {
        for &(pair, props) in &diff.links_added {
            links
                .entry(pair)
                .and_modify(|t| t.fin = Some(props))
                .or_insert(LinkTrack { was_present: false, fin: Some(props) });
        }
        for &(pair, props) in &diff.links_changed {
            links
                .entry(pair)
                .and_modify(|t| t.fin = Some(props))
                .or_insert(LinkTrack { was_present: true, fin: Some(props) });
        }
        for &pair in &diff.links_removed {
            links
                .entry(pair)
                .and_modify(|t| t.fin = None)
                .or_insert(LinkTrack { was_present: true, fin: None });
        }
    }
    for (pair, track) in links {
        match (track.was_present, track.fin) {
            (false, Some(props)) => out.links_added.push((pair, props)),
            (false, None) => {}
            (true, None) => out.links_removed.push(pair),
            // Present before and after: re-shape. The properties may happen
            // to equal the pre-window ones; re-programming an unchanged link
            // is harmless, losing a change is not.
            (true, Some(props)) => out.links_changed.push((pair, props)),
        }
    }
    out
}

/// Composes two consecutive programme deltas: applying the result to a rule
/// table is equivalent to applying `first` then `second`. Pairs that are
/// added and removed within the window vanish; pairs that existed before and
/// end re-programmed come out as `changed`.
pub fn compose_deltas(first: &ProgrammeDelta, second: &ProgrammeDelta) -> ProgrammeDelta {
    #[derive(Clone, Copy)]
    struct PairTrack {
        was_programmed: bool,
        fin: Option<PairProgram>, // None = removed
    }
    let mut pairs: BTreeMap<(NodeId, NodeId), PairTrack> = BTreeMap::new();
    for delta in [first, second] {
        for pair in &delta.added {
            pairs
                .entry((pair.a, pair.b))
                .and_modify(|t| t.fin = Some(*pair))
                .or_insert(PairTrack { was_programmed: false, fin: Some(*pair) });
        }
        for pair in &delta.changed {
            pairs
                .entry((pair.a, pair.b))
                .and_modify(|t| t.fin = Some(*pair))
                .or_insert(PairTrack { was_programmed: true, fin: Some(*pair) });
        }
        for &(a, b) in &delta.removed {
            pairs
                .entry((a, b))
                .and_modify(|t| t.fin = None)
                .or_insert(PairTrack { was_programmed: true, fin: None });
        }
    }
    let mut out = ProgrammeDelta {
        epoch: second.epoch,
        ..ProgrammeDelta::default()
    };
    for ((a, b), track) in pairs {
        match (track.was_programmed, track.fin) {
            (false, Some(program)) => out.added.push(program),
            (false, None) => {}
            (true, None) => out.removed.push((a, b)),
            (true, Some(program)) => out.changed.push(program),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_constellation::{BoundingBox, GroundStation, LinkKind, Shell};
    use celestial_sgp4::WalkerShell;
    use celestial_types::geo::Geodetic;
    use celestial_types::{Bandwidth, Latency};

    fn constellation() -> Constellation {
        Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap()
    }

    fn program(a: u32, b: u32, ms: f64, mbps: u64) -> PairProgram {
        PairProgram {
            a: NodeId::ground_station(a),
            b: NodeId::ground_station(b),
            latency: Latency::from_millis_f64(ms),
            bandwidth: Bandwidth::from_mbps(mbps),
        }
    }

    #[test]
    fn pipelined_bundles_are_bit_identical_to_synchronous_ones() {
        let interval = SimDuration::from_secs(2);
        let mut sync =
            EpochPipeline::new(EpochCompute::new(constellation()), PipelineMode::Synchronous, interval);
        let mut pipe =
            EpochPipeline::new(EpochCompute::new(constellation()), PipelineMode::Pipelined, interval);
        let mut t = SimInstant::EPOCH;
        for epoch in 0..12 {
            let a = sync.advance(t.as_secs_f64()).expect("sync epoch");
            let b = pipe.advance(t.as_secs_f64()).expect("pipelined epoch");
            assert_eq!(a.t_seconds(), b.t_seconds(), "epoch {epoch}");
            assert_eq!(a.shared.state, b.shared.state, "state diverged at epoch {epoch}");
            assert_eq!(a.shared.paths, b.shared.paths, "paths diverged at epoch {epoch}");
            assert_eq!(a.shared.diff, b.shared.diff, "diff diverged at epoch {epoch}");
            assert_eq!(a.solo().delta, b.solo().delta, "delta diverged at epoch {epoch}");
            assert_eq!(a.shared.solve, b.shared.solve, "solve stats diverged at epoch {epoch}");
            assert_eq!(a.solo().programme_epoch, b.solo().programme_epoch);
            assert_eq!(a.solo().programme_pairs, b.solo().programme_pairs);
            sync.recycle(a);
            pipe.recycle(b);
            t = t + interval;
        }
        // Every epoch after the cold start was served from the precompute.
        assert_eq!(pipe.stats().precomputed, 11);
        assert_eq!(pipe.stats().mispredicted, 0);
        assert_eq!(pipe.stats().handovers, 12);
        assert_eq!(sync.stats().precomputed, 0);
    }

    #[test]
    fn mispredicted_epochs_compose_into_a_correct_change_stream() {
        // The pipelined caller deviates from the 2 s cadence at the third
        // boundary; the synchronous reference is fed the exact same epoch
        // sequence the worker actually computed (0, 2, then the prefetched 4
        // composed with 1.25).
        let interval = SimDuration::from_secs(2);
        let mut pipe =
            EpochPipeline::new(EpochCompute::new(constellation()), PipelineMode::Pipelined, interval);
        let mut sync =
            EpochPipeline::new(EpochCompute::new(constellation()), PipelineMode::Synchronous, interval);

        let mut replayed: BTreeMap<(NodeId, NodeId), (Latency, Bandwidth)> = BTreeMap::new();
        let mut reference: BTreeMap<(NodeId, NodeId), (Latency, Bandwidth)> = BTreeMap::new();
        let apply = |map: &mut BTreeMap<(NodeId, NodeId), (Latency, Bandwidth)>,
                         delta: &ProgrammeDelta| {
            for p in delta.added.iter().chain(&delta.changed) {
                map.insert((p.a, p.b), (p.latency, p.bandwidth));
            }
            for pair in &delta.removed {
                map.remove(pair);
            }
        };

        for t in [0.0, 2.0, 1.25] {
            let bundle = pipe.advance(t).expect("pipelined epoch");
            apply(&mut replayed, &bundle.solo().delta);
            pipe.recycle(bundle);
        }
        for t in [0.0, 2.0, 4.0, 1.25] {
            let bundle = sync.advance(t).expect("sync epoch");
            apply(&mut reference, &bundle.solo().delta);
            sync.recycle(bundle);
        }
        assert_eq!(pipe.stats().mispredicted, 1);
        assert_eq!(replayed, reference, "composed change stream diverged");
    }

    #[test]
    fn mispredicted_epochs_compose_every_tenants_change_stream() {
        // Same off-cadence sequence, but with a 3-tenant fan-out: every
        // tenant's composed change stream must match the solo reference.
        let interval = SimDuration::from_secs(2);
        let mut fleet = EpochCompute::new(constellation());
        fleet.set_tenant_count(3);
        let mut pipe = EpochPipeline::new(fleet, PipelineMode::Pipelined, interval);
        let mut sync =
            EpochPipeline::new(EpochCompute::new(constellation()), PipelineMode::Synchronous, interval);

        let mut replayed: Vec<BTreeMap<(NodeId, NodeId), (Latency, Bandwidth)>> =
            vec![BTreeMap::new(); 3];
        let mut reference: BTreeMap<(NodeId, NodeId), (Latency, Bandwidth)> = BTreeMap::new();
        let apply = |map: &mut BTreeMap<(NodeId, NodeId), (Latency, Bandwidth)>,
                         delta: &ProgrammeDelta| {
            for p in delta.added.iter().chain(&delta.changed) {
                map.insert((p.a, p.b), (p.latency, p.bandwidth));
            }
            for pair in &delta.removed {
                map.remove(pair);
            }
        };

        for t in [0.0, 2.0, 1.25] {
            let bundle = pipe.advance(t).expect("pipelined epoch");
            assert_eq!(bundle.tenant_count(), 3);
            for (map, tenant) in replayed.iter_mut().zip(&bundle.tenants) {
                apply(map, &tenant.delta);
            }
            pipe.recycle(bundle);
        }
        for t in [0.0, 2.0, 4.0, 1.25] {
            let bundle = sync.advance(t).expect("sync epoch");
            apply(&mut reference, &bundle.solo().delta);
            sync.recycle(bundle);
        }
        assert_eq!(pipe.stats().mispredicted, 1);
        for (tenant, map) in replayed.iter().enumerate() {
            assert_eq!(map, &reference, "tenant {tenant} composed stream diverged");
        }
    }

    #[test]
    fn fanned_out_tenants_match_the_solo_programme() {
        // Identical per-tenant configuration ⇒ every tenant's change set is
        // the solo tenant's, epoch after epoch, off one shared solve.
        let mut solo = EpochCompute::new(constellation());
        let mut fleet = EpochCompute::new(constellation());
        fleet.set_tenant_count(4);
        assert_eq!(fleet.tenant_count(), 4);
        for step in 0..4 {
            let t = step as f64 * 2.0;
            let a = solo.compute_bundle(t, None).expect("solo epoch");
            let b = fleet.compute_bundle(t, None).expect("fleet epoch");
            assert_eq!(b.tenant_count(), 4);
            assert_eq!(a.shared.state, b.shared.state, "shared state diverged at t={t}");
            assert_eq!(a.shared.paths, b.shared.paths, "shared paths diverged at t={t}");
            for (index, tenant) in b.tenants.iter().enumerate() {
                assert_eq!(
                    tenant.delta,
                    a.solo().delta,
                    "tenant {index} delta diverged at t={t}"
                );
                assert_eq!(tenant.programme_epoch, a.solo().programme_epoch);
                assert_eq!(tenant.programme_pairs, a.solo().programme_pairs);
            }
            assert_eq!(
                b.tenant(celestial_types::ids::TenantId(2)).delta,
                b.solo().delta
            );
        }
    }

    #[test]
    #[should_panic(expected = "before the first epoch")]
    fn changing_the_tenant_count_mid_life_panics() {
        let mut compute = EpochCompute::new(constellation());
        compute.compute(0.0).expect("epoch");
        compute.set_tenant_count(2);
    }

    #[test]
    fn compose_deltas_covers_every_transition() {
        let d1 = ProgrammeDelta {
            epoch: 3,
            added: vec![program(0, 1, 4.0, 100), program(0, 2, 6.0, 100)],
            changed: vec![program(0, 3, 5.0, 100)],
            removed: vec![(NodeId::ground_station(0), NodeId::ground_station(4))],
        };
        let d2 = ProgrammeDelta {
            epoch: 4,
            // Re-added after removal in d1 → net re-shape.
            added: vec![program(0, 4, 7.0, 100)],
            changed: vec![program(0, 1, 9.0, 100)],
            // (0, 2) was added in d1 → net invisible.
            removed: vec![(NodeId::ground_station(0), NodeId::ground_station(2))],
        };
        let composed = compose_deltas(&d1, &d2);
        assert_eq!(composed.epoch, 4);
        // (0,1): added then re-shaped → added with the final values.
        assert_eq!(composed.added, vec![program(0, 1, 9.0, 100)]);
        // (0,3): changed in d1, untouched in d2 → changed; (0,4): removed
        // then re-added → changed.
        assert_eq!(
            composed.changed,
            vec![program(0, 3, 5.0, 100), program(0, 4, 7.0, 100)]
        );
        assert!(composed.removed.is_empty());
    }

    #[test]
    fn compose_diffs_cancels_round_trips() {
        let gst = NodeId::ground_station(0);
        let sat_a = NodeId::satellite(0, 1);
        let sat_b = NodeId::satellite(0, 2);
        let props = |ms: f64| LinkProperties {
            latency: Latency::from_millis_f64(ms),
            bandwidth: Bandwidth::from_gbps(10),
            kind: LinkKind::Isl,
        };
        let d1 = ConstellationDiff {
            time_seconds: 2.0,
            activated: vec![sat_a],
            suspended: vec![sat_b],
            links_added: vec![((sat_a, sat_b), props(1.0))],
            links_changed: vec![((gst, sat_a), props(2.0))],
            ..ConstellationDiff::default()
        };
        let d2 = ConstellationDiff {
            time_seconds: 4.0,
            // sat_a round-trips back to suspended; sat_b comes back.
            activated: vec![sat_b],
            suspended: vec![sat_a],
            links_removed: vec![(sat_a, sat_b)],
            links_changed: vec![((gst, sat_a), props(3.0))],
            ..ConstellationDiff::default()
        };
        let composed = compose_diffs(&d1, &d2);
        assert_eq!(composed.time_seconds, 4.0);
        // Both machine transitions cancel.
        assert!(composed.activated.is_empty(), "{:?}", composed.activated);
        assert!(composed.suspended.is_empty(), "{:?}", composed.suspended);
        // The added-then-removed link vanishes; the double change collapses
        // to the final properties.
        assert!(composed.links_added.is_empty());
        assert!(composed.links_removed.is_empty());
        assert_eq!(composed.links_changed, vec![((gst, sat_a), props(3.0))]);
    }

    #[test]
    fn compose_diffs_keeps_net_transitions() {
        let sat = NodeId::satellite(0, 7);
        let d1 = ConstellationDiff {
            time_seconds: 2.0,
            suspended: vec![sat],
            ..ConstellationDiff::default()
        };
        let d2 = ConstellationDiff {
            time_seconds: 4.0,
            ..ConstellationDiff::default()
        };
        let composed = compose_diffs(&d1, &d2);
        assert_eq!(composed.suspended, vec![sat]);
        let composed = compose_diffs(&d2, &d1);
        assert_eq!(composed.suspended, vec![sat]);
        assert_eq!(composed.time_seconds, 2.0);
    }

    #[test]
    fn compose_is_equivalent_to_sequential_snapshot_application() {
        // Property check against the snapshot algebra: applying the composed
        // diff equals applying the two diffs in order.
        let c = constellation();
        let s0 = ConstellationSnapshot::from_state(&c.state_at(0.0).unwrap());
        let s1 = ConstellationSnapshot::from_state(&c.state_at(120.0).unwrap());
        let s2 = ConstellationSnapshot::from_state(&c.state_at(240.0).unwrap());
        let d01 = s0.diff(&s1);
        let d12 = s1.diff(&s2);
        let composed = compose_diffs(&d01, &d12);
        assert_eq!(s0.apply(&composed), s2);
    }

    #[test]
    fn epoch_compute_is_deterministic_across_thread_counts() {
        // Bit-identical results regardless of the propagation fan-out: the
        // pipelined worker may see a different thread budget than a
        // synchronous caller, and it must not matter.
        let mut one = EpochCompute::with_threads(constellation(), 1);
        let mut many = EpochCompute::with_threads(constellation(), 5);
        for step in 0..4 {
            let t = step as f64 * 2.0;
            let d1 = one.compute(t).expect("epoch");
            let d2 = many.compute(t).expect("epoch");
            assert_eq!(d1, d2, "diff diverged at t={t}");
            assert_eq!(one.state(), many.state(), "state diverged at t={t}");
            assert_eq!(one.paths(), many.paths(), "paths diverged at t={t}");
            assert_eq!(one.delta(), many.delta(), "delta diverged at t={t}");
        }
    }

    #[test]
    fn recycled_bundles_rotate_through_the_pipelined_worker() {
        // Regression: the caller's recycled bundle must actually reach the
        // worker's prefetch, so the steady state rotates a fixed set of
        // bundle allocations instead of deep-cloning a fresh one per epoch.
        let interval = SimDuration::from_secs(2);
        let mut pipe =
            EpochPipeline::new(EpochCompute::new(constellation()), PipelineMode::Pipelined, interval);
        let mut seen: Vec<usize> = Vec::new();
        let mut cores: Vec<usize> = Vec::new();
        let mut t = SimInstant::EPOCH;
        for _ in 0..8 {
            let bundle = pipe.advance(t.as_secs_f64()).expect("epoch");
            assert_eq!(
                Arc::strong_count(&bundle.shared),
                1,
                "handed-over cores are uniquely owned"
            );
            seen.push(&*bundle as *const EpochBundle as usize);
            cores.push(Arc::as_ptr(&bundle.shared) as usize);
            pipe.recycle(bundle);
            t = t + interval;
        }
        // The first two epochs may mint fresh bundles (nothing recycled was
        // available yet when their computes were scheduled); from then on
        // the same allocations must rotate — the boxes and the shared cores
        // inside them alike.
        let steady: std::collections::BTreeSet<usize> = seen[2..].iter().copied().collect();
        assert!(
            steady.iter().all(|address| seen[..2].contains(address)),
            "steady-state epochs minted fresh bundles: {seen:?}"
        );
        let steady_cores: std::collections::BTreeSet<usize> = cores[2..].iter().copied().collect();
        assert!(
            steady_cores.iter().all(|address| cores[..2].contains(address)),
            "steady-state epochs minted fresh shared cores: {cores:?}"
        );
    }

    #[test]
    fn dropping_a_pipelined_pipeline_reaps_the_worker() {
        let mut pipe = EpochPipeline::new(
            EpochCompute::new(constellation()),
            PipelineMode::Pipelined,
            SimDuration::from_secs(2),
        );
        let bundle = pipe.advance(0.0).expect("epoch 0");
        pipe.recycle(bundle);
        // Dropping with a prefetch still in flight must not hang.
        drop(pipe);
    }
}
