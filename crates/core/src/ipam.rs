//! IP address management for emulated machines.
//!
//! Celestial assigns every microVM a virtual network interface with an
//! address derived from its identity, so that addresses are predictable and
//! applications can be pointed at them through DNS without knowing the
//! underlying calculation (§3.2). The scheme reproduced here mirrors the
//! original: the `10.0.0.0/8` space is divided per shell, every machine gets
//! a /30 subnet containing its gateway (tap) address and its guest address.

use celestial_types::ids::NodeId;
use celestial_types::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VirtualIp(pub u32);

impl VirtualIp {
    /// The four dotted-quad octets of the address.
    pub fn octets(&self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for VirtualIp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// The /30 subnet assigned to one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSubnet {
    /// The network base address of the /30.
    pub network: VirtualIp,
    /// The host-side gateway (tap device) address.
    pub gateway: VirtualIp,
    /// The guest address applications connect to.
    pub guest: VirtualIp,
}

/// The index of the ground-station "shell" in the addressing scheme: ground
/// stations use the shell number after the last satellite shell, matching the
/// original implementation where `gst` is addressed as its own group.
const GROUND_STATION_GROUP: u32 = 0xFF;

/// The IP address manager.
///
/// Addresses are computed, not allocated, so the manager needs no state
/// beyond the number of shells it validates against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct IpAddressManager {
    shell_count: u16,
}

impl IpAddressManager {
    /// Creates an address manager for a constellation with `shell_count`
    /// shells.
    pub fn new(shell_count: u16) -> Self {
        IpAddressManager { shell_count }
    }

    /// The /30 subnet of a node's machine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] if the node's shell is out of range or
    /// the node index does not fit the addressing scheme (2^14 machines per
    /// group).
    pub fn subnet(&self, node: NodeId) -> Result<MachineSubnet> {
        let (group, index) = match node {
            NodeId::Satellite(sat) => {
                if sat.shell.0 >= self.shell_count {
                    return Err(Error::unknown_node(format!("{sat}")));
                }
                (u32::from(sat.shell.0), sat.index)
            }
            NodeId::GroundStation(gst) => (GROUND_STATION_GROUP, gst.0),
        };
        if index >= (1 << 14) {
            return Err(Error::unknown_node(format!(
                "node index {index} exceeds the addressing scheme"
            )));
        }
        // 10.group.0.0/16, 4 addresses per machine.
        let network = (10u32 << 24) | (group << 16) | (index << 2);
        Ok(MachineSubnet {
            network: VirtualIp(network),
            gateway: VirtualIp(network + 1),
            guest: VirtualIp(network + 2),
        })
    }

    /// The guest address of a node's machine (the address DNS resolves to).
    ///
    /// # Errors
    ///
    /// See [`subnet`](IpAddressManager::subnet).
    pub fn guest_address(&self, node: NodeId) -> Result<VirtualIp> {
        Ok(self.subnet(node)?.guest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn satellite_addresses_follow_the_scheme() {
        let ipam = IpAddressManager::new(2);
        let subnet = ipam.subnet(NodeId::satellite(0, 0)).unwrap();
        assert_eq!(subnet.network.to_string(), "10.0.0.0");
        assert_eq!(subnet.gateway.to_string(), "10.0.0.1");
        assert_eq!(subnet.guest.to_string(), "10.0.0.2");
        let sat878 = ipam.subnet(NodeId::satellite(0, 878)).unwrap();
        assert_eq!(sat878.guest.to_string(), "10.0.13.186");
        let shell1 = ipam.subnet(NodeId::satellite(1, 0)).unwrap();
        assert_eq!(shell1.guest.to_string(), "10.1.0.2");
    }

    #[test]
    fn ground_stations_use_their_own_group() {
        let ipam = IpAddressManager::new(1);
        let gst = ipam.subnet(NodeId::ground_station(3)).unwrap();
        assert_eq!(gst.guest.to_string(), "10.255.0.14");
    }

    #[test]
    fn out_of_range_nodes_are_rejected() {
        let ipam = IpAddressManager::new(1);
        assert!(ipam.subnet(NodeId::satellite(1, 0)).is_err());
        assert!(ipam.subnet(NodeId::satellite(0, 1 << 14)).is_err());
    }

    #[test]
    fn display_formats_dotted_quads() {
        let ip = VirtualIp(0x0A01_0203);
        assert_eq!(ip.octets(), [10, 1, 2, 3]);
        assert_eq!(ip.to_string(), "10.1.2.3");
    }

    proptest! {
        #[test]
        fn addresses_are_unique_across_nodes(
            shell_a in 0u16..5, index_a in 0u32..2000,
            shell_b in 0u16..5, index_b in 0u32..2000,
            gst in 0u32..500,
        ) {
            let ipam = IpAddressManager::new(5);
            let a = ipam.guest_address(NodeId::satellite(shell_a, index_a)).unwrap();
            let b = ipam.guest_address(NodeId::satellite(shell_b, index_b)).unwrap();
            let g = ipam.guest_address(NodeId::ground_station(gst)).unwrap();
            if (shell_a, index_a) != (shell_b, index_b) {
                prop_assert_ne!(a, b);
            } else {
                prop_assert_eq!(a, b);
            }
            prop_assert_ne!(a, g);
            // Gateway and guest never collide.
            let subnet = ipam.subnet(NodeId::satellite(shell_a, index_a)).unwrap();
            prop_assert_ne!(subnet.gateway, subnet.guest);
        }
    }
}
