//! Celestial: a virtual software-system testbed for the LEO edge.
//!
//! This crate is the Rust reproduction of the system described in
//! *Celestial: Virtual Software System Testbeds for the LEO Edge*
//! (Pfandzelter & Bermbach, Middleware 2022). It ties the substrates of the
//! workspace together into the architecture of the paper's Fig. 2:
//!
//! * [`config`] — the single configuration file (orbital, network, compute
//!   and bounding-box parameters) with a hand-written TOML-subset parser,
//! * [`coordinator`] — the central coordinator: periodic constellation
//!   updates, state diffing and distribution to hosts,
//! * [`machine_manager`] — the per-host agent that applies machine lifecycle
//!   and network-shaping updates,
//! * [`ipam`] and [`dns`] — virtual IP address management and the
//!   `*.celestial` DNS service,
//! * [`database`] and [`info_api`] — the coordinator's database and the
//!   HTTP-style info API exposed to emulated machines,
//! * [`netprog`] — the delta-based network-programming engine (retained
//!   per-pair programme, per-epoch `{added, changed, removed}` change sets),
//! * [`pipeline`] — the pipelined epoch engine: the next constellation epoch
//!   is precomputed on a background worker while the current epoch's events
//!   play, with a synchronous mode and a bit-for-bit determinism guarantee
//!   (see `docs/PIPELINE.md`),
//! * [`snapshot`] — epoch-versioned, `Arc`-swapped read snapshots of the
//!   database so the serving plane answers queries lock-free against a
//!   consistent epoch (see `docs/SERVE.md`),
//! * [`estimator`] — the resource estimator and cloud cost model,
//! * [`testbed`] — the high-level façade that runs guest applications over
//!   the emulated constellation in virtual time.
//!
//! # Quickstart
//!
//! ```
//! use celestial::config::TestbedConfig;
//! use celestial::testbed::Testbed;
//!
//! let toml = r#"
//! seed = 7
//! update-interval-s = 2.0
//! duration-s = 30.0
//!
//! [bounding-box]
//! lat-min = -5.0
//! lat-max = 25.0
//! lon-min = -15.0
//! lon-max = 25.0
//!
//! [[shell]]
//! altitude-km = 550.0
//! inclination-deg = 53.0
//! planes = 12
//! satellites-per-plane = 16
//!
//! [[ground-station]]
//! name = "accra"
//! lat = 5.6037
//! lon = -0.187
//! "#;
//! let config = TestbedConfig::from_toml(toml).unwrap();
//! let testbed = Testbed::new(&config).unwrap();
//! assert_eq!(testbed.constellation().satellite_count(), 192);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod coordinator;
pub mod database;
pub mod dns;
pub mod estimator;
pub mod info_api;
pub mod invariants;
pub mod ipam;
pub mod machine_manager;
pub mod netprog;
pub mod pipeline;
pub mod snapshot;
pub mod testbed;
pub mod toml;

pub use config::TestbedConfig;
pub use coordinator::Coordinator;
pub use database::InfoDatabase;
pub use estimator::{CostModel, ResourceEstimator};
pub use machine_manager::MachineManager;
pub use pipeline::{
    EpochBundle, EpochCompute, EpochPipeline, PipelineMode, PipelineStats, ScopeReport,
    SharedEpoch, TenantEpoch,
};
pub use snapshot::{EpochSnapshot, SnapshotReader, SnapshotStore, TenantView};
pub use testbed::{AppContext, GuestApplication, Testbed, TenantRuntime};
