//! System-level invariant checkers for chaos and soak runs.
//!
//! The chaos engine (`docs/CHAOS.md`) turns two of this repository's
//! foundational guarantees into properties that must hold *under sustained
//! correlated churn*:
//!
//! 1. **No uncapped pairs** — no network programme may ever contain a
//!    [`Bandwidth::INFINITY`](celestial_types::Bandwidth::INFINITY) entry,
//!    however many links chaos removes ([`check_no_uncapped`]).
//! 2. **Convergence** — once the last chaos window has recovered, the
//!    programme must be bit-identical to a fault-free reference run within
//!    one epoch ([`programme_divergence`]).
//!
//! A third checker, [`SoakMeter`], gates long soak runs: journal growth and
//! allocation counts per block must stay flat once the run reaches steady
//! state, extending the zero-steady-state-allocation capacity tests to a
//! 24 h-simulated horizon (`BENCH_chaos.json`).

use crate::coordinator::PairProgram;

/// Checks that no programmed pair is uncapped. Returns one description per
/// violating pair (empty means the invariant holds).
pub fn check_no_uncapped(programme: &[PairProgram]) -> Vec<String> {
    programme
        .iter()
        .filter(|pair| pair.bandwidth.is_infinite())
        .map(|pair| format!("uncapped pair {} <-> {}", pair.a, pair.b))
        .collect()
}

/// Compares a post-recovery programme against a fault-free reference,
/// bit-exactly. Returns one description per difference (empty means the
/// programmes have converged).
///
/// Both slices must be in the coordinator's canonical order (ascending pair
/// key), which [`Coordinator::network_programme`](crate::Coordinator::network_programme)
/// guarantees.
pub fn programme_divergence(reference: &[PairProgram], observed: &[PairProgram]) -> Vec<String> {
    let mut diffs = Vec::new();
    if reference.len() != observed.len() {
        diffs.push(format!(
            "pair count diverged: reference {} vs observed {}",
            reference.len(),
            observed.len()
        ));
    }
    for (r, o) in reference.iter().zip(observed) {
        if r != o {
            diffs.push(format!(
                "pair diverged: reference {} <-> {} ({:?}, {:?}) vs observed {} <-> {} ({:?}, {:?})",
                r.a, r.b, r.latency, r.bandwidth, o.a, o.b, o.latency, o.bandwidth
            ));
            if diffs.len() >= 16 {
                diffs.push("… further differences elided".to_owned());
                break;
            }
        }
    }
    diffs
}

/// Flatness gate for soak runs: record one `(journal_bytes, allocations)`
/// growth sample per block, then ask whether the post-warmup blocks stay
/// flat.
///
/// "Flat" means every steady-state block's growth stays within a
/// multiplicative tolerance of the first steady-state block (plus a small
/// absolute slack, so an exactly-zero baseline does not reject benign
/// one-off allocations). A leak — growth that trends upward block over
/// block — fails the gate; steady periodic work passes it.
#[derive(Debug, Clone, Default)]
pub struct SoakMeter {
    blocks: Vec<(u64, u64)>,
}

/// Absolute slack for the journal gate, bytes per block.
const JOURNAL_SLACK_BYTES: u64 = 4096;
/// Absolute slack for the allocation gate, allocations per block.
const ALLOC_SLACK: u64 = 256;

impl SoakMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        SoakMeter::default()
    }

    /// Records the growth observed during one block.
    pub fn record_block(&mut self, journal_bytes: u64, allocations: u64) {
        self.blocks.push((journal_bytes, allocations));
    }

    /// The recorded per-block growth samples.
    pub fn blocks(&self) -> &[(u64, u64)] {
        &self.blocks
    }

    /// Checks flatness, ignoring the first `warmup_blocks` blocks (chaos
    /// windows and buffer warm-up live there). `tolerance` is the allowed
    /// multiplicative headroom over the first steady block, e.g. `1.5`.
    ///
    /// # Errors
    ///
    /// Returns one description per violating block.
    pub fn verdict(&self, warmup_blocks: usize, tolerance: f64) -> Result<(), Vec<String>> {
        let steady = &self.blocks[self.blocks.len().min(warmup_blocks)..];
        let Some(&(journal_base, alloc_base)) = steady.first() else {
            return Err(vec![format!(
                "soak too short: {} blocks recorded, {warmup_blocks} warm-up blocks",
                self.blocks.len()
            )]);
        };
        let journal_cap = (journal_base as f64 * tolerance) as u64 + JOURNAL_SLACK_BYTES;
        let alloc_cap = (alloc_base as f64 * tolerance) as u64 + ALLOC_SLACK;
        let mut violations = Vec::new();
        for (i, &(journal, allocs)) in steady.iter().enumerate().skip(1) {
            if journal > journal_cap {
                violations.push(format!(
                    "journal growth not flat: block {} grew {journal} B (baseline {journal_base} B, cap {journal_cap} B)",
                    warmup_blocks + i
                ));
            }
            if allocs > alloc_cap {
                violations.push(format!(
                    "allocations not flat: block {} made {allocs} allocations (baseline {alloc_base}, cap {alloc_cap})",
                    warmup_blocks + i
                ));
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_types::ids::NodeId;
    use celestial_types::{Bandwidth, Latency};

    fn pair(a: u32, b: u32, bandwidth: Bandwidth) -> PairProgram {
        PairProgram {
            a: NodeId::satellite(0, a),
            b: NodeId::satellite(0, b),
            latency: Latency::from_micros(1_000),
            bandwidth,
        }
    }

    #[test]
    fn uncapped_pairs_are_reported() {
        let ok = vec![pair(0, 1, Bandwidth::from_kbps(10_000))];
        assert!(check_no_uncapped(&ok).is_empty());
        let bad = vec![
            pair(0, 1, Bandwidth::from_kbps(10_000)),
            pair(0, 2, Bandwidth::INFINITY),
        ];
        let violations = check_no_uncapped(&bad);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("uncapped"), "{violations:?}");
    }

    #[test]
    fn divergence_is_empty_for_identical_programmes() {
        let a = vec![pair(0, 1, Bandwidth::from_kbps(5_000)), pair(0, 2, Bandwidth::from_kbps(7_000))];
        assert!(programme_divergence(&a, &a.clone()).is_empty());
    }

    #[test]
    fn divergence_reports_count_and_content_differences() {
        let reference = vec![pair(0, 1, Bandwidth::from_kbps(5_000))];
        let longer = vec![
            pair(0, 1, Bandwidth::from_kbps(5_000)),
            pair(0, 2, Bandwidth::from_kbps(5_000)),
        ];
        assert!(!programme_divergence(&reference, &longer).is_empty());
        let changed = vec![pair(0, 1, Bandwidth::from_kbps(6_000))];
        let diffs = programme_divergence(&reference, &changed);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("diverged"), "{diffs:?}");
    }

    #[test]
    fn soak_meter_accepts_flat_growth_and_rejects_leaks() {
        let mut flat = SoakMeter::new();
        for _ in 0..10 {
            flat.record_block(100_000, 1_000);
        }
        assert!(flat.verdict(2, 1.5).is_ok());

        let mut leaky = SoakMeter::new();
        for i in 0..10u64 {
            leaky.record_block(100_000 + i * 50_000, 1_000 + i * 10_000);
        }
        let violations = leaky.verdict(2, 1.5).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("journal")), "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("allocations")), "{violations:?}");
    }

    #[test]
    fn soak_meter_rejects_runs_shorter_than_the_warmup() {
        let mut meter = SoakMeter::new();
        meter.record_block(1, 1);
        assert!(meter.verdict(4, 1.5).is_err());
    }

    #[test]
    fn zero_baselines_tolerate_only_the_absolute_slack() {
        let mut meter = SoakMeter::new();
        meter.record_block(0, 0);
        meter.record_block(0, 0);
        meter.record_block(ALLOC_SLACK, ALLOC_SLACK);
        assert!(meter.verdict(0, 1.5).is_ok());
        let mut leak = SoakMeter::new();
        leak.record_block(0, 0);
        leak.record_block(JOURNAL_SLACK_BYTES * 10, 0);
        assert!(leak.verdict(0, 1.5).is_err());
    }
}
