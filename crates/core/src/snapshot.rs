//! Epoch-versioned read snapshots of the coordinator's [`InfoDatabase`].
//!
//! The serving plane answers queries from worker threads that must never
//! take the coordinator's lock: a slow `/path` query must not delay the
//! epoch boundary, and an epoch handover must not stall readers. The
//! [`SnapshotStore`] provides that seam. At each pipeline handover the
//! coordinator publishes an immutable [`EpochSnapshot`] — the database
//! (state + path matrix) as of one epoch — behind an `Arc`. Readers hold a
//! [`SnapshotReader`] that caches the `Arc` and refreshes it only when the
//! store's epoch counter (a single atomic) has advanced, so the steady-state
//! read path is one relaxed atomic load and no lock.
//!
//! The store recycles retired snapshots: when the previous epoch's `Arc` has
//! no readers left, its buffers are reused for the next publish via
//! `clone_from` — after warm-up, publishing allocates nothing.

use crate::database::InfoDatabase;
use celestial_types::ids::TenantId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable view of the testbed as of one epoch.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// The epoch this snapshot was taken at (the coordinator's update count;
    /// `0` means "before the first update").
    pub epoch: u64,
    /// The information database as of `epoch`, including the path matrix.
    pub database: InfoDatabase,
}

impl EpochSnapshot {
    /// Resolves a tenant name to a [`TenantView`] of this snapshot.
    ///
    /// The empty name selects tenant 0 — the only tenant of a solo testbed —
    /// so pre-tenancy clients that send no tenant header keep working
    /// unchanged. An unknown name returns `None` (the serving plane maps it
    /// to HTTP 404). The view is an `Arc` clone plus an id: every tenant of
    /// a fleet reads the same snapshot core (see `docs/TENANTS.md`).
    pub fn tenant_view(self: &Arc<Self>, name: &str) -> Option<TenantView> {
        let tenant = if name.is_empty() {
            TenantId(0)
        } else {
            TenantId(self.database.tenant_index(name)? as u32)
        };
        Some(TenantView {
            tenant,
            snapshot: Arc::clone(self),
        })
    }
}

/// A tenant-scoped handle on a shared [`EpochSnapshot`].
///
/// Fleets share one snapshot per epoch; a view pins the tenant a request is
/// answered for without copying any of the epoch's data. Obtained from
/// [`EpochSnapshot::tenant_view`].
#[derive(Debug, Clone)]
pub struct TenantView {
    /// The tenant this view answers for.
    pub tenant: TenantId,
    /// The shared epoch snapshot (one `Arc` per epoch, shared by all
    /// tenants).
    pub snapshot: Arc<EpochSnapshot>,
}

/// The publish side: owned by whoever drives the coordinator.
///
/// Cheap to share (`Arc<SnapshotStore>`); see the module documentation for
/// the concurrency contract.
#[derive(Debug)]
pub struct SnapshotStore {
    /// The epoch of the currently published snapshot. Readers poll this to
    /// decide whether their cached `Arc` is stale.
    epoch: AtomicU64,
    current: Mutex<Arc<EpochSnapshot>>,
    /// Retired snapshots whose `Arc` became unique again, kept for reuse.
    spare: Mutex<Vec<Arc<EpochSnapshot>>>,
    published: AtomicU64,
    recycled: AtomicU64,
}

impl SnapshotStore {
    /// Creates a store whose initial snapshot is `database` at epoch 0.
    pub fn new(database: InfoDatabase) -> Self {
        SnapshotStore {
            epoch: AtomicU64::new(0),
            current: Mutex::new(Arc::new(EpochSnapshot { epoch: 0, database })),
            spare: Mutex::new(Vec::new()),
            published: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
        }
    }

    /// Publishes `database` as the snapshot for `epoch`, replacing the
    /// current one. Readers observe the switch atomically: they either keep
    /// answering from the old snapshot (which stays alive through their
    /// cached `Arc`) or pick up the new one; never a mix.
    ///
    /// Runs on the coordinator's thread at the epoch boundary. The cost is
    /// one `clone_from` of the database into a spare (or, before the pool
    /// warms up, one clone) plus two short mutex sections no reader ever
    /// contends in steady state.
    pub fn publish(&self, epoch: u64, database: &InfoDatabase) {
        let fresh = match self.take_spare() {
            Some(mut spare) => {
                let inner = Arc::get_mut(&mut spare)
                    .expect("spare snapshots are only pooled while unique");
                inner.epoch = epoch;
                inner.database.clone_from(database);
                self.recycled.fetch_add(1, Ordering::Relaxed);
                spare
            }
            None => Arc::new(EpochSnapshot {
                epoch,
                database: database.clone(),
            }),
        };
        let retired = {
            let mut current = self.current.lock().expect("snapshot store lock poisoned");
            std::mem::replace(&mut *current, fresh)
        };
        // Publish the epoch only after the snapshot is switched, so a reader
        // that sees the new epoch is guaranteed to load the new snapshot.
        self.epoch.store(epoch, Ordering::Release);
        self.published.fetch_add(1, Ordering::Relaxed);
        self.offer_spare(retired);
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The currently published snapshot. Readers on hot paths should prefer
    /// a [`SnapshotReader`], which skips the lock while the epoch is
    /// unchanged.
    pub fn load(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.current.lock().expect("snapshot store lock poisoned"))
    }

    /// Creates a per-thread reader handle caching the current snapshot.
    pub fn reader(self: &Arc<Self>) -> SnapshotReader {
        SnapshotReader {
            store: Arc::clone(self),
            cached: self.load(),
        }
    }

    /// (published, recycled) publish counters — recycled counts the
    /// publishes that reused a retired snapshot's buffers.
    pub fn publish_stats(&self) -> (u64, u64) {
        (
            self.published.load(Ordering::Relaxed),
            self.recycled.load(Ordering::Relaxed),
        )
    }

    fn take_spare(&self) -> Option<Arc<EpochSnapshot>> {
        self.spare.lock().expect("snapshot spare lock poisoned").pop()
    }

    /// Pools `retired` for reuse if no reader still holds it; drops it
    /// otherwise (the last reader's drop frees it).
    fn offer_spare(&self, retired: Arc<EpochSnapshot>) {
        if Arc::strong_count(&retired) == 1 {
            let mut spare = self.spare.lock().expect("snapshot spare lock poisoned");
            // Two spares cover the publish/retire rhythm even with a
            // straggling reader; more would be dead weight.
            if spare.len() < 2 {
                spare.push(retired);
            }
        }
    }
}

/// A per-thread read handle over a [`SnapshotStore`].
///
/// [`SnapshotReader::current`] is the hot path: a relaxed epoch check
/// against the cached snapshot, touching the store's lock only when a new
/// epoch has been published since the last call.
#[derive(Debug)]
pub struct SnapshotReader {
    store: Arc<SnapshotStore>,
    cached: Arc<EpochSnapshot>,
}

impl SnapshotReader {
    /// The current snapshot, refreshing the cache only on epoch change.
    pub fn current(&mut self) -> &EpochSnapshot {
        let published = self.store.epoch.load(Ordering::Acquire);
        if published != self.cached.epoch {
            self.cached = self.store.load();
        }
        &self.cached
    }

    /// The store this reader came from.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_constellation::{BoundingBox, Constellation, GroundStation, Shell};
    use celestial_sgp4::WalkerShell;
    use celestial_types::geo::Geodetic;
    use celestial_types::time::SimDuration;

    fn coordinator() -> crate::Coordinator {
        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 6, 8)))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        crate::Coordinator::new(constellation, SimDuration::from_secs(2))
    }

    #[test]
    fn readers_see_published_epochs_in_order() {
        let mut c = coordinator();
        let store = Arc::new(SnapshotStore::new(c.database().clone()));
        let mut reader = store.reader();
        assert_eq!(reader.current().epoch, 0);

        c.update(0.0).unwrap();
        store.publish(c.update_count(), c.database());
        assert_eq!(store.epoch(), 1);
        assert_eq!(reader.current().epoch, 1);
        assert!(reader.current().database.state().is_some());

        c.update(2.0).unwrap();
        store.publish(c.update_count(), c.database());
        assert_eq!(reader.current().epoch, 2);
    }

    #[test]
    fn a_held_snapshot_outlives_newer_publishes() {
        let mut c = coordinator();
        let store = Arc::new(SnapshotStore::new(c.database().clone()));
        c.update(0.0).unwrap();
        store.publish(1, c.database());
        let held = store.load();
        let held_time = held.database.state().unwrap().time_seconds;

        c.update(2.0).unwrap();
        store.publish(2, c.database());
        c.update(4.0).unwrap();
        store.publish(3, c.database());

        // The held epoch-1 snapshot is untouched by later publishes.
        assert_eq!(held.epoch, 1);
        assert_eq!(held.database.state().unwrap().time_seconds, held_time);
        assert_eq!(store.load().epoch, 3);
    }

    #[test]
    fn publishes_recycle_retired_snapshots() {
        let mut c = coordinator();
        let store = Arc::new(SnapshotStore::new(c.database().clone()));
        for i in 0..5u64 {
            c.update(i as f64 * 2.0).unwrap();
            store.publish(i + 1, c.database());
        }
        let (published, recycled) = store.publish_stats();
        assert_eq!(published, 5);
        // The first publish retires the epoch-0 snapshot into the pool; from
        // the second on, every publish reuses a spare.
        assert!(recycled >= published - 1, "recycled {recycled} of {published}");
    }

    #[test]
    fn tenant_views_share_one_snapshot_core() {
        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 6, 8)))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        let mut c = crate::Coordinator::with_fanout(
            constellation,
            SimDuration::from_secs(2),
            crate::PipelineMode::Synchronous,
            None,
            vec!["alpha".to_owned(), "beta".to_owned()],
        );
        let store = Arc::new(SnapshotStore::new(c.database().clone()));
        c.update(0.0).unwrap();
        store.publish(c.update_count(), c.database());

        let snapshot = store.load();
        let alpha = snapshot.tenant_view("alpha").expect("alpha exists");
        let beta = snapshot.tenant_view("beta").expect("beta exists");
        assert_eq!(alpha.tenant, celestial_types::ids::TenantId(0));
        assert_eq!(beta.tenant, celestial_types::ids::TenantId(1));
        // Views are Arc clones of the SAME epoch core, not copies.
        assert!(Arc::ptr_eq(&alpha.snapshot, &beta.snapshot));
        // The empty name is the solo default; unknown names resolve to None.
        assert_eq!(snapshot.tenant_view("").unwrap().tenant.index(), 0);
        assert!(snapshot.tenant_view("gamma").is_none());
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_epoch() {
        let mut c = coordinator();
        let store = Arc::new(SnapshotStore::new(c.database().clone()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let interval = 2.0f64;

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut reader = store.reader();
                    let mut checks = 0u64;
                    // The lower bound keeps the check meaningful even if this
                    // thread is only scheduled after the publisher finished.
                    while !stop.load(Ordering::Relaxed) || checks < 100 {
                        let snapshot = reader.current();
                        if snapshot.epoch > 0 {
                            // Epoch e is taken at t = (e-1) * interval; a torn
                            // snapshot (epoch from one publish, state from
                            // another) would break this equality.
                            let t = snapshot.database.state().unwrap().time_seconds;
                            assert_eq!(t, (snapshot.epoch - 1) as f64 * interval);
                        }
                        checks += 1;
                    }
                    checks
                })
            })
            .collect();

        for i in 0..30u64 {
            c.update(i as f64 * interval).unwrap();
            store.publish(c.update_count(), c.database());
        }
        stop.store(true, Ordering::Relaxed);
        for handle in readers {
            let checks = handle.join().expect("reader thread panicked");
            assert!(checks > 0);
        }
    }
}
