//! The Celestial coordinator.
//!
//! The coordinator is the central component of Celestial's architecture
//! (Fig. 2): it runs the Constellation Calculation at a fixed update
//! interval, keeps the information database current, diffs consecutive
//! states, and derives the per-pair network programming that the machine
//! managers on each host apply — as a [`ProgrammeDelta`] of only the rules
//! that actually changed (see `docs/NETPROG.md`).
//!
//! The epoch computation itself lives in [`crate::pipeline`]: the
//! coordinator owns an [`EpochPipeline`] and only *applies* the bundles it
//! hands over. In [`PipelineMode::Pipelined`] the next epoch is precomputed
//! on a background worker while the testbed plays the current epoch's
//! events — the paper's core overlap trick (see `docs/PIPELINE.md`).
//!
//! One coordinator can fan a single pipeline out to N tenants
//! ([`Coordinator::with_fanout`]): the shared orbital state and path matrix
//! are computed and installed once per update, while each tenant keeps its
//! own programme mirror and change set in a private `TenantLane` slot. The
//! solo constructors are the tenants=1 degenerate case and stay
//! bit-identical to the pre-tenant coordinator (see `docs/TENANTS.md`).

use crate::database::{InfoDatabase, PipelineReport, ProgrammeStats};
use crate::pipeline::{clone_deltas_into, EpochCompute, EpochPipeline, PipelineMode, PipelineStats};
use crate::snapshot::SnapshotStore;
use std::sync::Arc;
use celestial_constellation::{Constellation, ConstellationDiff, LinkKind, ScopeParams, SolveStats};
use celestial_netem::{ProgrammeDelta, ShardApplyReport, ShardPlan};
pub use celestial_netem::PairProgram;
use celestial_types::ids::{NodeId, TenantId};
use celestial_types::time::SimDuration;
use celestial_types::{Bandwidth, Latency, Result};
use std::collections::BTreeMap;

/// One tenant's retained slice of the coordinator: its name, the most
/// recent change set (full and per-host) and the delta-replayed
/// full-programme mirror.
#[derive(Debug, Default)]
struct TenantLane {
    name: String,
    /// The change set of the most recent update.
    delta: ProgrammeDelta,
    /// The per-host partition of `delta` (empty without a shard plan).
    host_deltas: Vec<ProgrammeDelta>,
    /// The full programme, maintained by replaying each epoch's delta —
    /// `O(delta)` per update, so the pipelined mode never has to ship the
    /// full pair table across the worker boundary.
    programme: BTreeMap<(NodeId, NodeId), (Latency, Bandwidth)>,
}

/// The central coordinator.
#[derive(Debug)]
pub struct Coordinator {
    /// The coordinator's own (immutable) copy of the constellation for
    /// accessors; the pipeline's computation owns another.
    constellation: Constellation,
    update_interval: SimDuration,
    database: InfoDatabase,
    pipeline: EpochPipeline,
    /// One retained slice per tenant (at least one); index 0 is the solo
    /// tenant every single-tenant accessor delegates to.
    lanes: Vec<TenantLane>,
    /// The host-sharding plan, when the programme is partitioned per host.
    shard_plan: Option<ShardPlan>,
    last_solve: SolveStats,
    updates: u64,
    /// When enabled, every update publishes an immutable snapshot of the
    /// database here for the lock-free serving plane (see `docs/SERVE.md`).
    snapshots: Option<Arc<SnapshotStore>>,
}

impl Coordinator {
    /// Creates a coordinator for the given constellation with the given
    /// update interval, computing epochs synchronously at each boundary.
    pub fn new(constellation: Constellation, update_interval: SimDuration) -> Self {
        Self::with_mode(constellation, update_interval, PipelineMode::Synchronous)
    }

    /// Creates a coordinator with an explicit epoch-pipeline mode.
    /// [`PipelineMode::Pipelined`] precomputes the next epoch on a
    /// background worker between updates; results are bit-identical to
    /// [`PipelineMode::Synchronous`] as long as updates follow the
    /// `update_interval` cadence (and remain correct—composed—off cadence).
    pub fn with_mode(
        constellation: Constellation,
        update_interval: SimDuration,
        mode: PipelineMode,
    ) -> Self {
        Self::with_options(constellation, update_interval, mode, None)
    }

    /// Creates a coordinator with an explicit pipeline mode and an optional
    /// host-sharding plan. With a plan, every update additionally partitions
    /// the programme delta into one per-host change set
    /// ([`Coordinator::host_deltas`]), the slices each host's machine
    /// manager applies locally (see `docs/SHARDING.md`).
    pub fn with_options(
        constellation: Constellation,
        update_interval: SimDuration,
        mode: PipelineMode,
        shard_plan: Option<ShardPlan>,
    ) -> Self {
        Self::with_fanout(
            constellation,
            update_interval,
            mode,
            shard_plan,
            vec!["tenant-0".to_owned()],
        )
    }

    /// Creates a coordinator fanning one epoch pipeline out to N tenants,
    /// one per entry of `tenant_names`: the orbital propagation, snapshot
    /// diff and path solve run once per update; each tenant gets its own
    /// programme change stream ([`Coordinator::programme_delta_for`]) off
    /// the shared path matrix. Tenant names route per-tenant info-API
    /// queries (see `docs/TENANTS.md`).
    ///
    /// # Panics
    ///
    /// Panics if `tenant_names` is empty.
    pub fn with_fanout(
        constellation: Constellation,
        update_interval: SimDuration,
        mode: PipelineMode,
        shard_plan: Option<ShardPlan>,
        tenant_names: Vec<String>,
    ) -> Self {
        Self::with_scoped_fanout(
            constellation,
            update_interval,
            mode,
            shard_plan,
            tenant_names,
            ScopeParams::default(),
        )
    }

    /// [`Coordinator::with_fanout`] with explicit solve-scope parameters
    /// (the `[paths]` configuration table). The parameters tune how much of
    /// the constellation each epoch's path solve covers — never the results:
    /// every row the programme or a query reads is exact for any setting
    /// (see `docs/MEGASCALE.md`).
    ///
    /// # Panics
    ///
    /// Panics if `tenant_names` is empty.
    pub fn with_scoped_fanout(
        constellation: Constellation,
        update_interval: SimDuration,
        mode: PipelineMode,
        shard_plan: Option<ShardPlan>,
        tenant_names: Vec<String>,
        scope_params: ScopeParams,
    ) -> Self {
        assert!(!tenant_names.is_empty(), "a coordinator serves at least one tenant");
        let mut database = InfoDatabase::new(
            constellation.shells().to_vec(),
            constellation.ground_stations().to_vec(),
        );
        // Seed the tenant names into the database before the first update
        // (and before the first snapshot), so tenant routing never 404s a
        // configured tenant.
        for (index, name) in tenant_names.iter().enumerate() {
            database.update_tenant_report(index, name, 0, 0);
        }
        let mut compute = EpochCompute::new(constellation.clone());
        compute.set_shard_plan(shard_plan);
        compute.set_tenant_count(tenant_names.len());
        compute.set_scope_params(scope_params);
        let pipeline = EpochPipeline::new(compute, mode, update_interval);
        let lanes = tenant_names
            .into_iter()
            .map(|name| TenantLane {
                name,
                ..TenantLane::default()
            })
            .collect();
        Coordinator {
            constellation,
            update_interval,
            database,
            pipeline,
            lanes,
            shard_plan,
            last_solve: SolveStats::default(),
            updates: 0,
            snapshots: None,
        }
    }

    /// Enables epoch-versioned snapshot publication and returns the store.
    /// From now on every [`Coordinator::update`] publishes the refreshed
    /// database as an immutable [`crate::snapshot::EpochSnapshot`] at the
    /// epoch boundary, so serving threads read lock-free (`docs/SERVE.md`).
    pub fn enable_snapshots(&mut self) -> Arc<SnapshotStore> {
        let store = self
            .snapshots
            .get_or_insert_with(|| Arc::new(SnapshotStore::new(self.database.clone())));
        Arc::clone(store)
    }

    /// The snapshot store, if [`Coordinator::enable_snapshots`] was called.
    pub fn snapshot_store(&self) -> Option<&Arc<SnapshotStore>> {
        self.snapshots.as_ref()
    }

    /// The configured update interval.
    pub fn update_interval(&self) -> SimDuration {
        self.update_interval
    }

    /// The constellation driven by this coordinator.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// The information database (backing the info API and DNS).
    pub fn database(&self) -> &InfoDatabase {
        &self.database
    }

    /// Number of completed updates.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// The epoch-pipeline mode this coordinator runs with.
    pub fn pipeline_mode(&self) -> PipelineMode {
        self.pipeline.mode()
    }

    /// The host-sharding plan, if the programme is partitioned per host.
    pub fn shard_plan(&self) -> Option<ShardPlan> {
        self.shard_plan
    }

    /// The per-host partition of the first tenant's most recent change set,
    /// indexed by host. Empty without a shard plan. Cross-host pairs appear
    /// in both endpoint slices; the union of all slices is exactly
    /// [`Coordinator::programme_delta`].
    pub fn host_deltas(&self) -> &[ProgrammeDelta] {
        &self.lanes[0].host_deltas
    }

    /// Number of tenants this coordinator fans out to (at least 1).
    pub fn tenant_count(&self) -> usize {
        self.lanes.len()
    }

    /// The configured tenant names, indexed by [`TenantId`].
    pub fn tenant_names(&self) -> impl Iterator<Item = &str> {
        self.lanes.iter().map(|lane| lane.name.as_str())
    }

    /// One tenant's change set of the most recent update.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn programme_delta_for(&self, tenant: TenantId) -> &ProgrammeDelta {
        &self.lanes[tenant.index()].delta
    }

    /// One tenant's per-host change-set partition of the most recent update
    /// (empty without a shard plan).
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn host_deltas_for(&self, tenant: TenantId) -> &[ProgrammeDelta] {
        &self.lanes[tenant.index()].host_deltas
    }

    /// Records what applying the sharded programme actually cost (per-shard
    /// apply times and the parallel wall time), surfacing it through the
    /// `/info` route. Called by the testbed after each parallel apply.
    pub fn record_shard_apply(&mut self, report: &ShardApplyReport) {
        self.database.set_shard_apply(&report.shard_ns, report.wall_ns);
    }

    /// Records the chaos engine's activity so the `/info` route can report
    /// it (`chaos_events`, `chaos_active_faults`, `links_suppressed`; see
    /// `docs/CHAOS.md`).
    pub fn record_chaos(&mut self, events: u64, active_faults: u64, links_suppressed: u64) {
        self.database.set_chaos(events, active_faults, links_suppressed);
    }

    /// Runtime statistics of the epoch pipeline (handover wait, precompute
    /// lead, mispredictions).
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    /// Runs one constellation update at `t_seconds` of simulated time and
    /// returns the change set relative to the previous update.
    ///
    /// The heavy lifting — propagation, path solve, programme delta — is the
    /// pipeline's: in pipelined mode this call usually just receives an
    /// already finished bundle and applies it (database refresh, programme
    /// replay, stats). The per-update `tc` change set is available from
    /// [`Coordinator::programme_delta`] afterwards.
    ///
    /// # Errors
    ///
    /// Returns an error if the orbital propagation fails or the pipeline
    /// worker died.
    pub fn update(&mut self, t_seconds: f64) -> Result<ConstellationDiff> {
        let mut bundle = self.pipeline.advance(t_seconds)?;

        // Install the shared state and path matrix into the database's
        // retained buffers — once, no matter how many tenants: no allocation
        // in steady state.
        self.database.update_from(&bundle.shared.state);
        self.database.set_paths_from(&bundle.shared.paths);

        // Per tenant: replay the delta onto the lane's full-programme
        // mirror, retain the change sets, refresh the `/info` slice.
        for (index, (lane, tenant)) in self.lanes.iter_mut().zip(&bundle.tenants).enumerate() {
            for pair in tenant.delta.added.iter().chain(&tenant.delta.changed) {
                lane.programme
                    .insert((pair.a, pair.b), (pair.latency, pair.bandwidth));
            }
            for pair in &tenant.delta.removed {
                lane.programme.remove(pair);
            }
            debug_assert_eq!(
                lane.programme.len(),
                tenant.programme_pairs,
                "programme mirror diverged from the store"
            );
            lane.delta.clone_from(&tenant.delta);
            clone_deltas_into(&mut lane.host_deltas, &tenant.host_deltas);
            self.database.update_tenant_report(
                index,
                &lane.name,
                tenant.programme_pairs,
                tenant.delta.op_count(),
            );
        }

        let solo = bundle.solo();
        if self.shard_plan.is_some() {
            self.database.set_shard_pairs(&solo.shard_pairs);
        }
        self.last_solve = bundle.shared.solve;
        self.updates += 1;
        self.database.set_programme_stats(ProgrammeStats {
            epoch: solo.programme_epoch,
            pairs: solo.programme_pairs,
            delta_ops: solo.delta.op_count(),
        });
        self.database.set_pipeline_report(PipelineReport {
            stats: self.pipeline.stats(),
        });
        self.database.set_scope_report(bundle.shared.scope);

        if let Some(store) = &self.snapshots {
            store.publish(self.updates, &self.database);
        }

        let shared = Arc::get_mut(&mut bundle.shared)
            .expect("bundle cores are uniquely owned until handover");
        let diff = std::mem::take(&mut shared.diff);
        self.pipeline.recycle(bundle);
        Ok(diff)
    }

    /// Statistics about the most recent shortest-path solve (how many source
    /// rows were re-solved vs. reused incrementally).
    pub fn last_path_solve(&self) -> SolveStats {
        self.last_solve
    }

    /// The first tenant's change set produced by the most recent update:
    /// exactly the `tc` rules the machine managers must add, re-shape or
    /// tear down. Empty before the first update (and on steady-state updates
    /// that moved no pair across the 0.1 ms quantization threshold).
    pub fn programme_delta(&self) -> &ProgrammeDelta {
        &self.lanes[0].delta
    }

    /// Number of pairs currently programmed for the first tenant (the
    /// full-programme size a non-incremental coordinator would rewrite every
    /// update).
    pub fn programme_pair_count(&self) -> usize {
        self.lanes[0].programme.len()
    }

    /// The full per-pair network programme of the current state: the
    /// quantized end-to-end latency and bottleneck bandwidth between every
    /// pair of *programmable* nodes — ground stations and active satellites,
    /// including active-satellite↔active-satellite pairs (satellites outside
    /// the bounding box carry traffic on paths but host no workloads, so
    /// pairs ending at them need no programming).
    ///
    /// This enumerates the coordinator's delta-replayed mirror in canonical
    /// pair order; the per-update change set is
    /// [`Coordinator::programme_delta`]. Reachable pairs always carry the
    /// finite bottleneck bandwidth of a fully resolved path — a broken
    /// predecessor chain makes the pair unreachable rather than uncapped.
    ///
    /// # Errors
    ///
    /// Returns an error if no update has happened yet.
    pub fn network_programme(&self) -> Result<Vec<PairProgram>> {
        self.network_programme_for(TenantId(0))
    }

    /// One tenant's full per-pair network programme (see
    /// [`Coordinator::network_programme`]).
    ///
    /// # Errors
    ///
    /// Returns an error if no update has happened yet.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn network_programme_for(&self, tenant: TenantId) -> Result<Vec<PairProgram>> {
        if self.updates == 0 {
            return Err(celestial_types::Error::InfoApi("no update yet".to_owned()));
        }
        Ok(self.lanes[tenant.index()]
            .programme
            .iter()
            .map(|(&(a, b), &(latency, bandwidth))| PairProgram {
                a,
                b,
                latency,
                bandwidth,
            })
            .collect())
    }

    /// The number of ground-station links currently available, useful for
    /// logging and the figure harness.
    pub fn ground_link_count(&self) -> usize {
        self.database
            .state()
            .map(|s| {
                s.links
                    .iter()
                    .filter(|l| l.kind == LinkKind::GroundStationLink)
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_constellation::{BoundingBox, GroundStation, Shell};
    use celestial_sgp4::WalkerShell;
    use celestial_types::geo::Geodetic;
    use celestial_types::Bandwidth;

    fn coordinator() -> Coordinator {
        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        Coordinator::new(constellation, SimDuration::from_secs(2))
    }

    #[test]
    fn first_update_reports_every_machine_and_link_as_new() {
        let mut c = coordinator();
        assert_eq!(c.update_count(), 0);
        let diff = c.update(0.0).unwrap();
        assert_eq!(diff.machines_added.len(), 194);
        assert!(!diff.links_added.is_empty());
        assert!(diff.links_removed.is_empty());
        assert_eq!(c.update_count(), 1);
        assert!(c.database().state().is_some());
    }

    #[test]
    fn subsequent_updates_produce_incremental_diffs() {
        let mut c = coordinator();
        c.update(0.0).unwrap();
        let diff = c.update(2.0).unwrap();
        // After two seconds nothing is added or removed wholesale, but link
        // latencies change.
        assert!(diff.machines_added.is_empty());
        assert!(diff.machines_removed.is_empty());
        assert!(!diff.links_changed.is_empty() || !diff.links_added.is_empty());
    }

    #[test]
    fn network_programme_covers_all_active_pair_classes() {
        // The full first Starlink shell guarantees that both ground stations
        // have a satellite in view at the epoch.
        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        let mut c = Coordinator::new(constellation, SimDuration::from_secs(2));
        assert!(c.network_programme().is_err());
        assert!(c.programme_delta().is_empty(), "no delta before the first update");
        c.update(0.0).unwrap();
        let programme = c.network_programme().unwrap();
        assert!(!programme.is_empty());
        assert_eq!(programme.len(), c.programme_pair_count());
        // The gst-gst pair appears exactly once.
        let gst_pairs: Vec<_> = programme
            .iter()
            .filter(|p| p.a.is_ground_station() && p.b.is_ground_station())
            .collect();
        assert_eq!(gst_pairs.len(), 1);
        let pair = gst_pairs[0];
        // Accra–Abuja over 550 km satellites: a few milliseconds one way.
        assert!(pair.latency.as_millis_f64() > 2.0 && pair.latency.as_millis_f64() < 40.0);
        assert_eq!(pair.bandwidth, Bandwidth::from_gbps(10));
        // Active-sat↔active-sat pairs are covered (satellite-hosted
        // workloads can exchange traffic), and nothing is ever uncapped.
        assert!(
            programme.iter().any(|p| p.a.is_satellite() && p.b.is_satellite()),
            "sat↔sat pairs missing from the programme"
        );
        assert!(
            programme.iter().all(|p| !p.bandwidth.is_infinite() && !p.bandwidth.is_zero()),
            "every programmed pair carries a finite, non-zero bottleneck"
        );
        // Latencies are pre-quantized to the tc granularity.
        assert!(programme.iter().all(|p| p.latency == p.latency.quantized_tenth_ms()));
        // The first delta is pure additions, matching the full programme.
        let delta = c.programme_delta();
        assert_eq!(delta.epoch, 1);
        assert_eq!(delta.added.len(), programme.len());
        assert!(delta.changed.is_empty() && delta.removed.is_empty());
        // Stats are surfaced through the database for the `/info` route.
        let stats = c.database().programme_stats().unwrap();
        assert_eq!(stats.pairs, programme.len());
        assert_eq!(stats.delta_ops, programme.len());
    }

    #[test]
    fn steady_state_delta_touches_fewer_pairs_than_the_full_programme() {
        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        let mut c = Coordinator::new(constellation, SimDuration::from_secs(1));
        c.update(0.0).unwrap();
        let full = c.programme_pair_count();
        assert!(full > 10);
        // One second of orbital motion shifts few quantized pair latencies.
        c.update(1.0).unwrap();
        let delta = c.programme_delta();
        assert_eq!(delta.epoch, 2);
        assert!(
            delta.op_count() < full / 2,
            "steady-state delta ({} ops) should be far below the full rebuild ({full} pairs)",
            delta.op_count()
        );
    }

    #[test]
    fn path_solve_is_restricted_to_ground_stations_and_active_satellites() {
        let mut c = coordinator();
        c.update(0.0).unwrap();
        let stats = c.last_path_solve();
        let state = c.database().state().unwrap();
        let programme = state.active_satellites().len() + state.ground_station_count();
        // The scoped solve guarantees exactness for every programme row
        // (active satellites + ground stations); the rows it runs are that
        // set plus the margin/neighbourhood scope — still far below a full
        // all-sources solve.
        assert_eq!(stats.scope_required, programme);
        assert!(stats.solved_sources >= programme);
        assert!(stats.solved_sources < state.node_count());
        let report = c.database().scope_report().expect("scope recorded");
        assert_eq!(report.required, programme);
        assert_eq!(report.active_satellites, state.active_satellites().len());
        assert!(report.scope_satellites >= report.active_satellites);
        assert!(report.predicted_satellites > 0);
        let paths = c.database().paths().expect("paths installed");
        assert_eq!(paths.source_count(), stats.solved_sources);
        assert!(paths.is_solved(state.node_count() - 1), "ground station solved");
    }

    #[test]
    fn ground_link_count_is_positive_after_update() {
        let mut c = coordinator();
        assert_eq!(c.ground_link_count(), 0);
        c.update(0.0).unwrap();
        assert!(c.ground_link_count() > 0);
        assert_eq!(c.update_interval(), SimDuration::from_secs(2));
        assert_eq!(c.constellation().satellite_count(), 192);
    }

    #[test]
    fn fanned_out_coordinator_serves_every_tenant_the_solo_stream() {
        let build = || {
            Constellation::builder()
                .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
                .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
                .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
                .bounding_box(BoundingBox::west_africa())
                .build()
                .unwrap()
        };
        let mut solo = Coordinator::new(build(), SimDuration::from_secs(2));
        let names: Vec<String> = (0..3).map(|i| format!("tenant-{i}")).collect();
        let mut fleet = Coordinator::with_fanout(
            build(),
            SimDuration::from_secs(2),
            PipelineMode::Synchronous,
            None,
            names,
        );
        assert_eq!(fleet.tenant_count(), 3);
        assert_eq!(
            fleet.tenant_names().collect::<Vec<_>>(),
            ["tenant-0", "tenant-1", "tenant-2"]
        );
        // Names resolve before the first update.
        assert_eq!(fleet.database().tenant_index("tenant-2"), Some(2));
        assert_eq!(fleet.database().tenant_index("tenant-9"), None);

        for step in 0..3 {
            let t = step as f64 * 2.0;
            let a = solo.update(t).unwrap();
            let b = fleet.update(t).unwrap();
            assert_eq!(a, b, "shared diff diverged at t={t}");
            for tenant in 0..3 {
                let tenant = TenantId(tenant);
                assert_eq!(
                    fleet.programme_delta_for(tenant),
                    solo.programme_delta(),
                    "{tenant} delta diverged at t={t}"
                );
                assert_eq!(
                    fleet.network_programme_for(tenant).unwrap(),
                    solo.network_programme().unwrap()
                );
            }
        }
        // The `/info` slices carry each tenant's programme size.
        let reports = fleet.database().tenant_reports();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.pairs == solo.programme_pair_count()));
    }
}
