//! The Celestial coordinator.
//!
//! The coordinator is the central component of Celestial's architecture
//! (Fig. 2): it runs the Constellation Calculation at a fixed update
//! interval, keeps the information database current, diffs consecutive
//! states, and derives the per-pair network programming that the machine
//! managers on each host apply.

use crate::database::InfoDatabase;
use celestial_constellation::{
    Constellation, ConstellationDiff, ConstellationSnapshot, LinkKind, PathEngine, SolveStats,
};
use celestial_types::ids::NodeId;
use celestial_types::time::SimDuration;
use celestial_types::{Bandwidth, Latency, Result};
use std::collections::BTreeMap;

/// One entry of the per-pair network programme: the end-to-end latency and
/// bottleneck bandwidth the machine managers must emulate between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairProgram {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// One-way end-to-end latency of the current shortest path.
    pub latency: Latency,
    /// Bottleneck bandwidth along that path.
    pub bandwidth: Bandwidth,
}

/// The central coordinator.
#[derive(Debug, Clone)]
pub struct Coordinator {
    constellation: Constellation,
    update_interval: SimDuration,
    database: InfoDatabase,
    previous: Option<ConstellationSnapshot>,
    engine: PathEngine,
    sources: Vec<u32>,
    updates: u64,
}

impl Coordinator {
    /// Creates a coordinator for the given constellation with the given
    /// update interval.
    pub fn new(constellation: Constellation, update_interval: SimDuration) -> Self {
        let database = InfoDatabase::new(
            constellation.shells().to_vec(),
            constellation.ground_stations().to_vec(),
        );
        let engine = PathEngine::new(constellation.path_algorithm());
        Coordinator {
            constellation,
            update_interval,
            database,
            previous: None,
            engine,
            sources: Vec::new(),
            updates: 0,
        }
    }

    /// The configured update interval.
    pub fn update_interval(&self) -> SimDuration {
        self.update_interval
    }

    /// The constellation driven by this coordinator.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// The information database (backing the info API and DNS).
    pub fn database(&self) -> &InfoDatabase {
        &self.database
    }

    /// Number of completed updates.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Runs one constellation update at `t_seconds` of simulated time and
    /// returns the change set relative to the previous update.
    ///
    /// # Errors
    ///
    /// Returns an error if the orbital propagation fails.
    pub fn update(&mut self, t_seconds: f64) -> Result<ConstellationDiff> {
        let state = self.constellation.state_at(t_seconds)?;
        let snapshot = ConstellationSnapshot::from_state(&state);
        let diff = match &self.previous {
            Some(previous) => previous.diff(&snapshot),
            None => ConstellationSnapshot::default().diff(&snapshot),
        };
        self.previous = Some(snapshot);

        // Solve shortest paths for the rows the coordinator actually needs:
        // every active satellite and every ground station. Suspended
        // satellites carry traffic *on* paths but never originate a
        // programmed pair or an info-API query of their own hot path, so
        // their rows are skipped (the database falls back to a one-shot
        // Dijkstra for them).
        self.sources.clear();
        for sat in state.active_satellites() {
            self.sources.push(state.node_index(NodeId::Satellite(sat))? as u32);
        }
        for gst in 0..state.ground_station_count() as u32 {
            self.sources.push(state.node_index(NodeId::ground_station(gst))? as u32);
        }
        self.engine.solve_sources(state.graph(), &self.sources);
        self.database.update(state);
        if let Some(paths) = self.engine.paths() {
            // Copies into the database's retained buffer: no allocation in
            // steady state.
            self.database.set_paths_from(paths);
        }
        self.updates += 1;
        Ok(diff)
    }

    /// Statistics about the most recent shortest-path solve (how many source
    /// rows were re-solved vs. reused incrementally).
    pub fn last_path_solve(&self) -> SolveStats {
        self.engine.last_solve()
    }

    /// Computes the per-pair network programme for the current state: the
    /// end-to-end latency and bottleneck bandwidth between every pair of
    /// ground stations and between every ground station and every *active*
    /// satellite (satellites outside the bounding box carry traffic on paths
    /// but host no workloads, so pairs ending at them need no programming).
    ///
    /// Latencies and paths are read straight out of the [`PathEngine`]
    /// result computed by the last [`Coordinator::update`] — no graph is
    /// re-traversed here; the bottleneck bandwidth is found by walking each
    /// pair's predecessor chain.
    ///
    /// # Errors
    ///
    /// Returns an error if no update has happened yet.
    pub fn network_programme(&self) -> Result<Vec<PairProgram>> {
        let state = self
            .database
            .state()
            .ok_or_else(|| celestial_types::Error::InfoApi("no update yet".to_owned()))?;
        let paths = self
            .database
            .paths()
            .ok_or_else(|| celestial_types::Error::InfoApi("no update yet".to_owned()))?;

        // Bandwidth of each direct link, keyed by canonical node-index pair.
        let mut link_bandwidth: BTreeMap<(usize, usize), Bandwidth> = BTreeMap::new();
        for link in &state.links {
            let a = state.node_index(link.a)?;
            let b = state.node_index(link.b)?;
            let key = if a <= b { (a, b) } else { (b, a) };
            // Ground-station links may appear once per shell; keep the widest.
            let entry = link_bandwidth.entry(key).or_insert(Bandwidth::ZERO);
            if link.bandwidth > *entry {
                *entry = link.bandwidth;
            }
        }

        let gst_count = state.ground_station_count();
        let gst_nodes: Vec<NodeId> = (0..gst_count as u32).map(NodeId::ground_station).collect();
        let active_sats: Vec<NodeId> = state
            .active_satellites()
            .into_iter()
            .map(NodeId::Satellite)
            .collect();

        let mut programme = Vec::new();
        for (i, gst) in gst_nodes.iter().enumerate() {
            let source = state.node_index(*gst)?;
            let mut targets: Vec<NodeId> = Vec::new();
            targets.extend(gst_nodes.iter().skip(i + 1).copied());
            targets.extend(active_sats.iter().copied());
            for target_node in targets {
                let target = state.node_index(target_node)?;
                let Some(latency_micros) = paths.latency_micros(source, target) else {
                    continue;
                };
                // Walk the predecessor chain to find the bottleneck bandwidth.
                let mut bandwidth = Bandwidth::INFINITY;
                let mut here = target;
                while here != source {
                    let Some(parent) = paths.predecessor(source, here) else { break };
                    let key = if parent <= here { (parent, here) } else { (here, parent) };
                    if let Some(bw) = link_bandwidth.get(&key) {
                        bandwidth = bandwidth.bottleneck(*bw);
                    }
                    here = parent;
                }
                programme.push(PairProgram {
                    a: *gst,
                    b: target_node,
                    latency: Latency::from_micros(latency_micros),
                    bandwidth,
                });
            }
        }
        Ok(programme)
    }

    /// The number of ground-station links currently available, useful for
    /// logging and the figure harness.
    pub fn ground_link_count(&self) -> usize {
        self.database
            .state()
            .map(|s| {
                s.links
                    .iter()
                    .filter(|l| l.kind == LinkKind::GroundStationLink)
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_constellation::{BoundingBox, GroundStation, Shell};
    use celestial_sgp4::WalkerShell;
    use celestial_types::geo::Geodetic;

    fn coordinator() -> Coordinator {
        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        Coordinator::new(constellation, SimDuration::from_secs(2))
    }

    #[test]
    fn first_update_reports_every_machine_and_link_as_new() {
        let mut c = coordinator();
        assert_eq!(c.update_count(), 0);
        let diff = c.update(0.0).unwrap();
        assert_eq!(diff.machines_added.len(), 194);
        assert!(!diff.links_added.is_empty());
        assert!(diff.links_removed.is_empty());
        assert_eq!(c.update_count(), 1);
        assert!(c.database().state().is_some());
    }

    #[test]
    fn subsequent_updates_produce_incremental_diffs() {
        let mut c = coordinator();
        c.update(0.0).unwrap();
        let diff = c.update(2.0).unwrap();
        // After two seconds nothing is added or removed wholesale, but link
        // latencies change.
        assert!(diff.machines_added.is_empty());
        assert!(diff.machines_removed.is_empty());
        assert!(!diff.links_changed.is_empty() || !diff.links_added.is_empty());
    }

    #[test]
    fn network_programme_covers_ground_station_pairs_and_uplinks() {
        // The full first Starlink shell guarantees that both ground stations
        // have a satellite in view at the epoch.
        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        let mut c = Coordinator::new(constellation, SimDuration::from_secs(2));
        assert!(c.network_programme().is_err());
        c.update(0.0).unwrap();
        let programme = c.network_programme().unwrap();
        assert!(!programme.is_empty());
        // The gst-gst pair appears exactly once.
        let gst_pairs: Vec<_> = programme
            .iter()
            .filter(|p| p.a.is_ground_station() && p.b.is_ground_station())
            .collect();
        assert_eq!(gst_pairs.len(), 1);
        let pair = gst_pairs[0];
        // Accra–Abuja over 550 km satellites: a few milliseconds one way.
        assert!(pair.latency.as_millis_f64() > 2.0 && pair.latency.as_millis_f64() < 40.0);
        assert_eq!(pair.bandwidth, Bandwidth::from_gbps(10));
        // Every other entry targets an active satellite.
        assert!(programme
            .iter()
            .filter(|p| !(p.a.is_ground_station() && p.b.is_ground_station()))
            .all(|p| p.b.is_satellite()));
    }

    #[test]
    fn path_solve_is_restricted_to_ground_stations_and_active_satellites() {
        let mut c = coordinator();
        c.update(0.0).unwrap();
        let stats = c.last_path_solve();
        let state = c.database().state().unwrap();
        let expected = state.active_satellites().len() + state.ground_station_count();
        assert_eq!(stats.solved_sources, expected);
        // The engine result is installed in the database and covers exactly
        // the restricted source rows.
        let paths = c.database().paths().expect("paths installed");
        assert_eq!(paths.source_count(), expected);
        assert!(paths.is_solved(state.node_count() - 1), "ground station solved");
    }

    #[test]
    fn ground_link_count_is_positive_after_update() {
        let mut c = coordinator();
        assert_eq!(c.ground_link_count(), 0);
        c.update(0.0).unwrap();
        assert!(c.ground_link_count() > 0);
        assert_eq!(c.update_interval(), SimDuration::from_secs(2));
        assert_eq!(c.constellation().satellite_count(), 192);
    }
}
