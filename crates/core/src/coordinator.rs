//! The Celestial coordinator.
//!
//! The coordinator is the central component of Celestial's architecture
//! (Fig. 2): it runs the Constellation Calculation at a fixed update
//! interval, keeps the information database current, diffs consecutive
//! states, and derives the per-pair network programming that the machine
//! managers on each host apply — as a [`ProgrammeDelta`] of only the rules
//! that actually changed (see `docs/NETPROG.md`).

use crate::database::{InfoDatabase, ProgrammeStats};
use crate::netprog::ProgrammeStore;
use celestial_constellation::{
    Constellation, ConstellationDiff, ConstellationSnapshot, LinkKind, PathEngine, SolveStats,
};
use celestial_netem::ProgrammeDelta;
pub use celestial_netem::PairProgram;
use celestial_types::ids::NodeId;
use celestial_types::time::SimDuration;
use celestial_types::Result;

/// The central coordinator.
#[derive(Debug, Clone)]
pub struct Coordinator {
    constellation: Constellation,
    update_interval: SimDuration,
    database: InfoDatabase,
    previous: Option<ConstellationSnapshot>,
    engine: PathEngine,
    programme: ProgrammeStore,
    sources: Vec<u32>,
    updates: u64,
}

impl Coordinator {
    /// Creates a coordinator for the given constellation with the given
    /// update interval.
    pub fn new(constellation: Constellation, update_interval: SimDuration) -> Self {
        let database = InfoDatabase::new(
            constellation.shells().to_vec(),
            constellation.ground_stations().to_vec(),
        );
        let engine = PathEngine::new(constellation.path_algorithm());
        Coordinator {
            constellation,
            update_interval,
            database,
            previous: None,
            engine,
            programme: ProgrammeStore::new(),
            sources: Vec::new(),
            updates: 0,
        }
    }

    /// The configured update interval.
    pub fn update_interval(&self) -> SimDuration {
        self.update_interval
    }

    /// The constellation driven by this coordinator.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// The information database (backing the info API and DNS).
    pub fn database(&self) -> &InfoDatabase {
        &self.database
    }

    /// Number of completed updates.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Runs one constellation update at `t_seconds` of simulated time and
    /// returns the change set relative to the previous update.
    ///
    /// Besides refreshing the database and the path matrix, this runs one
    /// epoch of the network-programming engine: the per-pair programme is
    /// recomputed over every pair of programmable nodes and diffed against
    /// the previous epoch into the [`ProgrammeDelta`] available from
    /// [`Coordinator::programme_delta`].
    ///
    /// # Errors
    ///
    /// Returns an error if the orbital propagation fails.
    pub fn update(&mut self, t_seconds: f64) -> Result<ConstellationDiff> {
        let state = self.constellation.state_at(t_seconds)?;
        let snapshot = ConstellationSnapshot::from_state(&state);
        let diff = match &self.previous {
            Some(previous) => previous.diff(&snapshot),
            None => ConstellationSnapshot::default().diff(&snapshot),
        };
        self.previous = Some(snapshot);

        // Solve shortest paths for the rows the coordinator actually needs:
        // every active satellite and every ground station. Suspended
        // satellites carry traffic *on* paths but never originate a
        // programmed pair or an info-API query of their own hot path, so
        // their rows are skipped (the database falls back to a one-shot
        // Dijkstra for them). Node indices put satellites before ground
        // stations and `active_satellites` ascends, so `sources` is strictly
        // ascending — the order the programme store requires.
        self.sources.clear();
        for sat in state.active_satellites() {
            self.sources.push(state.node_index(NodeId::Satellite(sat))? as u32);
        }
        for gst in 0..state.ground_station_count() as u32 {
            self.sources.push(state.node_index(NodeId::ground_station(gst))? as u32);
        }
        self.engine.solve_sources(state.graph(), &self.sources);
        self.database.update(state);
        let paths = self.engine.paths().expect("paths were just solved");
        // Copies into the database's retained buffer: no allocation in
        // steady state.
        self.database.set_paths_from(paths);
        let delta_ops = {
            let state = self.database.state().expect("state was just installed");
            self.programme.update_epoch(state, paths, &self.sources).op_count()
        };
        self.updates += 1;
        self.database.set_programme_stats(ProgrammeStats {
            epoch: self.programme.epoch(),
            pairs: self.programme.pair_count(),
            delta_ops,
        });
        Ok(diff)
    }

    /// Statistics about the most recent shortest-path solve (how many source
    /// rows were re-solved vs. reused incrementally).
    pub fn last_path_solve(&self) -> SolveStats {
        self.engine.last_solve()
    }

    /// The change set produced by the most recent update: exactly the `tc`
    /// rules the machine managers must add, re-shape or tear down. Empty
    /// before the first update (and on steady-state updates that moved no
    /// pair across the 0.1 ms quantization threshold).
    pub fn programme_delta(&self) -> &ProgrammeDelta {
        self.programme.delta()
    }

    /// Number of pairs currently programmed (the full-programme size a
    /// non-incremental coordinator would rewrite every update).
    pub fn programme_pair_count(&self) -> usize {
        self.programme.pair_count()
    }

    /// The full per-pair network programme of the current state: the
    /// quantized end-to-end latency and bottleneck bandwidth between every
    /// pair of *programmable* nodes — ground stations and active satellites,
    /// including active-satellite↔active-satellite pairs (satellites outside
    /// the bounding box carry traffic on paths but host no workloads, so
    /// pairs ending at them need no programming).
    ///
    /// This enumerates the engine's retained dense buffer in canonical pair
    /// order; the per-update change set is [`Coordinator::programme_delta`].
    /// Reachable pairs always carry the finite bottleneck bandwidth of a
    /// fully resolved path — a broken predecessor chain makes the pair
    /// unreachable rather than uncapped.
    ///
    /// # Errors
    ///
    /// Returns an error if no update has happened yet.
    pub fn network_programme(&self) -> Result<Vec<PairProgram>> {
        let state = self
            .database
            .state()
            .ok_or_else(|| celestial_types::Error::InfoApi("no update yet".to_owned()))?;
        self.programme
            .iter()
            .map(|(a, b, latency, bandwidth)| {
                Ok(PairProgram {
                    a: state.node_id(a)?,
                    b: state.node_id(b)?,
                    latency,
                    bandwidth,
                })
            })
            .collect()
    }

    /// The number of ground-station links currently available, useful for
    /// logging and the figure harness.
    pub fn ground_link_count(&self) -> usize {
        self.database
            .state()
            .map(|s| {
                s.links
                    .iter()
                    .filter(|l| l.kind == LinkKind::GroundStationLink)
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_constellation::{BoundingBox, GroundStation, Shell};
    use celestial_sgp4::WalkerShell;
    use celestial_types::geo::Geodetic;
    use celestial_types::Bandwidth;

    fn coordinator() -> Coordinator {
        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        Coordinator::new(constellation, SimDuration::from_secs(2))
    }

    #[test]
    fn first_update_reports_every_machine_and_link_as_new() {
        let mut c = coordinator();
        assert_eq!(c.update_count(), 0);
        let diff = c.update(0.0).unwrap();
        assert_eq!(diff.machines_added.len(), 194);
        assert!(!diff.links_added.is_empty());
        assert!(diff.links_removed.is_empty());
        assert_eq!(c.update_count(), 1);
        assert!(c.database().state().is_some());
    }

    #[test]
    fn subsequent_updates_produce_incremental_diffs() {
        let mut c = coordinator();
        c.update(0.0).unwrap();
        let diff = c.update(2.0).unwrap();
        // After two seconds nothing is added or removed wholesale, but link
        // latencies change.
        assert!(diff.machines_added.is_empty());
        assert!(diff.machines_removed.is_empty());
        assert!(!diff.links_changed.is_empty() || !diff.links_added.is_empty());
    }

    #[test]
    fn network_programme_covers_all_active_pair_classes() {
        // The full first Starlink shell guarantees that both ground stations
        // have a satellite in view at the epoch.
        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        let mut c = Coordinator::new(constellation, SimDuration::from_secs(2));
        assert!(c.network_programme().is_err());
        assert!(c.programme_delta().is_empty(), "no delta before the first update");
        c.update(0.0).unwrap();
        let programme = c.network_programme().unwrap();
        assert!(!programme.is_empty());
        assert_eq!(programme.len(), c.programme_pair_count());
        // The gst-gst pair appears exactly once.
        let gst_pairs: Vec<_> = programme
            .iter()
            .filter(|p| p.a.is_ground_station() && p.b.is_ground_station())
            .collect();
        assert_eq!(gst_pairs.len(), 1);
        let pair = gst_pairs[0];
        // Accra–Abuja over 550 km satellites: a few milliseconds one way.
        assert!(pair.latency.as_millis_f64() > 2.0 && pair.latency.as_millis_f64() < 40.0);
        assert_eq!(pair.bandwidth, Bandwidth::from_gbps(10));
        // Active-sat↔active-sat pairs are covered (satellite-hosted
        // workloads can exchange traffic), and nothing is ever uncapped.
        assert!(
            programme.iter().any(|p| p.a.is_satellite() && p.b.is_satellite()),
            "sat↔sat pairs missing from the programme"
        );
        assert!(
            programme.iter().all(|p| !p.bandwidth.is_infinite() && !p.bandwidth.is_zero()),
            "every programmed pair carries a finite, non-zero bottleneck"
        );
        // Latencies are pre-quantized to the tc granularity.
        assert!(programme.iter().all(|p| p.latency == p.latency.quantized_tenth_ms()));
        // The first delta is pure additions, matching the full programme.
        let delta = c.programme_delta();
        assert_eq!(delta.epoch, 1);
        assert_eq!(delta.added.len(), programme.len());
        assert!(delta.changed.is_empty() && delta.removed.is_empty());
        // Stats are surfaced through the database for the `/info` route.
        let stats = c.database().programme_stats().unwrap();
        assert_eq!(stats.pairs, programme.len());
        assert_eq!(stats.delta_ops, programme.len());
    }

    #[test]
    fn steady_state_delta_touches_fewer_pairs_than_the_full_programme() {
        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        let mut c = Coordinator::new(constellation, SimDuration::from_secs(1));
        c.update(0.0).unwrap();
        let full = c.programme_pair_count();
        assert!(full > 10);
        // One second of orbital motion shifts few quantized pair latencies.
        c.update(1.0).unwrap();
        let delta = c.programme_delta();
        assert_eq!(delta.epoch, 2);
        assert!(
            delta.op_count() < full / 2,
            "steady-state delta ({} ops) should be far below the full rebuild ({full} pairs)",
            delta.op_count()
        );
    }

    #[test]
    fn path_solve_is_restricted_to_ground_stations_and_active_satellites() {
        let mut c = coordinator();
        c.update(0.0).unwrap();
        let stats = c.last_path_solve();
        let state = c.database().state().unwrap();
        let expected = state.active_satellites().len() + state.ground_station_count();
        assert_eq!(stats.solved_sources, expected);
        // The engine result is installed in the database and covers exactly
        // the restricted source rows.
        let paths = c.database().paths().expect("paths installed");
        assert_eq!(paths.source_count(), expected);
        assert!(paths.is_solved(state.node_count() - 1), "ground station solved");
    }

    #[test]
    fn ground_link_count_is_positive_after_update() {
        let mut c = coordinator();
        assert_eq!(c.ground_link_count(), 0);
        c.update(0.0).unwrap();
        assert!(c.ground_link_count() > 0);
        assert_eq!(c.update_interval(), SimDuration::from_secs(2));
        assert_eq!(c.constellation().satellite_count(), 192);
    }
}
