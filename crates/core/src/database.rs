//! The coordinator's information database.
//!
//! Celestial's coordinator keeps a central database with satellite positions,
//! constellation information and network paths, updated by the Constellation
//! Calculation on every tick; the per-host HTTP servers answer application
//! queries from it (§3.2). [`InfoDatabase`] is that database.

use crate::pipeline::{PipelineStats, ScopeReport};
use celestial_constellation::{ConstellationState, GroundStation, Shell, ShortestPaths};
use celestial_types::geo::Geodetic;
use celestial_types::ids::{GroundStationId, NodeId, SatelliteId};
use celestial_types::{Error, Latency, Result};

/// Summary of the most recent network-programming epoch, recorded by the
/// coordinator and surfaced through the `/info` route (real Celestial logs
/// these figures per update).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgrammeStats {
    /// The programme epoch (1 for the first update).
    pub epoch: u64,
    /// Number of pairs currently programmed (full-programme size).
    pub pairs: usize,
    /// Pair-programming operations the epoch's delta performed (added +
    /// changed + removed) — the figure the delta engine keeps small.
    pub delta_ops: usize,
}

/// Summary of the epoch pipeline's behaviour, recorded by the coordinator
/// after every update and surfaced through the `/info` route (`pipeline*`
/// fields): mode, boundary handover wait and precompute lead time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineReport {
    /// The pipeline's runtime statistics at the most recent update.
    pub stats: PipelineStats,
}

/// Summary of the host-sharded programming plane, surfaced through the
/// `/info` route (`shard*` fields): how many pairs each shard owns and what
/// the most recent parallel apply cost per host. See `docs/SHARDING.md`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardReport {
    /// Number of pairs owned by each shard, indexed by host (cross-host
    /// pairs are mirrored and count in both endpoint shards).
    pub pairs: Vec<usize>,
    /// Per-shard apply time of the most recent epoch in nanoseconds,
    /// indexed by host. Empty until the first apply is recorded.
    pub apply_ns: Vec<u64>,
    /// Wall-clock nanoseconds of the most recent parallel apply batch.
    pub wall_ns: u64,
}

/// Summary of the chaos engine's activity, surfaced through the `/info`
/// route (`chaos_events`, `chaos_active_faults`, `links_suppressed`). See
/// `docs/CHAOS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosReport {
    /// Total chaos events lowered from the schedule (fault events plus
    /// link-flap windows); constant over a run.
    pub events: u64,
    /// Injected fault windows in effect at the latest update.
    pub active_faults: u64,
    /// Links the flap mask removed from the latest epoch's state.
    pub links_suppressed: u64,
}

/// One tenant's slice of the `/info` report: its name and the size of its
/// network programme. Indexed by tenant; a solo run has exactly one entry.
/// See `docs/TENANTS.md`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantReport {
    /// The tenant's configured name (e.g. `tenant-0`).
    pub name: String,
    /// Number of pairs in the tenant's full programme.
    pub pairs: usize,
    /// Pair-programming operations the tenant's latest delta performed.
    pub delta_ops: usize,
}

/// The central database behind the info API.
#[derive(Debug, Clone)]
pub struct InfoDatabase {
    shells: Vec<Shell>,
    ground_stations: Vec<GroundStation>,
    state: Option<ConstellationState>,
    paths: Option<ShortestPaths>,
    /// Whether `paths` matches the current `state`. The buffer itself is
    /// kept across updates so that [`InfoDatabase::set_paths_from`] can
    /// refill it without re-allocating.
    paths_valid: bool,
    programme_stats: Option<ProgrammeStats>,
    pipeline_report: Option<PipelineReport>,
    scope_report: Option<ScopeReport>,
    shard_report: Option<ShardReport>,
    chaos_report: Option<ChaosReport>,
    /// One report per tenant; seeded with the tenant names at construction
    /// so tenant routing resolves before the first update.
    tenant_reports: Vec<TenantReport>,
}

impl InfoDatabase {
    /// Creates the database for a constellation's static configuration.
    pub fn new(shells: Vec<Shell>, ground_stations: Vec<GroundStation>) -> Self {
        InfoDatabase {
            shells,
            ground_stations,
            state: None,
            paths: None,
            paths_valid: false,
            programme_stats: None,
            pipeline_report: None,
            scope_report: None,
            shard_report: None,
            chaos_report: None,
            tenant_reports: Vec::new(),
        }
    }

    /// Replaces the dynamic state after a constellation update. Any cached
    /// shortest-path result is invalidated until [`InfoDatabase::set_paths`]
    /// or [`InfoDatabase::set_paths_from`] installs the one matching this
    /// state.
    pub fn update(&mut self, state: ConstellationState) {
        self.state = Some(state);
        self.paths_valid = false;
    }

    /// Like [`InfoDatabase::update`], but copies into the retained state of
    /// the previous timestep — after the first update this allocates nothing
    /// in steady state (the path the epoch pipeline's handover uses).
    pub fn update_from(&mut self, state: &ConstellationState) {
        match &mut self.state {
            Some(existing) => existing.clone_from(state),
            None => self.state = Some(state.clone()),
        }
        self.paths_valid = false;
    }

    /// Installs the precomputed shortest-path result for the current state
    /// (produced by the coordinator's `PathEngine`); `/path` queries whose
    /// source row was solved are answered from it without touching the
    /// graph.
    pub fn set_paths(&mut self, paths: ShortestPaths) {
        self.paths = Some(paths);
        self.paths_valid = true;
    }

    /// Like [`InfoDatabase::set_paths`], but copies into the retained buffer
    /// of the previous timestep — after the first update this allocates
    /// nothing in steady state.
    pub fn set_paths_from(&mut self, paths: &ShortestPaths) {
        match &mut self.paths {
            Some(existing) => existing.clone_from(paths),
            None => self.paths = Some(paths.clone()),
        }
        self.paths_valid = true;
    }

    /// The precomputed shortest-path result, if one matching the current
    /// state is installed.
    pub fn paths(&self) -> Option<&ShortestPaths> {
        if self.paths_valid {
            self.paths.as_ref()
        } else {
            None
        }
    }

    /// Records the network-programming summary of the latest update.
    pub fn set_programme_stats(&mut self, stats: ProgrammeStats) {
        self.programme_stats = Some(stats);
    }

    /// The network-programming summary of the latest update, if any.
    pub fn programme_stats(&self) -> Option<ProgrammeStats> {
        self.programme_stats
    }

    /// Records the epoch pipeline's behaviour at the latest update.
    pub fn set_pipeline_report(&mut self, report: PipelineReport) {
        self.pipeline_report = Some(report);
    }

    /// The epoch pipeline's behaviour at the latest update, if any.
    pub fn pipeline_report(&self) -> Option<PipelineReport> {
        self.pipeline_report
    }

    /// Records the scale-aware solve scope of the latest update.
    pub fn set_scope_report(&mut self, report: ScopeReport) {
        self.scope_report = Some(report);
    }

    /// The solve scope of the latest update, if any (all zeros when the
    /// epoch ran an unscoped solve).
    pub fn scope_report(&self) -> Option<ScopeReport> {
        self.scope_report
    }

    /// Records the per-shard pair counts of the latest update (host-sharded
    /// plane only). Apply timings already recorded are kept.
    pub fn set_shard_pairs(&mut self, pairs: &[usize]) {
        let report = self.shard_report.get_or_insert_with(ShardReport::default);
        report.pairs.clear();
        report.pairs.extend_from_slice(pairs);
    }

    /// Records what the latest parallel shard apply cost.
    pub fn set_shard_apply(&mut self, apply_ns: &[u64], wall_ns: u64) {
        let report = self.shard_report.get_or_insert_with(ShardReport::default);
        report.apply_ns.clear();
        report.apply_ns.extend_from_slice(apply_ns);
        report.wall_ns = wall_ns;
    }

    /// The host-sharded plane's summary, if the testbed runs sharded.
    pub fn shard_report(&self) -> Option<&ShardReport> {
        self.shard_report.as_ref()
    }

    /// Records the chaos engine's activity at the latest update.
    pub fn set_chaos(&mut self, events: u64, active_faults: u64, links_suppressed: u64) {
        let report = self.chaos_report.get_or_insert_with(ChaosReport::default);
        report.events = events;
        report.active_faults = active_faults;
        report.links_suppressed = links_suppressed;
    }

    /// The chaos engine's summary, if a run has chaos configured.
    pub fn chaos_report(&self) -> Option<&ChaosReport> {
        self.chaos_report.as_ref()
    }

    /// Records one tenant's `/info` slice, growing the report vector as
    /// needed and reusing the retained name buffer in steady state.
    pub fn update_tenant_report(&mut self, index: usize, name: &str, pairs: usize, delta_ops: usize) {
        if self.tenant_reports.len() <= index {
            self.tenant_reports.resize_with(index + 1, TenantReport::default);
        }
        let report = &mut self.tenant_reports[index];
        if report.name != name {
            report.name.clear();
            report.name.push_str(name);
        }
        report.pairs = pairs;
        report.delta_ops = delta_ops;
    }

    /// The per-tenant `/info` slices, indexed by tenant. Empty only for a
    /// database that never belonged to a coordinator (the coordinator seeds
    /// the tenant names at construction).
    pub fn tenant_reports(&self) -> &[TenantReport] {
        &self.tenant_reports
    }

    /// Resolves a tenant name to its index, for routing per-tenant queries.
    pub fn tenant_index(&self, name: &str) -> Option<usize> {
        self.tenant_reports.iter().position(|t| t.name == name)
    }

    /// The latest constellation state, if an update has happened.
    pub fn state(&self) -> Option<&ConstellationState> {
        self.state.as_ref()
    }

    /// The simulated time of the latest update, in seconds.
    pub fn updated_at_seconds(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.time_seconds)
    }

    /// The static shell configuration.
    pub fn shells(&self) -> &[Shell] {
        &self.shells
    }

    /// The static ground-station configuration.
    pub fn ground_stations(&self) -> &[GroundStation] {
        &self.ground_stations
    }

    /// The ground station with the given name.
    pub fn ground_station_by_name(&self, name: &str) -> Option<(GroundStationId, &GroundStation)> {
        self.ground_stations
            .iter()
            .enumerate()
            .find(|(_, g)| g.name == name)
            .map(|(i, g)| (GroundStationId(i as u32), g))
    }

    fn require_state(&self) -> Result<&ConstellationState> {
        self.state
            .as_ref()
            .ok_or_else(|| Error::InfoApi("no constellation update has happened yet".to_owned()))
    }

    /// The current geodetic position of a node.
    ///
    /// # Errors
    ///
    /// Returns an error if no update has happened or the node is unknown.
    pub fn position(&self, node: NodeId) -> Result<Geodetic> {
        let state = self.require_state()?;
        Ok(state.position(node)?.to_geodetic())
    }

    /// Whether a satellite is currently active (inside the bounding box).
    ///
    /// # Errors
    ///
    /// Returns an error if no update has happened or the satellite is unknown.
    pub fn is_active(&self, sat: SatelliteId) -> Result<bool> {
        self.require_state()?.is_active(sat)
    }

    /// The satellites currently visible from a ground station.
    ///
    /// # Errors
    ///
    /// Returns an error if no update has happened.
    pub fn visible_satellites(&self, gst: GroundStationId) -> Result<Vec<SatelliteId>> {
        Ok(self.require_state()?.visible_satellites(gst))
    }

    /// The precomputed row for `a`, if the engine result covers this state
    /// and solved `a` as a source.
    fn solved_row(&self, state: &ConstellationState, a: usize) -> Option<&ShortestPaths> {
        self.paths()
            .filter(|p| p.node_count() == state.node_count() && p.is_solved(a))
    }

    /// The one-way shortest-path latency between two nodes, if they are
    /// currently connected.
    ///
    /// Answered from the coordinator's precomputed path matrix when `a` was
    /// solved as a source and the entry is exact (ground stations and active
    /// satellites always are — the scoped solve's exactness contract). An
    /// entry a scoped solve left inexact is answered by the matrix's
    /// landmark-accelerated one-shot query; an unsolved row falls back to a
    /// one-shot Dijkstra run on the graph. Every route returns the same
    /// latency — only the work differs.
    ///
    /// # Errors
    ///
    /// Returns an error if no update has happened or either node is unknown.
    pub fn path_latency(&self, a: NodeId, b: NodeId) -> Result<Option<Latency>> {
        let state = self.require_state()?;
        let source = state.node_index(a)?;
        let target = state.node_index(b)?;
        if let Some(paths) = self.solved_row(state, source) {
            if paths.is_exact(source, target) {
                return Ok(paths.latency_micros(source, target).map(Latency::from_micros));
            }
            return Ok(paths
                .one_shot_latency(state.graph(), source, target)
                .map(Latency::from_micros));
        }
        state.latency_between(a, b)
    }

    /// The node sequence of the current shortest path between two nodes.
    ///
    /// Served from the precomputed path matrix when possible, like
    /// [`InfoDatabase::path_latency`].
    ///
    /// # Errors
    ///
    /// Returns an error if no update has happened or either node is unknown.
    pub fn path(&self, a: NodeId, b: NodeId) -> Result<Option<Vec<NodeId>>> {
        let state = self.require_state()?;
        let source = state.node_index(a)?;
        let target = state.node_index(b)?;
        if let Some(paths) = self.solved_row(state, source) {
            let indices = if paths.is_exact(source, target) {
                paths.path(source, target)
            } else {
                // A scoped solve left this entry inexact: the matrix's
                // landmark-accelerated one-shot query answers it without a
                // full row solve.
                paths.one_shot_path(state.graph(), source, target)
            };
            return match indices {
                Some(indices) => indices
                    .into_iter()
                    .map(|idx| state.node_id(idx))
                    .collect::<Result<Vec<_>>>()
                    .map(Some),
                None => Ok(None),
            };
        }
        state.path_between(a, b)
    }

    /// Total number of satellites across all shells.
    pub fn satellite_count(&self) -> u32 {
        self.shells.iter().map(Shell::satellite_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_constellation::Constellation;
    use celestial_sgp4::WalkerShell;
    use celestial_types::MachineResources;

    fn database_with_state() -> InfoDatabase {
        let shell = Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16));
        let gst = GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0))
            .with_resources(MachineResources::paper_client());
        let constellation = Constellation::builder()
            .shell(shell.clone())
            .ground_station(gst.clone())
            .build()
            .unwrap();
        let mut db = InfoDatabase::new(vec![shell], vec![gst]);
        db.update(constellation.state_at(0.0).unwrap());
        db
    }

    #[test]
    fn queries_fail_before_the_first_update() {
        let db = InfoDatabase::new(Vec::new(), Vec::new());
        assert!(db.position(NodeId::ground_station(0)).is_err());
        assert!(db.path_latency(NodeId::ground_station(0), NodeId::ground_station(1)).is_err());
        assert!(db.state().is_none());
        assert!(db.updated_at_seconds().is_none());
    }

    #[test]
    fn positions_and_visibility_after_update() {
        let db = database_with_state();
        assert_eq!(db.updated_at_seconds(), Some(0.0));
        assert_eq!(db.satellite_count(), 192);
        let accra = db.position(NodeId::ground_station(0)).unwrap();
        assert!((accra.latitude_deg() - 5.6037).abs() < 1e-6);
        let visible = db.visible_satellites(GroundStationId(0)).unwrap();
        // The dense test shell guarantees at least one satellite in view.
        assert!(!visible.is_empty());
        let sat = visible[0];
        assert!(db.is_active(sat).unwrap());
        let sat_pos = db.position(NodeId::Satellite(sat)).unwrap();
        assert!((sat_pos.altitude_km() - 550.0).abs() < 5.0);
    }

    #[test]
    fn paths_between_ground_station_and_satellite() {
        let db = database_with_state();
        let visible = db.visible_satellites(GroundStationId(0)).unwrap();
        let sat = NodeId::Satellite(visible[0]);
        let gst = NodeId::ground_station(0);
        let latency = db.path_latency(gst, sat).unwrap().expect("connected");
        assert!(latency.as_millis_f64() > 1.0 && latency.as_millis_f64() < 10.0);
        let path = db.path(gst, sat).unwrap().expect("connected");
        assert_eq!(path.first(), Some(&gst));
        assert_eq!(path.last(), Some(&sat));
    }

    #[test]
    fn precomputed_paths_answer_queries_and_unsolved_rows_fall_back() {
        let mut db = database_with_state();
        let state = db.state().unwrap().clone();
        // Solve only the ground station's row, as the coordinator does for
        // its restricted source set.
        let gst_index = state.satellite_count() as u32;
        let mut engine =
            celestial_constellation::PathEngine::new(celestial_constellation::PathAlgorithm::Dijkstra);
        let paths = engine.solve_sources(state.graph(), &[gst_index]).clone();
        db.set_paths(paths);
        assert!(db.paths().is_some());

        let visible = db.visible_satellites(GroundStationId(0)).unwrap();
        let sat = NodeId::Satellite(visible[0]);
        let gst = NodeId::ground_station(0);
        // Ground-station source: served from the matrix. Satellite source:
        // unsolved row, answered by the one-shot Dijkstra fallback. The
        // graph is undirected, so the two must agree.
        let from_matrix = db.path_latency(gst, sat).unwrap().expect("connected");
        let from_fallback = db.path_latency(sat, gst).unwrap().expect("connected");
        assert_eq!(from_matrix, from_fallback);
        let path = db.path(gst, sat).unwrap().expect("connected");
        assert_eq!(path.first(), Some(&gst));
        assert_eq!(path.last(), Some(&sat));
        // A fresh state update invalidates the cached matrix.
        db.update(state);
        assert!(db.paths().is_none());
    }

    #[test]
    fn lookup_by_name() {
        let db = database_with_state();
        let (id, gst) = db.ground_station_by_name("accra").unwrap();
        assert_eq!(id, GroundStationId(0));
        assert_eq!(gst.name, "accra");
        assert!(db.ground_station_by_name("lagos").is_none());
        assert_eq!(db.shells().len(), 1);
        assert_eq!(db.ground_stations().len(), 1);
    }

    #[test]
    fn tenant_reports_resolve_names_to_indices() {
        let mut db = database_with_state();
        assert!(db.tenant_reports().is_empty());
        assert_eq!(db.tenant_index("tenant-0"), None);

        db.update_tenant_report(1, "beta", 7, 2);
        db.update_tenant_report(0, "alpha", 5, 1);
        assert_eq!(db.tenant_reports().len(), 2);
        assert_eq!(db.tenant_index("alpha"), Some(0));
        assert_eq!(db.tenant_index("beta"), Some(1));
        assert_eq!(db.tenant_index("gamma"), None);
        assert_eq!(db.tenant_reports()[1].pairs, 7);
        assert_eq!(db.tenant_reports()[1].delta_ops, 2);

        // Steady-state refresh keeps the entry count and updates in place.
        db.update_tenant_report(1, "beta", 9, 0);
        assert_eq!(db.tenant_reports().len(), 2);
        assert_eq!(db.tenant_reports()[1].pairs, 9);
    }
}
