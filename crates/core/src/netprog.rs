//! The delta-based network-programming engine.
//!
//! Celestial's coordinator pushes only *changed* `tc` rules to the machine
//! managers: programmed delays are quantized to 0.1 ms, so a pair whose path
//! latency drifted by less than the quantum (and whose bottleneck bandwidth
//! is unchanged) costs nothing per update (Fig. 2). [`ProgrammeStore`] is
//! the engine behind that contract — it retains the previous epoch's
//! programme in a dense node-indexed buffer and emits a
//! [`ProgrammeDelta`] (`{added, changed, removed}`) per constellation
//! update.
//!
//! Coverage spans every pair of *programmable* nodes: ground stations and
//! active satellites, including active-satellite↔active-satellite pairs, so
//! satellite-hosted workloads can exchange traffic. Suspended satellites
//! carry traffic *on* paths but host no running microVM, so pairs ending at
//! them are never programmed.
//!
//! The bottleneck walk reads per-edge bandwidths straight from the
//! constellation graph's CSR arrays and returns `Option<Bandwidth>`: a
//! broken predecessor chain or a missing edge marks the pair *unreachable*
//! instead of programming it with [`Bandwidth::INFINITY`] — no code path can
//! produce an uncapped emulated link. See `docs/NETPROG.md` for the full
//! contract.

use celestial_constellation::{ConstellationState, NetworkGraph, ShortestPaths};
use celestial_netem::{PairProgram, ProgrammeDelta, ShardPlan};
use celestial_types::ids::NodeId;
use celestial_types::{Bandwidth, Latency};

/// Sentinel for an unoccupied slot (no programmed rule for the pair).
const EMPTY_LATENCY: u64 = u64::MAX;

/// Sentinel for a node outside the current slot window.
const WINDOW_NONE: u32 = u32::MAX;

/// One retained rule: quantized latency and bottleneck bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    latency_micros: u64,
    bandwidth_bps: u64,
}

const EMPTY_SLOT: Slot = Slot {
    latency_micros: EMPTY_LATENCY,
    bandwidth_bps: 0,
};

/// Walks the predecessor chain of the shortest path from `source` to
/// `target`, folding the bottleneck bandwidth of the traversed edges (read
/// straight from the graph's CSR arrays).
///
/// Returns `None` — and the caller must treat the pair as *unreachable* —
/// when the chain is broken (`source`'s row unsolved, or the walk does not
/// reach `source`), a traversed edge is missing from the graph, or an edge
/// carries no usable bandwidth: `0` (an edge added without bandwidth
/// information, or an unusable zero-rate link) and `u64::MAX`
/// ([`Bandwidth::INFINITY`] — constellation construction rejects such
/// links, but a malformed graph must still degrade to *unreachable*, never
/// to an uncapped rule). This is the structural fix for the
/// uncapped-bandwidth bug: there is no sentinel value an incomplete walk
/// could leak into the programme.
pub fn bottleneck_bandwidth(
    paths: &ShortestPaths,
    graph: &NetworkGraph,
    source: usize,
    target: usize,
) -> Option<Bandwidth> {
    let mut bottleneck: Option<u64> = None;
    let mut here = target;
    // A shortest path visits each node at most once, so bound the loop.
    for _ in 0..graph.node_count() {
        if here == source {
            return bottleneck.map(Bandwidth::from_bps);
        }
        let parent = paths.predecessor(source, here)?;
        let bandwidth = graph.edge_bandwidth_bps(parent, here)?;
        if bandwidth == 0 || bandwidth == u64::MAX {
            return None;
        }
        bottleneck = Some(bottleneck.map_or(bandwidth, |b| b.min(bandwidth)));
        here = parent;
    }
    // The walk exceeded the node count: a corrupt chain, not a path.
    None
}

/// The dense, epoch-retained programme of per-pair `tc` rules.
///
/// Rules are kept in a triangular *window-indexed* buffer plus a sorted list
/// of occupied pairs. The window is the set of programmable nodes of the
/// current epoch (ground stations plus active satellites); only pairs of
/// window nodes can ever be programmed, so the buffer needs
/// `w·(w−1)/2` slots for a window of `w` nodes instead of
/// `node_count·(node_count−1)/2` over the whole constellation — at
/// mega-constellation scale (16 384 nodes, a few hundred programmable ones)
/// that is the difference between ~50 k slots and ~134 M. When the window
/// shifts between epochs the surviving pairs' slots migrate to the new
/// layout in `O(pairs)`; a pair whose endpoint left the window loses its
/// slot, which is safe because the merge walk never reads a removed pair's
/// retained value — it only emits the pair's identity.
///
/// One constellation update performs a single merge walk of
/// the previous and the fresh occupied-pair lists — `O(pairs)` with no
/// per-update map allocation — and produces the [`ProgrammeDelta`] whose
/// `changed` entries are judged *after* 0.1 ms latency quantization and
/// bandwidth comparison.
#[derive(Debug, Clone, Default)]
pub struct ProgrammeStore {
    node_count: usize,
    /// Triangular slot buffer over *window* indices, `EMPTY_SLOT` where no
    /// rule exists.
    slots: Vec<Slot>,
    /// Node index → window index, `WINDOW_NONE` for out-of-window nodes.
    window: Vec<u32>,
    /// Window index → node index, strictly ascending (so `a < b` in node
    /// space implies `wa < wb` in window space and canonical pair order is
    /// preserved).
    window_nodes: Vec<u32>,
    /// Whether the window has been initialised (distinguishes the empty
    /// window of a fresh store from a deliberately empty one).
    window_ready: bool,
    /// Scratch for window migration: the next epoch's node → window map.
    spare_window: Vec<u32>,
    /// Scratch for window migration: the next epoch's window node list.
    spare_window_nodes: Vec<u32>,
    /// Scratch for window migration: the next epoch's slot buffer.
    spare_slots: Vec<Slot>,
    /// Per-source scratch rows of the metric phase, reused across epochs.
    metric_rows: Vec<Vec<(u32, u64, u64)>>,
    /// Worker threads for the metric phase of [`ProgrammeStore::update_epoch`]
    /// (`0`/`1` = inline).
    threads: usize,
    /// Sorted packed `(a << 32) | b` indices of currently occupied pairs.
    pairs: Vec<u64>,
    /// Scratch: the fresh epoch's occupied pairs (sorted by construction).
    fresh_pairs: Vec<u64>,
    /// Scratch: fresh values, parallel to `fresh_pairs`.
    fresh_slots: Vec<Slot>,
    delta: ProgrammeDelta,
    epoch: u64,
    /// When set, the merge walk additionally partitions the delta into one
    /// [`ProgrammeDelta`] per host (see `docs/SHARDING.md`).
    shard_plan: Option<ShardPlan>,
    /// Per-host change sets of the most recent epoch, indexed by host.
    host_deltas: Vec<ProgrammeDelta>,
    /// Number of pairs currently owned by each shard (cross-host pairs
    /// count in both endpoint shards).
    shard_pairs: Vec<usize>,
}

impl ProgrammeStore {
    /// Creates an empty store; the buffers size themselves on the first
    /// epoch.
    pub fn new() -> Self {
        ProgrammeStore::default()
    }

    /// Enables (or disables) host-sharded partitioning: subsequent epochs
    /// additionally split the change set into one per-host delta, in the
    /// same O(pairs) merge walk. A cross-host pair is mirrored into both
    /// endpoint shards, a same-host pair lands in exactly one.
    ///
    /// # Panics
    ///
    /// Panics after the first epoch: the plan is part of the programme's
    /// identity — re-sharding a retained programme would orphan the rules
    /// already shipped to hosts.
    pub fn set_shard_plan(&mut self, plan: Option<ShardPlan>) {
        assert!(
            self.epoch == 0,
            "the shard plan must be fixed before the first epoch"
        );
        self.shard_plan = plan;
        self.host_deltas.clear();
        self.shard_pairs.clear();
        if let Some(plan) = plan {
            self.host_deltas
                .resize_with(plan.shard_count(), ProgrammeDelta::default);
            self.shard_pairs.resize(plan.shard_count(), 0);
        }
    }

    /// The configured shard plan, if partitioning is enabled.
    pub fn shard_plan(&self) -> Option<ShardPlan> {
        self.shard_plan
    }

    /// The change set produced by the most recent epoch.
    pub fn delta(&self) -> &ProgrammeDelta {
        &self.delta
    }

    /// The per-host change sets of the most recent epoch, indexed by host.
    /// Empty unless a shard plan is set. The union of these deltas is
    /// exactly [`ProgrammeStore::delta`] (cross-host entries appearing in
    /// both endpoint shards) — property-tested in
    /// `tests/shard_partition.rs`.
    pub fn host_deltas(&self) -> &[ProgrammeDelta] {
        &self.host_deltas
    }

    /// Number of pairs currently owned by each shard, indexed by host.
    /// Cross-host pairs are mirrored, so the sum exceeds
    /// [`ProgrammeStore::pair_count`] by the number of cross-host pairs.
    pub fn shard_pair_counts(&self) -> &[usize] {
        &self.shard_pairs
    }

    /// Number of pairs currently programmed.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Sets the worker-thread budget for the metric phase of
    /// [`ProgrammeStore::update_epoch`] (`0` and `1` both mean inline). The
    /// emitted delta is bit-identical for every thread count: rows are
    /// computed in parallel but recorded in canonical order.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Number of completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Iterates the current programme in canonical pair order as
    /// `(a, b, latency, bandwidth)` node-index tuples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Latency, Bandwidth)> + '_ {
        self.pairs.iter().map(|&packed| {
            let (a, b) = unpack(packed);
            let slot = self.slots[self.tri(a, b)];
            (
                a,
                b,
                Latency::from_micros(slot.latency_micros),
                Bandwidth::from_bps(slot.bandwidth_bps),
            )
        })
    }

    /// Runs one programme epoch from a freshly solved constellation state:
    /// enumerates every canonical pair of `sources` (ground stations plus
    /// active satellites, ascending node indices), reads the pair's latency
    /// from the path matrix, walks the predecessor chain for the bottleneck
    /// bandwidth, and merges the result against the retained programme into
    /// the returned [`ProgrammeDelta`].
    ///
    /// Pairs whose latency row is missing, whose predecessor chain breaks or
    /// whose path crosses an edge without bandwidth information are treated
    /// as unreachable (removed if previously programmed) — never as
    /// uncapped.
    ///
    /// The slot window of this epoch is exactly `sources`; metric rows are
    /// computed in parallel when a thread budget is set
    /// ([`ProgrammeStore::set_threads`]) and recorded sequentially in
    /// canonical order, so the delta is bit-identical across thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is not strictly ascending.
    pub fn update_epoch(
        &mut self,
        state: &ConstellationState,
        paths: &ShortestPaths,
        sources: &[u32],
    ) -> &ProgrammeDelta {
        assert!(
            sources.windows(2).all(|w| w[0] < w[1]),
            "programme sources must be strictly ascending"
        );
        self.begin_epoch_over(state.node_count(), Some(sources));
        let graph = state.graph();

        // Metric phase: one row of `(target, quantized latency µs, bps)`
        // tuples per source, fanned out over the thread budget. Rows are
        // independent, so only the sequential record order below matters for
        // determinism.
        let rows = sources.len();
        if self.metric_rows.len() < rows {
            self.metric_rows.resize_with(rows, Vec::new);
        }
        for row in &mut self.metric_rows[..rows] {
            row.clear();
        }
        let fill = |index: usize, out: &mut Vec<(u32, u64, u64)>| {
            let a = sources[index] as usize;
            for &b in &sources[index + 1..] {
                let b = b as usize;
                let Some(latency_micros) = paths.latency_micros(a, b) else {
                    continue;
                };
                let Some(bandwidth) = bottleneck_bandwidth(paths, graph, a, b) else {
                    continue;
                };
                let quantized = Latency::from_micros(latency_micros).quantized_tenth_ms();
                out.push((b as u32, quantized.as_micros(), bandwidth.as_bps()));
            }
        };
        let workers = self.threads.clamp(1, rows.max(1));
        if workers <= 1 {
            for (index, out) in self.metric_rows[..rows].iter_mut().enumerate() {
                fill(index, out);
            }
        } else {
            let per_worker = rows.div_ceil(workers);
            std::thread::scope(|scope| {
                for (chunk_index, chunk) in
                    self.metric_rows[..rows].chunks_mut(per_worker).enumerate()
                {
                    scope.spawn(move || {
                        for (offset, out) in chunk.iter_mut().enumerate() {
                            fill(chunk_index * per_worker + offset, out);
                        }
                    });
                }
            });
        }
        for index in 0..rows {
            let row = std::mem::take(&mut self.metric_rows[index]);
            let a = sources[index] as usize;
            for &(b, latency_micros, bandwidth_bps) in &row {
                self.record(
                    a,
                    b as usize,
                    Latency::from_micros(latency_micros),
                    Bandwidth::from_bps(bandwidth_bps),
                );
            }
            // Hand the allocation back for the next epoch.
            self.metric_rows[index] = row;
        }
        self.commit(|index| state.node_id(index).expect("pair index in range"))
    }

    /// Starts a fresh epoch over `node_count` nodes with the identity slot
    /// window (every node programmable). Test and embedding convenience —
    /// [`ProgrammeStore::update_epoch`] windows on its source list instead.
    #[cfg_attr(not(test), allow(dead_code))]
    fn begin_epoch(&mut self, node_count: usize) {
        self.begin_epoch_over(node_count, None);
    }

    /// Starts a fresh epoch over `node_count` nodes, re-deriving the slot
    /// window (`None` = identity) and migrating retained slots when it
    /// shifted.
    ///
    /// A store serves a single topology: node indices are the identity of
    /// the retained pairs, so changing the node count mid-life would silently
    /// orphan every previously emitted rule (no `removed` entries could be
    /// resolved against the new index space). That is a programming error,
    /// not a constellation event — the constellation's node count is fixed
    /// at build time — so it panics instead of guessing. The *window* may
    /// shift freely between epochs: satellites drift in and out of the
    /// bounding box every update.
    ///
    /// # Panics
    ///
    /// Panics if the node count differs from a previous epoch's, or if the
    /// window is not strictly ascending or references a node out of range.
    fn begin_epoch_over(&mut self, node_count: usize, window: Option<&[u32]>) {
        if self.node_count != node_count {
            assert!(
                self.epoch == 0,
                "ProgrammeStore serves a single topology ({} nodes), got {node_count}",
                self.node_count
            );
            self.node_count = node_count;
            self.slots.clear();
            self.pairs.clear();
            self.window.clear();
            self.window_nodes.clear();
            self.window_ready = false;
        }
        let unchanged = self.window_ready
            && match window {
                // The identity window is recognisable by length alone: a
                // strictly ascending list of `node_count` in-range nodes is
                // exactly `0..node_count`.
                None => self.window_nodes.len() == node_count,
                Some(nodes) => nodes == self.window_nodes.as_slice(),
            };
        if !unchanged {
            self.spare_window_nodes.clear();
            match window {
                None => self.spare_window_nodes.extend(0..node_count as u32),
                Some(nodes) => {
                    assert!(
                        nodes.windows(2).all(|w| w[0] < w[1]),
                        "slot window must be strictly ascending"
                    );
                    assert!(
                        nodes.last().is_none_or(|&last| (last as usize) < node_count),
                        "slot window references a node out of range"
                    );
                    self.spare_window_nodes.extend_from_slice(nodes);
                }
            }
            self.spare_window.clear();
            self.spare_window.resize(node_count, WINDOW_NONE);
            for (index, &node) in self.spare_window_nodes.iter().enumerate() {
                self.spare_window[node as usize] = index as u32;
            }
            let width = self.spare_window_nodes.len();
            self.spare_slots.clear();
            self.spare_slots
                .resize(width * width.saturating_sub(1) / 2, EMPTY_SLOT);
            // Migrate the retained slots of surviving pairs into the new
            // layout. A pair whose endpoint left the window drops its slot:
            // it cannot be re-recorded this epoch (fresh pairs are window
            // pairs), so the merge walk will emit it as removed — and the
            // removal branch never reads the retained value.
            for &packed in &self.pairs {
                let (a, b) = unpack(packed);
                let (wa, wb) = (self.spare_window[a], self.spare_window[b]);
                if wa == WINDOW_NONE || wb == WINDOW_NONE {
                    continue;
                }
                self.spare_slots[tri_at(width, wa as usize, wb as usize)] =
                    self.slots[self.tri(a, b)];
            }
            std::mem::swap(&mut self.slots, &mut self.spare_slots);
            std::mem::swap(&mut self.window, &mut self.spare_window);
            std::mem::swap(&mut self.window_nodes, &mut self.spare_window_nodes);
            self.window_ready = true;
        }
        self.fresh_pairs.clear();
        self.fresh_slots.clear();
    }

    /// Records one reachable pair of the fresh epoch. Pairs must arrive in
    /// strictly ascending canonical order, which the double loop over the
    /// ascending source list guarantees.
    fn record(&mut self, a: usize, b: usize, latency: Latency, bandwidth: Bandwidth) {
        debug_assert!(a < b, "canonical pair order");
        debug_assert!(
            self.window[a] != WINDOW_NONE && self.window[b] != WINDOW_NONE,
            "recorded pairs must lie inside the slot window"
        );
        let packed = pack(a, b);
        debug_assert!(
            self.fresh_pairs.last().is_none_or(|&last| last < packed),
            "pairs must be recorded in ascending order"
        );
        self.fresh_pairs.push(packed);
        self.fresh_slots.push(Slot {
            latency_micros: latency.as_micros(),
            bandwidth_bps: bandwidth.as_bps(),
        });
    }

    /// Merges the fresh epoch against the retained programme: one walk over
    /// the two sorted pair lists, updating the dense buffer in place and
    /// emitting the delta.
    fn commit(&mut self, resolve: impl Fn(usize) -> NodeId) -> &ProgrammeDelta {
        self.epoch += 1;
        self.delta.clear();
        self.delta.epoch = self.epoch;
        for host_delta in &mut self.host_deltas {
            host_delta.clear();
            host_delta.epoch = self.epoch;
        }

        let (mut i, mut j) = (0usize, 0usize);
        while i < self.pairs.len() || j < self.fresh_pairs.len() {
            let old = self.pairs.get(i).copied();
            let fresh = self.fresh_pairs.get(j).copied();
            // Exhausted sides compare as "infinitely large" so the tails of
            // either list drain through the other branch.
            let take_old = old.is_some() && fresh.is_none_or(|f| old.unwrap() <= f);
            let take_fresh = fresh.is_some() && old.is_none_or(|o| fresh.unwrap() <= o);
            match (take_old, take_fresh) {
                (true, true) => {
                    // Same pair in both epochs: changed only if the
                    // quantized latency or the bandwidth differs.
                    let (a, b) = unpack(old.expect("take_old"));
                    let slot_index = self.tri(a, b);
                    let value = self.fresh_slots[j];
                    if self.slots[slot_index] != value {
                        self.slots[slot_index] = value;
                        let program = pair_program(a, b, value, &resolve);
                        self.delta.changed.push(program);
                        self.route_changed(program);
                    }
                    i += 1;
                    j += 1;
                }
                (true, false) => {
                    // Previously programmed, now unreachable. If either
                    // endpoint left the slot window this epoch the retained
                    // slot was already dropped by the window migration; only
                    // surviving pairs still own a slot to clear. Either way
                    // the removal itself is emitted.
                    let (a, b) = unpack(old.expect("take_old"));
                    if self.window[a] != WINDOW_NONE && self.window[b] != WINDOW_NONE {
                        let slot_index = self.tri(a, b);
                        self.slots[slot_index] = EMPTY_SLOT;
                    }
                    let pair = (resolve(a), resolve(b));
                    self.delta.removed.push(pair);
                    self.route_removed(pair);
                    i += 1;
                }
                (false, true) => {
                    // Newly reachable.
                    let (a, b) = unpack(fresh.expect("take_fresh"));
                    let slot_index = self.tri(a, b);
                    let value = self.fresh_slots[j];
                    self.slots[slot_index] = value;
                    let program = pair_program(a, b, value, &resolve);
                    self.delta.added.push(program);
                    self.route_added(program);
                    j += 1;
                }
                (false, false) => unreachable!("loop condition guarantees one side"),
            }
        }

        std::mem::swap(&mut self.pairs, &mut self.fresh_pairs);
        &self.delta
    }

    /// Triangular index of the canonical pair `(a, b)`, `a < b`, both inside
    /// the slot window. `window_nodes` is strictly ascending, so `a < b`
    /// implies `window[a] < window[b]` and the window-space pair stays
    /// canonical.
    fn tri(&self, a: usize, b: usize) -> usize {
        let (wa, wb) = (self.window[a] as usize, self.window[b] as usize);
        debug_assert!(
            self.window[a] != WINDOW_NONE && self.window[b] != WINDOW_NONE,
            "triangular lookup outside the slot window"
        );
        tri_at(self.window_nodes.len(), wa, wb)
    }

    /// Routes a newly reachable pair into its endpoint shards (no-op without
    /// a plan).
    fn route_added(&mut self, program: PairProgram) {
        let Some(plan) = self.shard_plan else { return };
        let (ha, hb) = plan.shards_of_pair(program.a, program.b);
        self.host_deltas[ha.index()].added.push(program);
        self.shard_pairs[ha.index()] += 1;
        if let Some(hb) = hb {
            self.host_deltas[hb.index()].added.push(program);
            self.shard_pairs[hb.index()] += 1;
        }
    }

    /// Routes a re-shaped pair into its endpoint shards (no-op without a
    /// plan).
    fn route_changed(&mut self, program: PairProgram) {
        let Some(plan) = self.shard_plan else { return };
        let (ha, hb) = plan.shards_of_pair(program.a, program.b);
        self.host_deltas[ha.index()].changed.push(program);
        if let Some(hb) = hb {
            self.host_deltas[hb.index()].changed.push(program);
        }
    }

    /// Routes a torn-down pair into its endpoint shards (no-op without a
    /// plan).
    fn route_removed(&mut self, pair: (NodeId, NodeId)) {
        let Some(plan) = self.shard_plan else { return };
        let (ha, hb) = plan.shards_of_pair(pair.0, pair.1);
        self.host_deltas[ha.index()].removed.push(pair);
        self.shard_pairs[ha.index()] = self.shard_pairs[ha.index()].saturating_sub(1);
        if let Some(hb) = hb {
            self.host_deltas[hb.index()].removed.push(pair);
            self.shard_pairs[hb.index()] = self.shard_pairs[hb.index()].saturating_sub(1);
        }
    }
}

/// Triangular index of the window-space pair `(wa, wb)`, `wa < wb`, for a
/// window of `width` nodes.
fn tri_at(width: usize, wa: usize, wb: usize) -> usize {
    wa * (2 * width - wa - 1) / 2 + (wb - wa - 1)
}

fn pack(a: usize, b: usize) -> u64 {
    ((a as u64) << 32) | b as u64
}

fn unpack(packed: u64) -> (usize, usize) {
    ((packed >> 32) as usize, (packed & u32::MAX as u64) as usize)
}

fn pair_program(a: usize, b: usize, slot: Slot, resolve: &impl Fn(usize) -> NodeId) -> PairProgram {
    PairProgram {
        a: resolve(a),
        b: resolve(b),
        latency: Latency::from_micros(slot.latency_micros),
        bandwidth: Bandwidth::from_bps(slot.bandwidth_bps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_constellation::{PathAlgorithm, PathEngine};

    fn resolve(index: usize) -> NodeId {
        NodeId::ground_station(index as u32)
    }

    fn record_ms(store: &mut ProgrammeStore, a: usize, b: usize, ms: f64, mbps: u64) {
        store.record(a, b, Latency::from_millis_f64(ms), Bandwidth::from_mbps(mbps));
    }

    #[test]
    fn first_epoch_reports_every_pair_as_added() {
        let mut store = ProgrammeStore::new();
        store.begin_epoch(4);
        record_ms(&mut store, 0, 1, 4.0, 100);
        record_ms(&mut store, 0, 3, 6.0, 10);
        record_ms(&mut store, 2, 3, 1.0, 50);
        let delta = store.commit(resolve);
        assert_eq!(delta.epoch, 1);
        assert_eq!(delta.added.len(), 3);
        assert!(delta.changed.is_empty() && delta.removed.is_empty());
        assert_eq!(store.pair_count(), 3);
        let current: Vec<_> = store.iter().collect();
        assert_eq!(current[0], (0, 1, Latency::from_millis_f64(4.0), Bandwidth::from_mbps(100)));
        assert_eq!(current[2], (2, 3, Latency::from_millis_f64(1.0), Bandwidth::from_mbps(50)));
    }

    #[test]
    fn steady_epoch_emits_only_the_difference() {
        let mut store = ProgrammeStore::new();
        store.begin_epoch(5);
        record_ms(&mut store, 0, 1, 4.0, 100);
        record_ms(&mut store, 0, 3, 6.0, 10);
        record_ms(&mut store, 2, 3, 1.0, 50);
        store.commit(resolve);

        // Epoch 2: (0,1) unchanged, (0,3) re-shaped, (2,3) gone, (3,4) new.
        store.begin_epoch(5);
        record_ms(&mut store, 0, 1, 4.0, 100);
        record_ms(&mut store, 0, 3, 6.1, 10);
        record_ms(&mut store, 3, 4, 2.0, 25);
        let delta = store.commit(resolve);
        assert_eq!(delta.epoch, 2);
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.added[0].a, NodeId::ground_station(3));
        assert_eq!(delta.changed.len(), 1);
        assert_eq!(delta.changed[0].latency, Latency::from_millis_f64(6.1));
        assert_eq!(delta.removed, vec![(NodeId::ground_station(2), NodeId::ground_station(3))]);
        assert_eq!(delta.op_count(), 3);
        assert_eq!(store.pair_count(), 3);

        // Epoch 3: identical to epoch 2 — the delta is empty.
        store.begin_epoch(5);
        record_ms(&mut store, 0, 1, 4.0, 100);
        record_ms(&mut store, 0, 3, 6.1, 10);
        record_ms(&mut store, 3, 4, 2.0, 25);
        let delta = store.commit(resolve);
        assert!(delta.is_empty(), "unchanged epoch must cost nothing");
    }

    #[test]
    fn bandwidth_changes_alone_mark_a_pair_changed() {
        let mut store = ProgrammeStore::new();
        store.begin_epoch(3);
        record_ms(&mut store, 0, 1, 4.0, 100);
        store.commit(resolve);
        store.begin_epoch(3);
        record_ms(&mut store, 0, 1, 4.0, 80);
        let delta = store.commit(resolve);
        assert_eq!(delta.changed.len(), 1);
        assert_eq!(delta.changed[0].bandwidth, Bandwidth::from_mbps(80));
    }

    #[test]
    fn bottleneck_walk_folds_the_narrowest_edge() {
        // 0 —(10 µs, 10 Gb/s)— 1 —(10 µs, 100 Mb/s)— 2 —(10 µs, 1 Gb/s)— 3
        let graph = NetworkGraph::from_links(
            4,
            [
                (0, 1, 10, 10_000_000_000),
                (1, 2, 10, 100_000_000),
                (2, 3, 10, 1_000_000_000),
            ],
        );
        let paths = graph.all_pairs_dijkstra();
        assert_eq!(
            bottleneck_bandwidth(&paths, &graph, 0, 3),
            Some(Bandwidth::from_mbps(100))
        );
        assert_eq!(
            bottleneck_bandwidth(&paths, &graph, 0, 1),
            Some(Bandwidth::from_gbps(10))
        );
    }

    #[test]
    fn unusable_edge_bandwidths_make_the_pair_unreachable() {
        // Edge with no bandwidth information (0) and a malformed unbounded
        // edge (u64::MAX): both degrade to unreachable, never to a zero-rate
        // or uncapped rule.
        let graph = NetworkGraph::from_links(
            4,
            [(0, 1, 10, 0), (1, 2, 10, u64::MAX), (2, 3, 10, 1_000)],
        );
        let paths = graph.all_pairs_dijkstra();
        assert_eq!(bottleneck_bandwidth(&paths, &graph, 0, 1), None, "0 bps edge");
        assert_eq!(bottleneck_bandwidth(&paths, &graph, 1, 2), None, "unbounded edge");
        assert_eq!(bottleneck_bandwidth(&paths, &graph, 0, 3), None, "path crosses both");
        assert_eq!(
            bottleneck_bandwidth(&paths, &graph, 2, 3),
            Some(Bandwidth::from_bps(1_000)),
            "the healthy edge still resolves"
        );
    }

    #[test]
    fn sharded_commit_partitions_the_delta_per_host() {
        // resolve() maps index i to ground station i, whose round-robin pin
        // is i — so host(i) = i % 3 under a 3-host plan.
        let mut store = ProgrammeStore::new();
        store.set_shard_plan(Some(ShardPlan::new(3)));
        assert_eq!(store.shard_plan(), Some(ShardPlan::new(3)));
        store.begin_epoch(6);
        record_ms(&mut store, 0, 1, 5.0, 100); // hosts 0↔1: cross
        record_ms(&mut store, 0, 3, 4.0, 100); // hosts 0↔0: same host
        record_ms(&mut store, 2, 4, 6.0, 100); // hosts 2↔1: cross
        store.commit(resolve);

        let hosts = store.host_deltas();
        assert_eq!(hosts.len(), 3);
        let added: Vec<Vec<(NodeId, NodeId)>> = hosts
            .iter()
            .map(|d| d.added.iter().map(|p| (p.a, p.b)).collect())
            .collect();
        let gst = NodeId::ground_station;
        assert_eq!(added[0], vec![(gst(0), gst(1)), (gst(0), gst(3))]);
        assert_eq!(added[1], vec![(gst(0), gst(1)), (gst(2), gst(4))]);
        assert_eq!(added[2], vec![(gst(2), gst(4))]);
        assert_eq!(store.shard_pair_counts(), &[2, 2, 1]);
        assert!(hosts.iter().all(|d| d.epoch == 1));

        // Epoch 2: (0,1) re-shaped, (2,4) gone, (0,3) unchanged.
        store.begin_epoch(6);
        record_ms(&mut store, 0, 1, 9.0, 100);
        record_ms(&mut store, 0, 3, 4.0, 100);
        store.commit(resolve);
        let hosts = store.host_deltas();
        assert_eq!(hosts[0].changed.len(), 1, "cross change mirrored to host 0");
        assert_eq!(hosts[1].changed.len(), 1, "cross change mirrored to host 1");
        assert!(hosts[2].changed.is_empty());
        assert_eq!(hosts[1].removed, vec![(gst(2), gst(4))]);
        assert_eq!(hosts[2].removed, vec![(gst(2), gst(4))]);
        assert!(hosts[0].removed.is_empty());
        assert_eq!(store.shard_pair_counts(), &[2, 1, 0]);
        // The unchanged same-host pair costs nothing anywhere.
        assert!(hosts.iter().all(|d| d.added.is_empty()));
    }

    #[test]
    fn without_a_plan_no_host_deltas_are_produced() {
        let mut store = ProgrammeStore::new();
        store.begin_epoch(3);
        record_ms(&mut store, 0, 1, 4.0, 100);
        store.commit(resolve);
        assert!(store.host_deltas().is_empty());
        assert!(store.shard_pair_counts().is_empty());
        assert_eq!(store.shard_plan(), None);
    }

    #[test]
    #[should_panic(expected = "before the first epoch")]
    fn re_sharding_a_live_programme_panics() {
        let mut store = ProgrammeStore::new();
        store.begin_epoch(3);
        record_ms(&mut store, 0, 1, 4.0, 100);
        store.commit(resolve);
        store.set_shard_plan(Some(ShardPlan::new(2)));
    }

    #[test]
    #[should_panic(expected = "single topology")]
    fn changing_the_node_count_mid_life_panics() {
        let mut store = ProgrammeStore::new();
        store.begin_epoch(4);
        record_ms(&mut store, 0, 1, 4.0, 100);
        store.commit(resolve);
        store.begin_epoch(5);
    }

    #[test]
    fn shifting_the_window_migrates_surviving_slots() {
        let mut store = ProgrammeStore::new();
        store.begin_epoch_over(100, Some(&[0, 1, 3]));
        record_ms(&mut store, 0, 1, 4.0, 100);
        record_ms(&mut store, 0, 3, 6.0, 10);
        record_ms(&mut store, 1, 3, 2.0, 50);
        store.commit(resolve);
        assert_eq!(store.slots.len(), 3, "window-sized buffer, not node-sized");

        // Node 3 leaves the window, node 4 enters. The surviving pair (0,1)
        // must keep its retained slot across the migration: re-recording it
        // unchanged emits nothing.
        store.begin_epoch_over(100, Some(&[0, 1, 4]));
        record_ms(&mut store, 0, 1, 4.0, 100);
        record_ms(&mut store, 0, 4, 3.0, 25);
        let delta = store.commit(resolve).clone();
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.added[0].b, NodeId::ground_station(4));
        assert!(delta.changed.is_empty(), "migrated slot still compares equal");
        assert_eq!(
            delta.removed,
            vec![
                (NodeId::ground_station(0), NodeId::ground_station(3)),
                (NodeId::ground_station(1), NodeId::ground_station(3)),
            ],
            "pairs with a departed endpoint are removed"
        );
        assert_eq!(store.pair_count(), 2);

        // Node 3 re-enters: the pair comes back as a plain addition.
        store.begin_epoch_over(100, Some(&[0, 1, 3, 4]));
        record_ms(&mut store, 0, 1, 4.0, 100);
        record_ms(&mut store, 0, 3, 7.0, 10);
        record_ms(&mut store, 0, 4, 3.0, 25);
        let delta = store.commit(resolve);
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.added[0].latency, Latency::from_millis_f64(7.0));
        assert!(delta.changed.is_empty() && delta.removed.is_empty());
    }

    #[test]
    fn windowed_epochs_match_identity_window_epochs() {
        // The same recorded metric sequence must produce bit-identical
        // deltas whether the slot buffer spans all nodes or only the
        // per-epoch window — the windowing is a memory layout, not a
        // semantic change.
        let epochs: &[(&[u32], &[(usize, usize, f64, u64)])] = &[
            (&[0, 2, 5, 7], &[(0, 2, 4.0, 100), (0, 7, 6.0, 10), (5, 7, 2.0, 50)]),
            (&[0, 2, 6, 7], &[(0, 2, 4.0, 100), (0, 7, 6.1, 10), (6, 7, 1.0, 25)]),
            (&[0, 2, 6, 7], &[(0, 2, 4.0, 100), (0, 7, 6.1, 10), (6, 7, 1.0, 25)]),
            (&[0, 5, 6, 7], &[(0, 5, 9.0, 5), (6, 7, 1.0, 30)]),
        ];
        let mut windowed = ProgrammeStore::new();
        let mut identity = ProgrammeStore::new();
        for &(window, records) in epochs {
            windowed.begin_epoch_over(8, Some(window));
            identity.begin_epoch_over(8, None);
            for &(a, b, ms, mbps) in records {
                record_ms(&mut windowed, a, b, ms, mbps);
                record_ms(&mut identity, a, b, ms, mbps);
            }
            assert_eq!(windowed.commit(resolve), identity.commit(resolve));
            assert_eq!(
                windowed.iter().collect::<Vec<_>>(),
                identity.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn update_epoch_is_deterministic_across_thread_counts() {
        use celestial_constellation::{BoundingBox, Constellation, GroundStation, Shell};
        use celestial_sgp4::WalkerShell;
        use celestial_types::geo::Geodetic;

        let constellation = Constellation::builder()
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 6, 8)))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .build()
            .unwrap();
        let mut serial = ProgrammeStore::new();
        let mut threaded = ProgrammeStore::new();
        threaded.set_threads(4);
        let mut engine = PathEngine::with_threads(PathAlgorithm::Dijkstra, 1);
        for step in 0..4 {
            let state = constellation.state_at(step as f64 * 15.0).unwrap();
            let mut sources: Vec<u32> = Vec::new();
            for sat in state.active_satellites() {
                sources.push(state.node_index(NodeId::Satellite(sat)).unwrap() as u32);
            }
            for gst in 0..state.ground_station_count() as u32 {
                sources.push(state.node_index(NodeId::ground_station(gst)).unwrap() as u32);
            }
            let paths = engine.solve_sources(state.graph(), &sources).clone();
            assert_eq!(
                serial.update_epoch(&state, &paths, &sources),
                threaded.update_epoch(&state, &paths, &sources),
                "delta diverged at step {step}"
            );
            assert_eq!(
                serial.iter().collect::<Vec<_>>(),
                threaded.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn an_unsorted_window_panics() {
        let mut store = ProgrammeStore::new();
        store.begin_epoch_over(4, Some(&[2, 1]));
    }

    #[test]
    fn broken_chains_are_unreachable_not_uncapped() {
        let graph = NetworkGraph::from_links(3, [(0, 1, 10, 1_000), (1, 2, 10, 1_000)]);
        // Solve only source 0: source 2's row is unsolved, so its
        // predecessor chain is broken from the first step.
        let mut engine = PathEngine::with_threads(PathAlgorithm::Dijkstra, 1);
        let paths = engine.solve_sources(&graph, &[0]).clone();
        assert_eq!(bottleneck_bandwidth(&paths, &graph, 2, 0), None);
        // The solved row works normally.
        assert_eq!(
            bottleneck_bandwidth(&paths, &graph, 0, 2),
            Some(Bandwidth::from_bps(1_000))
        );
    }
}
