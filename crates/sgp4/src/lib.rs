//! Orbital mechanics substrate for the Celestial LEO edge testbed.
//!
//! Celestial's Constellation Calculation is built on the SGP4 simplified
//! perturbations model: satellite state can be supplied as NORAD two-line
//! element sets or generated from simple shell parameters (altitude,
//! inclination, number of planes, satellites per plane). This crate provides:
//!
//! * [`tle`] — parsing and validation of two-line element sets,
//! * [`elements`] — classical orbital elements and conversions to/from mean
//!   motion,
//! * [`kepler`] — a Kepler-equation solver,
//! * [`propagator`] — an SGP4-class propagator with secular J2 perturbations
//!   and an atmospheric-drag term,
//! * [`frames`] — coordinate frames (TEME/ECI ↔ ECEF ↔ geodetic, GMST),
//! * [`walker`] — Walker-delta shell generation, including Iridium-style
//!   constellations that spread ascending nodes over a 180° arc.
//!
//! # Examples
//!
//! ```
//! use celestial_sgp4::walker::WalkerShell;
//! use celestial_sgp4::propagator::Propagator;
//!
//! // One plane of the first Starlink shell.
//! let shell = WalkerShell::new(550.0, 53.0, 1, 22);
//! let elements = shell.satellite_elements();
//! assert_eq!(elements.len(), 22);
//!
//! let propagator = Propagator::new(elements[0].clone());
//! let state = propagator.propagate_minutes(10.0).unwrap();
//! // The satellite stays near its 550 km shell altitude.
//! let altitude = state.position_eci.norm() - celestial_types::constants::EARTH_RADIUS_KM;
//! assert!((altitude - 550.0).abs() < 25.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elements;
pub mod frames;
pub mod kepler;
pub mod propagator;
pub mod tle;
pub mod walker;

pub use elements::OrbitalElements;
pub use propagator::{propagate_all_minutes, Propagator, SatelliteState};
pub use tle::Tle;
pub use walker::WalkerShell;
