//! An SGP4-class orbit propagator.
//!
//! Celestial extends the SILLEO-SCNS constellation calculation with the SGP4
//! simplified perturbations model. This reproduction implements the dominant
//! terms of that model for low-Earth orbits:
//!
//! * two-body Keplerian motion,
//! * secular J2 perturbations of the right ascension of the ascending node,
//!   the argument of perigee and the mean anomaly (nodal regression and
//!   apsidal rotation — the effects that shape constellation ground tracks),
//! * a first-order atmospheric-drag term from the TLE `n-dot`/B* fields.
//!
//! Short-periodic corrections of the full SGP4 model are omitted; for the
//! 500–1500 km constellation shells the testbed emulates they amount to a few
//! kilometres of position error (microseconds of link latency), far below the
//! millisecond resolution of the network emulation. The propagator's accuracy
//! is validated against analytic values in the unit tests and against the
//! nodal-regression rate expected for sun-synchronous orbits.

use crate::elements::OrbitalElements;
use crate::kepler::{eccentric_to_true_anomaly, solve_kepler, wrap_two_pi};
use celestial_types::constants::{DEG_TO_RAD, EARTH_J2, EARTH_MU_KM3_S2, EARTH_RADIUS_KM};
use celestial_types::geo::Cartesian;
use celestial_types::{Error, Result};
use serde::{Deserialize, Serialize};

/// The instantaneous state of a satellite produced by the propagator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SatelliteState {
    /// Position in the inertial (TEME/ECI) frame, kilometres.
    pub position_eci: Cartesian,
    /// Velocity in the inertial frame, kilometres per second.
    pub velocity_eci: Cartesian,
}

/// An orbit propagator for a single satellite.
///
/// The propagator pre-computes the secular perturbation rates at construction
/// so that each [`propagate_minutes`](Propagator::propagate_minutes) call is a
/// small, allocation-free computation — the constellation calculation calls
/// it for every satellite at every update step.
#[derive(Debug, Clone)]
pub struct Propagator {
    elements: OrbitalElements,
    // Pre-computed quantities.
    semi_major_axis_km: f64,
    mean_motion_rad_min: f64,
    raan_rate_rad_min: f64,
    argp_rate_rad_min: f64,
    mean_anomaly_rate_correction: f64,
}

impl Propagator {
    /// Creates a propagator for the given orbital elements.
    pub fn new(elements: OrbitalElements) -> Self {
        let a = elements.semi_major_axis_km();
        let n = elements.mean_motion_rad_per_min();
        let e = elements.eccentricity;
        let i = elements.inclination_rad();
        let p = a * (1.0 - e * e);
        // Secular J2 rates (rad per minute).
        let j2_factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_KM / p).powi(2) * n;
        let raan_rate = -j2_factor * i.cos();
        let argp_rate = j2_factor * (2.0 - 2.5 * i.sin().powi(2));
        let mean_anomaly_corr =
            j2_factor * (1.0 - 1.5 * i.sin().powi(2)) * (1.0 - e * e).sqrt();
        Propagator {
            semi_major_axis_km: a,
            mean_motion_rad_min: n,
            raan_rate_rad_min: raan_rate,
            argp_rate_rad_min: argp_rate,
            mean_anomaly_rate_correction: mean_anomaly_corr,
            elements,
        }
    }

    /// Returns the orbital elements this propagator was built from.
    pub fn elements(&self) -> &OrbitalElements {
        &self.elements
    }

    /// The nodal regression rate in degrees per day (useful for validation
    /// and for designing sun-synchronous shells).
    pub fn raan_rate_deg_per_day(&self) -> f64 {
        self.raan_rate_rad_min * 24.0 * 60.0 / DEG_TO_RAD
    }

    /// Propagates the orbit to `minutes` minutes of simulated time and
    /// returns the satellite's inertial position and velocity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Propagation`] if the orbit has decayed below the
    /// Earth's surface (e.g. through the drag term) or the elements are
    /// otherwise unpropagatable.
    pub fn propagate_minutes(&self, minutes: f64) -> Result<SatelliteState> {
        let e = self.elements.eccentricity;
        let tsince = minutes - self.elements.epoch_offset_min;

        // Drag: the TLE carries n-dot/2 in rev/day^2; integrate it to adjust
        // the mean motion and semi-major axis.
        let n0_rev_day = self.elements.mean_motion_rev_per_day;
        let ndot2 = self.elements.mean_motion_dot;
        let tsince_days = tsince / (24.0 * 60.0);
        let n_rev_day = n0_rev_day + 2.0 * ndot2 * tsince_days;
        if n_rev_day <= 0.0 {
            return Err(Error::Propagation(format!(
                "mean motion became non-positive for {}",
                self.elements.name
            )));
        }
        let a = if ndot2 == 0.0 {
            self.semi_major_axis_km
        } else {
            crate::elements::semi_major_axis_from_mean_motion(n_rev_day)
        };
        if a * (1.0 - e) < EARTH_RADIUS_KM {
            return Err(Error::Propagation(format!(
                "orbit of {} decayed below the surface",
                self.elements.name
            )));
        }

        let n_rad_min = if ndot2 == 0.0 {
            self.mean_motion_rad_min
        } else {
            n_rev_day * 2.0 * std::f64::consts::PI / (24.0 * 60.0)
        };

        // Secular element updates.
        let m0 = self.elements.mean_anomaly_deg * DEG_TO_RAD;
        let mean_anomaly = wrap_two_pi(
            m0 + (n_rad_min + self.mean_anomaly_rate_correction) * tsince,
        );
        let raan = wrap_two_pi(
            self.elements.raan_deg * DEG_TO_RAD + self.raan_rate_rad_min * tsince,
        );
        let argp = wrap_two_pi(
            self.elements.argument_of_perigee_deg * DEG_TO_RAD + self.argp_rate_rad_min * tsince,
        );
        let inclination = self.elements.inclination_rad();

        // Position in the orbital plane.
        let eccentric_anomaly = solve_kepler(mean_anomaly, e);
        let true_anomaly = eccentric_to_true_anomaly(eccentric_anomaly, e);
        let r = a * (1.0 - e * eccentric_anomaly.cos());
        let p = a * (1.0 - e * e);
        let h = (EARTH_MU_KM3_S2 * p).sqrt();

        let (sin_nu, cos_nu) = true_anomaly.sin_cos();
        let x_orb = r * cos_nu;
        let y_orb = r * sin_nu;
        let vx_orb = -(EARTH_MU_KM3_S2 / h) * sin_nu;
        let vy_orb = (EARTH_MU_KM3_S2 / h) * (e + cos_nu);

        // Rotate from the perifocal frame into the inertial frame.
        let (sin_raan, cos_raan) = raan.sin_cos();
        let (sin_argp, cos_argp) = argp.sin_cos();
        let (sin_i, cos_i) = inclination.sin_cos();

        let r11 = cos_raan * cos_argp - sin_raan * sin_argp * cos_i;
        let r12 = -cos_raan * sin_argp - sin_raan * cos_argp * cos_i;
        let r21 = sin_raan * cos_argp + cos_raan * sin_argp * cos_i;
        let r22 = -sin_raan * sin_argp + cos_raan * cos_argp * cos_i;
        let r31 = sin_argp * sin_i;
        let r32 = cos_argp * sin_i;

        let position_eci = Cartesian::new(
            r11 * x_orb + r12 * y_orb,
            r21 * x_orb + r22 * y_orb,
            r31 * x_orb + r32 * y_orb,
        );
        let velocity_eci = Cartesian::new(
            r11 * vx_orb + r12 * vy_orb,
            r21 * vx_orb + r22 * vy_orb,
            r31 * vx_orb + r32 * vy_orb,
        );

        Ok(SatelliteState {
            position_eci,
            velocity_eci,
        })
    }

    /// Propagates the orbit to `seconds` seconds of simulated time.
    ///
    /// # Errors
    ///
    /// See [`propagate_minutes`](Propagator::propagate_minutes).
    pub fn propagate_seconds(&self, seconds: f64) -> Result<SatelliteState> {
        self.propagate_minutes(seconds / 60.0)
    }
}

/// Below this batch size the scoped-thread fan-out costs more than it saves
/// and [`propagate_all_minutes`] propagates on the calling thread.
const MIN_PARALLEL_BATCH: usize = 64;

/// Propagates a whole batch of satellites to the same instant, appending one
/// [`SatelliteState`] per propagator to `out` in input order.
///
/// This is the bulk entry point the constellation calculation uses at every
/// epoch: `out` is a caller-owned buffer that is reused across epochs (only
/// its length changes, so a steady-state caller allocates nothing), and the
/// batch is fanned out over at most `threads` scoped worker threads
/// (`std::thread::scope`; `threads <= 1` or a small batch propagates on the
/// calling thread). Results are bit-identical regardless of the thread
/// count: each worker writes disjoint slots of the output slice.
///
/// # Errors
///
/// Returns the first propagation error in input order; `out` keeps its new
/// length but the slots after a failed satellite are unspecified, so callers
/// must treat the buffer as garbage on error.
///
/// # Examples
///
/// ```
/// use celestial_sgp4::{propagate_all_minutes, Propagator, WalkerShell};
///
/// let props: Vec<Propagator> = WalkerShell::new(550.0, 53.0, 2, 4)
///     .satellite_elements()
///     .into_iter()
///     .map(Propagator::new)
///     .collect();
/// let mut states = Vec::new();
/// propagate_all_minutes(&props, 10.0, &mut states, 4).unwrap();
/// assert_eq!(states.len(), 8);
/// // The batch result matches the per-satellite API exactly.
/// assert_eq!(states[3], props[3].propagate_minutes(10.0).unwrap());
/// ```
pub fn propagate_all_minutes(
    propagators: &[Propagator],
    minutes: f64,
    out: &mut Vec<SatelliteState>,
    threads: usize,
) -> Result<()> {
    let start = out.len();
    let filler = SatelliteState {
        position_eci: Cartesian::new(0.0, 0.0, 0.0),
        velocity_eci: Cartesian::new(0.0, 0.0, 0.0),
    };
    out.resize(start + propagators.len(), filler);
    let slots = &mut out[start..];

    let workers = threads.min(propagators.len()).max(1);
    if workers <= 1 || propagators.len() < MIN_PARALLEL_BATCH {
        for (propagator, slot) in propagators.iter().zip(slots.iter_mut()) {
            *slot = propagator.propagate_minutes(minutes)?;
        }
        return Ok(());
    }

    let per_worker = propagators.len().div_ceil(workers);
    let mut outcomes: Vec<Result<()>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = propagators
            .chunks(per_worker)
            .zip(slots.chunks_mut(per_worker))
            .map(|(chunk, chunk_out)| {
                scope.spawn(move || -> Result<()> {
                    for (propagator, slot) in chunk.iter().zip(chunk_out.iter_mut()) {
                        *slot = propagator.propagate_minutes(minutes)?;
                    }
                    Ok(())
                })
            })
            .collect();
        outcomes.extend(
            handles
                .into_iter()
                .map(|handle| handle.join().expect("propagation worker panicked")),
        );
    });
    // Chunks are in input order, so the first failure reported is the first
    // failing satellite — the same error the serial loop would return.
    outcomes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tle::Tle;
    use proptest::prelude::*;

    fn starlink_elements() -> OrbitalElements {
        OrbitalElements::circular("starlink", 550.0, 53.0, 30.0, 45.0)
    }

    #[test]
    fn circular_orbit_stays_at_altitude() {
        let prop = Propagator::new(starlink_elements());
        for minutes in [0.0, 10.0, 47.8, 95.6, 500.0] {
            let state = prop.propagate_minutes(minutes).expect("propagation");
            let altitude = state.position_eci.norm() - EARTH_RADIUS_KM;
            assert!(
                (altitude - 550.0).abs() < 1.0,
                "altitude {altitude} at t={minutes}"
            );
        }
    }

    #[test]
    fn orbital_speed_matches_vis_viva() {
        let prop = Propagator::new(starlink_elements());
        let state = prop.propagate_minutes(12.3).expect("propagation");
        let r = state.position_eci.norm();
        let expected_speed = (EARTH_MU_KM3_S2 / r).sqrt();
        let speed = state.velocity_eci.norm();
        assert!(
            (speed - expected_speed).abs() < 0.01,
            "speed {speed}, expected {expected_speed}"
        );
        // The paper quotes >27,000 km/h for LEO satellites.
        assert!(speed * 3600.0 > 27_000.0);
    }

    #[test]
    fn period_returns_to_start() {
        let elements = starlink_elements();
        let period = elements.period_minutes();
        let prop = Propagator::new(elements);
        let start = prop.propagate_minutes(0.0).expect("propagation");
        let after = prop.propagate_minutes(period).expect("propagation");
        // J2 causes a slow drift, but one orbit later the satellite should be
        // within a few kilometres of its starting point.
        assert!(start.position_eci.distance_to(&after.position_eci) < 60.0);
    }

    #[test]
    fn velocity_is_perpendicular_to_position_for_circular_orbit() {
        let prop = Propagator::new(starlink_elements());
        let state = prop.propagate_minutes(33.0).expect("propagation");
        let cos_angle = state.position_eci.dot(&state.velocity_eci)
            / (state.position_eci.norm() * state.velocity_eci.norm());
        assert!(cos_angle.abs() < 1e-6);
    }

    #[test]
    fn nodal_regression_for_polar_orbit_is_zero() {
        let polar = OrbitalElements::circular("iridium", 780.0, 90.0, 0.0, 0.0);
        let prop = Propagator::new(polar);
        assert!(prop.raan_rate_deg_per_day().abs() < 1e-9);
    }

    #[test]
    fn nodal_regression_for_starlink_is_about_five_degrees_per_day() {
        // At 550 km / 53° inclination the J2 regression is roughly -5°/day
        // (westwards).
        let prop = Propagator::new(starlink_elements());
        let rate = prop.raan_rate_deg_per_day();
        assert!(rate < -4.0 && rate > -6.0, "rate {rate}");
    }

    #[test]
    fn inclination_bounds_latitude() {
        let prop = Propagator::new(starlink_elements());
        for i in 0..200 {
            let state = prop.propagate_minutes(i as f64).expect("propagation");
            let lat = state.position_eci.to_geodetic().latitude_deg();
            assert!(lat.abs() <= 53.5, "latitude {lat} exceeds inclination");
        }
    }

    #[test]
    fn iss_tle_propagates_to_iss_altitude() {
        let tle = Tle::parse(
            "ISS (ZARYA)",
            "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927",
            "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537",
        )
        .expect("valid TLE");
        let prop = Propagator::new(tle.to_elements(0.0));
        let state = prop.propagate_minutes(0.0).expect("propagation");
        let altitude = state.position_eci.norm() - EARTH_RADIUS_KM;
        assert!((300.0..450.0).contains(&altitude), "altitude {altitude}");
    }

    #[test]
    fn decayed_orbit_is_reported() {
        let mut elements = OrbitalElements::circular("decaying", 200.0, 53.0, 0.0, 0.0);
        // An absurdly large drag term wipes the orbit out within a day.
        elements.mean_motion_dot = -4.0;
        let prop = Propagator::new(elements);
        let result = prop.propagate_minutes(3_000.0);
        assert!(result.is_err());
    }

    #[test]
    fn batch_propagation_matches_the_serial_api_for_any_thread_count() {
        use crate::walker::WalkerShell;
        // Above MIN_PARALLEL_BATCH so the scoped fan-out actually runs.
        let props: Vec<Propagator> = WalkerShell::new(550.0, 53.0, 8, 12)
            .satellite_elements()
            .into_iter()
            .map(Propagator::new)
            .collect();
        let serial: Vec<SatelliteState> = props
            .iter()
            .map(|p| p.propagate_minutes(17.5).unwrap())
            .collect();
        for threads in [1, 2, 3, 7] {
            let mut batch = Vec::new();
            propagate_all_minutes(&props, 17.5, &mut batch, threads).unwrap();
            assert_eq!(batch, serial, "thread count {threads} diverged");
        }
    }

    #[test]
    fn batch_propagation_appends_and_reuses_the_buffer() {
        let props = vec![Propagator::new(starlink_elements())];
        let mut out = Vec::new();
        propagate_all_minutes(&props, 1.0, &mut out, 2).unwrap();
        propagate_all_minutes(&props, 2.0, &mut out, 2).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], props[0].propagate_minutes(1.0).unwrap());
        assert_eq!(out[1], props[0].propagate_minutes(2.0).unwrap());
        // Steady-state reuse: clearing keeps the capacity.
        let capacity = out.capacity();
        out.clear();
        propagate_all_minutes(&props, 3.0, &mut out, 2).unwrap();
        assert_eq!(out.capacity(), capacity);
    }

    #[test]
    fn batch_propagation_reports_decayed_orbits() {
        let mut elements = OrbitalElements::circular("decaying", 200.0, 53.0, 0.0, 0.0);
        elements.mean_motion_dot = -4.0;
        let props: Vec<Propagator> = (0..100)
            .map(|_| Propagator::new(elements.clone()))
            .collect();
        let mut out = Vec::new();
        assert!(propagate_all_minutes(&props, 3_000.0, &mut out, 4).is_err());
    }

    #[test]
    fn propagate_seconds_matches_minutes() {
        let prop = Propagator::new(starlink_elements());
        let a = prop.propagate_minutes(2.0).expect("propagation");
        let b = prop.propagate_seconds(120.0).expect("propagation");
        assert!(a.position_eci.distance_to(&b.position_eci) < 1e-9);
    }

    proptest! {
        #[test]
        fn altitude_stays_bounded_for_any_time(
            minutes in 0.0f64..3000.0,
            raan in 0.0f64..360.0,
            anomaly in 0.0f64..360.0,
        ) {
            let elements = OrbitalElements::circular("p", 1110.0, 53.8, raan, anomaly);
            let prop = Propagator::new(elements);
            let state = prop.propagate_minutes(minutes).unwrap();
            let altitude = state.position_eci.norm() - EARTH_RADIUS_KM;
            prop_assert!((altitude - 1110.0).abs() < 5.0);
        }
    }
}
