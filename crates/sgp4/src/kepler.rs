//! Kepler's equation and anomaly conversions.
//!
//! Orbit propagation advances the *mean anomaly* linearly in time; to obtain
//! a position the mean anomaly must be converted into the *eccentric anomaly*
//! (by solving Kepler's equation `M = E - e sin E`) and then into the *true
//! anomaly*.

/// Solves Kepler's equation `M = E - e·sin(E)` for the eccentric anomaly `E`
/// using Newton–Raphson iteration.
///
/// `mean_anomaly_rad` may be any real number; the returned eccentric anomaly
/// is congruent to it modulo 2π. `eccentricity` must be in `[0, 1)`.
///
/// # Panics
///
/// Panics if `eccentricity` is outside `[0, 1)` (hyperbolic and parabolic
/// orbits are not meaningful for LEO constellations).
pub fn solve_kepler(mean_anomaly_rad: f64, eccentricity: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&eccentricity),
        "eccentricity must be in [0, 1) for closed orbits"
    );
    let m = mean_anomaly_rad;
    // A good starting guess: E ≈ M for small e, E ≈ π for large e.
    let mut e_anom = if eccentricity < 0.8 { m } else { std::f64::consts::PI };
    for _ in 0..50 {
        let f = e_anom - eccentricity * e_anom.sin() - m;
        let f_prime = 1.0 - eccentricity * e_anom.cos();
        let delta = f / f_prime;
        e_anom -= delta;
        if delta.abs() < 1e-12 {
            break;
        }
    }
    e_anom
}

/// Converts an eccentric anomaly to the true anomaly for the given
/// eccentricity.
pub fn eccentric_to_true_anomaly(eccentric_anomaly_rad: f64, eccentricity: f64) -> f64 {
    let half = eccentric_anomaly_rad / 2.0;
    let factor = ((1.0 + eccentricity) / (1.0 - eccentricity)).sqrt();
    2.0 * (factor * half.tan()).atan()
}

/// Converts a true anomaly to the eccentric anomaly for the given
/// eccentricity.
pub fn true_to_eccentric_anomaly(true_anomaly_rad: f64, eccentricity: f64) -> f64 {
    let half = true_anomaly_rad / 2.0;
    let factor = ((1.0 - eccentricity) / (1.0 + eccentricity)).sqrt();
    2.0 * (factor * half.tan()).atan()
}

/// Converts an eccentric anomaly to the mean anomaly via Kepler's equation.
pub fn eccentric_to_mean_anomaly(eccentric_anomaly_rad: f64, eccentricity: f64) -> f64 {
    eccentric_anomaly_rad - eccentricity * eccentric_anomaly_rad.sin()
}

/// Normalises an angle in radians to the interval `[0, 2π)`.
pub fn wrap_two_pi(angle_rad: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut a = angle_rad % two_pi;
    if a < 0.0 {
        a += two_pi;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn circular_orbit_anomalies_are_identical() {
        for m in [0.0, 0.5, 1.0, 3.0, 6.0] {
            let e_anom = solve_kepler(m, 0.0);
            assert!((e_anom - m).abs() < 1e-12);
            assert!((eccentric_to_true_anomaly(e_anom, 0.0) - wrapped_diff(m)).abs() < 1e-9);
        }
    }

    fn wrapped_diff(m: f64) -> f64 {
        // eccentric_to_true_anomaly returns values in (-π, π]; compare in
        // that range.
        let a = wrap_two_pi(m);
        if a > std::f64::consts::PI {
            a - 2.0 * std::f64::consts::PI
        } else {
            a
        }
    }

    #[test]
    fn kepler_solution_satisfies_equation() {
        let e = 0.3;
        for i in 0..100 {
            let m = i as f64 * 0.0628;
            let e_anom = solve_kepler(m, e);
            let residual = e_anom - e * e_anom.sin() - m;
            assert!(residual.abs() < 1e-10, "residual {residual} at M={m}");
        }
    }

    #[test]
    #[should_panic(expected = "eccentricity")]
    fn hyperbolic_orbit_rejected() {
        solve_kepler(1.0, 1.5);
    }

    #[test]
    fn wrap_two_pi_behaviour() {
        let two_pi = 2.0 * std::f64::consts::PI;
        assert!((wrap_two_pi(-0.1) - (two_pi - 0.1)).abs() < 1e-12);
        assert!((wrap_two_pi(two_pi + 0.25) - 0.25).abs() < 1e-12);
        assert_eq!(wrap_two_pi(0.0), 0.0);
    }

    proptest! {
        #[test]
        fn anomaly_round_trip(m in 0.0f64..6.28, e in 0.0f64..0.9) {
            let e_anom = solve_kepler(m, e);
            let back = eccentric_to_mean_anomaly(e_anom, e);
            prop_assert!((wrap_two_pi(back) - wrap_two_pi(m)).abs() < 1e-8);
        }

        #[test]
        fn true_eccentric_round_trip(nu in -3.0f64..3.0, e in 0.0f64..0.9) {
            let e_anom = true_to_eccentric_anomaly(nu, e);
            let back = eccentric_to_true_anomaly(e_anom, e);
            prop_assert!((back - nu).abs() < 1e-9);
        }
    }
}
