//! Two-line element set (TLE) parsing.
//!
//! Celestial can load real constellations from the NORAD TLE database. A TLE
//! consists of an optional name line followed by two 69-character data lines
//! with a modulo-10 checksum each. This parser extracts the fields required
//! for propagation and converts them into [`OrbitalElements`].

use crate::elements::OrbitalElements;
use celestial_types::{Error, Result};
use serde::{Deserialize, Serialize};

/// A parsed two-line element set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tle {
    /// Satellite name (line 0), or the catalogue number when absent.
    pub name: String,
    /// NORAD catalogue number.
    pub catalog_number: u32,
    /// Epoch year (full four-digit year).
    pub epoch_year: u32,
    /// Epoch day of year including fractional part.
    pub epoch_day: f64,
    /// First derivative of mean motion divided by two, rev/day².
    pub mean_motion_dot: f64,
    /// B* drag term in inverse Earth radii.
    pub bstar: f64,
    /// Inclination in degrees.
    pub inclination_deg: f64,
    /// Right ascension of the ascending node in degrees.
    pub raan_deg: f64,
    /// Eccentricity.
    pub eccentricity: f64,
    /// Argument of perigee in degrees.
    pub argument_of_perigee_deg: f64,
    /// Mean anomaly in degrees.
    pub mean_anomaly_deg: f64,
    /// Mean motion in revolutions per day.
    pub mean_motion_rev_per_day: f64,
    /// Revolution number at epoch.
    pub revolution_number: u32,
}

impl Tle {
    /// Parses a TLE from a name line and two data lines.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Tle`] if either line is malformed, has the wrong line
    /// number, or fails its checksum.
    pub fn parse(name: &str, line1: &str, line2: &str) -> Result<Self> {
        let l1 = validate_line(line1, '1')?;
        let l2 = validate_line(line2, '2')?;

        let catalog_number = parse_field::<u32>(&l1, 2, 7, "catalog number")?;
        let epoch_year_short = parse_field::<u32>(&l1, 18, 20, "epoch year")?;
        let epoch_year = if epoch_year_short < 57 {
            2000 + epoch_year_short
        } else {
            1900 + epoch_year_short
        };
        let epoch_day = parse_field::<f64>(&l1, 20, 32, "epoch day")?;
        let mean_motion_dot = parse_signed_decimal(&l1, 33, 43, "mean motion derivative")?;
        let bstar = parse_implied_decimal(&l1, 53, 61, "bstar")?;

        let inclination_deg = parse_field::<f64>(&l2, 8, 16, "inclination")?;
        let raan_deg = parse_field::<f64>(&l2, 17, 25, "raan")?;
        let ecc_digits = field(&l2, 26, 33).trim().to_owned();
        let eccentricity = format!("0.{ecc_digits}")
            .parse::<f64>()
            .map_err(|_| Error::Tle(format!("invalid eccentricity field '{ecc_digits}'")))?;
        let argument_of_perigee_deg = parse_field::<f64>(&l2, 34, 42, "argument of perigee")?;
        let mean_anomaly_deg = parse_field::<f64>(&l2, 43, 51, "mean anomaly")?;
        let mean_motion_rev_per_day = parse_field::<f64>(&l2, 52, 63, "mean motion")?;
        let revolution_number = field(&l2, 63, 68)
            .trim()
            .parse::<u32>()
            .unwrap_or(0);

        let name = if name.trim().is_empty() {
            format!("NORAD {catalog_number}")
        } else {
            name.trim().to_owned()
        };

        Ok(Tle {
            name,
            catalog_number,
            epoch_year,
            epoch_day,
            mean_motion_dot,
            bstar,
            inclination_deg,
            raan_deg,
            eccentricity,
            argument_of_perigee_deg,
            mean_anomaly_deg,
            mean_motion_rev_per_day,
            revolution_number,
        })
    }

    /// Parses every TLE contained in a text document of the format published
    /// by CelesTrak: repeated groups of a name line and two data lines.
    ///
    /// # Errors
    ///
    /// Returns the first parse error encountered.
    pub fn parse_document(text: &str) -> Result<Vec<Tle>> {
        let lines: Vec<&str> = text
            .lines()
            .map(str::trim_end)
            .filter(|l| !l.trim().is_empty())
            .collect();
        let mut result = Vec::new();
        let mut i = 0;
        while i < lines.len() {
            if lines[i].starts_with("1 ") {
                if i + 1 >= lines.len() {
                    return Err(Error::Tle("dangling line 1 at end of document".to_owned()));
                }
                result.push(Tle::parse("", lines[i], lines[i + 1])?);
                i += 2;
            } else {
                if i + 2 >= lines.len() {
                    return Err(Error::Tle(format!(
                        "incomplete TLE group starting at '{}'",
                        lines[i]
                    )));
                }
                result.push(Tle::parse(lines[i], lines[i + 1], lines[i + 2])?);
                i += 3;
            }
        }
        Ok(result)
    }

    /// Converts the TLE into [`OrbitalElements`] with the given epoch offset
    /// (minutes relative to the simulation epoch).
    pub fn to_elements(&self, epoch_offset_min: f64) -> OrbitalElements {
        OrbitalElements {
            name: self.name.clone(),
            inclination_deg: self.inclination_deg,
            raan_deg: self.raan_deg,
            eccentricity: self.eccentricity,
            argument_of_perigee_deg: self.argument_of_perigee_deg,
            mean_anomaly_deg: self.mean_anomaly_deg,
            mean_motion_rev_per_day: self.mean_motion_rev_per_day,
            mean_motion_dot: self.mean_motion_dot,
            bstar: self.bstar,
            epoch_offset_min,
        }
    }
}

/// Computes the modulo-10 checksum of a TLE line (excluding the final
/// checksum character): digits count as their value, minus signs count as 1,
/// everything else counts as 0.
pub fn line_checksum(line: &str) -> u32 {
    line.chars()
        .take(68)
        .map(|c| match c {
            '0'..='9' => c as u32 - '0' as u32,
            '-' => 1,
            _ => 0,
        })
        .sum::<u32>()
        % 10
}

fn validate_line(line: &str, expected_number: char) -> Result<String> {
    let line = line.trim_end();
    if line.len() < 69 {
        return Err(Error::Tle(format!(
            "line {expected_number} is {} characters long, expected 69",
            line.len()
        )));
    }
    if !line.starts_with(expected_number) {
        return Err(Error::Tle(format!(
            "expected line number {expected_number}, found '{}'",
            &line[..1]
        )));
    }
    let declared: u32 = line[68..69]
        .parse()
        .map_err(|_| Error::Tle(format!("line {expected_number} has non-numeric checksum")))?;
    let computed = line_checksum(line);
    if declared != computed {
        return Err(Error::Tle(format!(
            "line {expected_number} checksum mismatch: declared {declared}, computed {computed}"
        )));
    }
    Ok(line.to_owned())
}

fn field(line: &str, start: usize, end: usize) -> &str {
    &line[start..end.min(line.len())]
}

fn parse_field<T: std::str::FromStr>(
    line: &str,
    start: usize,
    end: usize,
    what: &str,
) -> Result<T> {
    field(line, start, end)
        .trim()
        .parse::<T>()
        .map_err(|_| Error::Tle(format!("invalid {what} field '{}'", field(line, start, end))))
}

/// Parses a field such as ` .00002182` or `-.00001234` (decimal with implied
/// leading zero).
fn parse_signed_decimal(line: &str, start: usize, end: usize, what: &str) -> Result<f64> {
    let raw = field(line, start, end).trim();
    if raw.is_empty() {
        return Ok(0.0);
    }
    let normalized = if let Some(rest) = raw.strip_prefix('-') {
        format!("-0{rest}")
    } else if let Some(rest) = raw.strip_prefix('+') {
        format!("0{rest}")
    } else if raw.starts_with('.') {
        format!("0{raw}")
    } else {
        raw.to_owned()
    };
    normalized
        .parse::<f64>()
        .map_err(|_| Error::Tle(format!("invalid {what} field '{raw}'")))
}

/// Parses a TLE "implied decimal point with exponent" field such as
/// ` 29599-4` meaning `0.29599e-4` or `-11606-4` meaning `-0.11606e-4`.
fn parse_implied_decimal(line: &str, start: usize, end: usize, what: &str) -> Result<f64> {
    let raw = field(line, start, end).trim();
    if raw.is_empty() || raw == "00000-0" || raw == "00000+0" {
        return Ok(0.0);
    }
    let (sign, rest) = match raw.strip_prefix('-') {
        Some(rest) => (-1.0, rest),
        None => (1.0, raw.strip_prefix('+').unwrap_or(raw)),
    };
    // The exponent sign is the last '+' or '-' in the remaining string.
    let exp_pos = rest
        .rfind(['+', '-'])
        .ok_or_else(|| Error::Tle(format!("invalid {what} field '{raw}'")))?;
    let mantissa_digits = &rest[..exp_pos];
    let exponent: i32 = rest[exp_pos..]
        .parse()
        .map_err(|_| Error::Tle(format!("invalid {what} exponent '{raw}'")))?;
    let mantissa: f64 = format!("0.{mantissa_digits}")
        .parse()
        .map_err(|_| Error::Tle(format!("invalid {what} mantissa '{raw}'")))?;
    Ok(sign * mantissa * 10f64.powi(exponent))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The canonical ISS TLE used by the SGP4 reference papers.
    const ISS_NAME: &str = "ISS (ZARYA)";
    const ISS_L1: &str =
        "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
    const ISS_L2: &str =
        "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

    #[test]
    fn parses_iss_tle() {
        let tle = Tle::parse(ISS_NAME, ISS_L1, ISS_L2).expect("valid TLE");
        assert_eq!(tle.catalog_number, 25544);
        assert_eq!(tle.epoch_year, 2008);
        assert!((tle.epoch_day - 264.51782528).abs() < 1e-9);
        assert!((tle.inclination_deg - 51.6416).abs() < 1e-9);
        assert!((tle.raan_deg - 247.4627).abs() < 1e-9);
        assert!((tle.eccentricity - 0.0006703).abs() < 1e-10);
        assert!((tle.mean_motion_rev_per_day - 15.72125391).abs() < 1e-7);
        assert!((tle.mean_motion_dot - (-0.00002182)).abs() < 1e-10);
        assert!((tle.bstar - (-0.11606e-4)).abs() < 1e-10);
        assert_eq!(tle.name, "ISS (ZARYA)");
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut corrupted = ISS_L1.to_owned();
        corrupted.replace_range(20..21, "9");
        let err = Tle::parse(ISS_NAME, &corrupted, ISS_L2).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn rejects_wrong_line_number() {
        let err = Tle::parse(ISS_NAME, ISS_L2, ISS_L1).unwrap_err();
        assert!(err.to_string().contains("expected line number"));
    }

    #[test]
    fn rejects_short_line() {
        let err = Tle::parse(ISS_NAME, "1 25544U", ISS_L2).unwrap_err();
        assert!(err.to_string().contains("characters long"));
    }

    #[test]
    fn parses_document_with_and_without_names() {
        let doc = format!("{ISS_NAME}\n{ISS_L1}\n{ISS_L2}\n{ISS_L1}\n{ISS_L2}\n");
        let tles = Tle::parse_document(&doc).expect("valid document");
        assert_eq!(tles.len(), 2);
        assert_eq!(tles[0].name, "ISS (ZARYA)");
        assert_eq!(tles[1].name, "NORAD 25544");
    }

    #[test]
    fn incomplete_document_is_rejected() {
        let doc = format!("{ISS_NAME}\n{ISS_L1}\n");
        assert!(Tle::parse_document(&doc).is_err());
    }

    #[test]
    fn to_elements_preserves_fields() {
        let tle = Tle::parse(ISS_NAME, ISS_L1, ISS_L2).expect("valid TLE");
        let elements = tle.to_elements(5.0);
        assert_eq!(elements.name, "ISS (ZARYA)");
        assert_eq!(elements.epoch_offset_min, 5.0);
        assert!((elements.inclination_deg - 51.6416).abs() < 1e-9);
        assert!(elements.validate().is_ok());
        // The ISS orbits at roughly 340-420 km.
        assert!((300.0..450.0).contains(&elements.mean_altitude_km()));
    }

    #[test]
    fn implied_decimal_parsing() {
        assert!((parse_implied_decimal(" 29599-4", 0, 8, "t").unwrap() - 0.29599e-4).abs() < 1e-12);
        assert!(
            (parse_implied_decimal("-11606-4", 0, 8, "t").unwrap() - (-0.11606e-4)).abs() < 1e-12
        );
        assert_eq!(parse_implied_decimal(" 00000-0", 0, 8, "t").unwrap(), 0.0);
        assert!((parse_implied_decimal(" 12345+1", 0, 8, "t").unwrap() - 1.2345).abs() < 1e-12);
    }

    #[test]
    fn checksum_of_reference_lines() {
        assert_eq!(line_checksum(ISS_L1), 7);
        assert_eq!(line_checksum(ISS_L2), 7);
    }
}
