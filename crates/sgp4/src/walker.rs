//! Walker-delta constellation shell generation.
//!
//! Celestial generates satellite shells from simple parameters — altitude,
//! inclination, number of planes and satellites per plane — exactly as
//! provided in its configuration file, instead of requiring TLEs for
//! not-yet-launched constellations. Shells follow the Walker-delta pattern:
//! orbital planes evenly spaced around the equator, satellites evenly spaced
//! within each plane, and an optional phase offset between adjacent planes.
//!
//! Iridium-style "star" constellations spread their ascending nodes over a
//! 180° arc instead of 360°, so that ascending and descending passes cover
//! the two halves of the globe; the paper's §5 case study relies on this (it
//! is the reason there are no ISLs between the first and last Iridium plane).

use crate::elements::OrbitalElements;
use serde::{Deserialize, Serialize};

/// Parameters of one constellation shell, generated Walker-style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkerShell {
    /// Shell altitude above the mean Earth radius in kilometres.
    pub altitude_km: f64,
    /// Orbital inclination in degrees.
    pub inclination_deg: f64,
    /// Number of orbital planes in the shell.
    pub planes: u32,
    /// Number of satellites per plane.
    pub satellites_per_plane: u32,
    /// Arc over which the ascending nodes of the planes are spread, in
    /// degrees. 360 for Walker-delta constellations such as Starlink, 180 for
    /// Walker-star / polar constellations such as Iridium.
    pub arc_of_ascending_nodes_deg: f64,
    /// Relative phasing between satellites in adjacent planes, as a Walker
    /// phasing factor `F` in `[0, planes)`. Satellite `k` of plane `p` gets an
    /// extra mean anomaly of `360° · F · p / (planes · satellites_per_plane)`.
    pub phase_offset: u32,
    /// Orbit eccentricity; zero (circular) for all constellations the paper
    /// considers.
    pub eccentricity: f64,
}

impl WalkerShell {
    /// Creates a Walker-delta shell (ascending nodes spread over 360°) with
    /// no inter-plane phasing and circular orbits.
    pub fn new(altitude_km: f64, inclination_deg: f64, planes: u32, satellites_per_plane: u32) -> Self {
        WalkerShell {
            altitude_km,
            inclination_deg,
            planes,
            satellites_per_plane,
            arc_of_ascending_nodes_deg: 360.0,
            phase_offset: 0,
            eccentricity: 0.0,
        }
    }

    /// Sets the arc of ascending nodes, returning the modified shell.
    pub fn with_arc_of_ascending_nodes(mut self, arc_deg: f64) -> Self {
        self.arc_of_ascending_nodes_deg = arc_deg;
        self
    }

    /// Sets the Walker phasing factor, returning the modified shell.
    pub fn with_phase_offset(mut self, phase_offset: u32) -> Self {
        self.phase_offset = phase_offset;
        self
    }

    /// Total number of satellites in the shell.
    pub fn total_satellites(&self) -> u32 {
        self.planes * self.satellites_per_plane
    }

    /// The plane index of the satellite with the given shell-wide index
    /// (plane-major numbering).
    pub fn plane_of(&self, satellite_index: u32) -> u32 {
        satellite_index / self.satellites_per_plane
    }

    /// The in-plane position index of the satellite with the given shell-wide
    /// index.
    pub fn index_in_plane(&self, satellite_index: u32) -> u32 {
        satellite_index % self.satellites_per_plane
    }

    /// The shell-wide index of the satellite at `(plane, index_in_plane)`,
    /// wrapping both coordinates (so `plane = planes` refers to plane 0).
    pub fn satellite_index(&self, plane: u32, index_in_plane: u32) -> u32 {
        let p = plane % self.planes;
        let i = index_in_plane % self.satellites_per_plane;
        p * self.satellites_per_plane + i
    }

    /// Generates the orbital elements of every satellite in the shell, in
    /// plane-major order (all satellites of plane 0 first).
    pub fn satellite_elements(&self) -> Vec<OrbitalElements> {
        let mut elements = Vec::with_capacity(self.total_satellites() as usize);
        for plane in 0..self.planes {
            let raan =
                self.arc_of_ascending_nodes_deg * plane as f64 / self.planes as f64;
            for slot in 0..self.satellites_per_plane {
                let base_anomaly = 360.0 * slot as f64 / self.satellites_per_plane as f64;
                let phase = 360.0 * self.phase_offset as f64 * plane as f64
                    / (self.planes as f64 * self.satellites_per_plane as f64);
                let mean_anomaly = (base_anomaly + phase).rem_euclid(360.0);
                let mut e = OrbitalElements::circular(
                    format!("shell-sat {plane}-{slot}"),
                    self.altitude_km,
                    self.inclination_deg,
                    raan,
                    mean_anomaly,
                );
                e.eccentricity = self.eccentricity;
                elements.push(e);
            }
        }
        elements
    }

    /// The Starlink phase-I constellation as described in the paper's Fig. 1:
    /// five shells with 1584, 1600, 400, 375 and 450 satellites.
    pub fn starlink_phase1() -> Vec<WalkerShell> {
        vec![
            WalkerShell::new(550.0, 53.0, 72, 22).with_phase_offset(17),
            WalkerShell::new(1110.0, 53.8, 32, 50).with_phase_offset(17),
            WalkerShell::new(1130.0, 74.0, 8, 50).with_phase_offset(5),
            WalkerShell::new(1275.0, 81.0, 5, 75).with_phase_offset(3),
            WalkerShell::new(1325.0, 70.0, 6, 75).with_phase_offset(4),
        ]
    }

    /// The first (densest, lowest) Starlink shell only: 72 planes of 22
    /// satellites at 550 km and 53° inclination.
    pub fn starlink_shell1() -> WalkerShell {
        WalkerShell::new(550.0, 53.0, 72, 22).with_phase_offset(17)
    }

    /// The Iridium constellation used in the paper's §5 case study: a single
    /// shell of 66 satellites in 6 planes at 780 km, polar orbit (90°
    /// inclination), ascending nodes spread over a 180° arc.
    pub fn iridium() -> WalkerShell {
        WalkerShell::new(780.0, 90.0, 6, 11)
            .with_arc_of_ascending_nodes(180.0)
            .with_phase_offset(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagator::Propagator;
    use proptest::prelude::*;

    #[test]
    fn starlink_phase1_satellite_counts_match_figure_1() {
        let shells = WalkerShell::starlink_phase1();
        let counts: Vec<u32> = shells.iter().map(WalkerShell::total_satellites).collect();
        assert_eq!(counts, vec![1584, 1600, 400, 375, 450]);
        let total: u32 = counts.iter().sum();
        assert_eq!(total, 4409);
    }

    #[test]
    fn iridium_has_66_satellites_in_6_planes() {
        let iridium = WalkerShell::iridium();
        assert_eq!(iridium.total_satellites(), 66);
        assert_eq!(iridium.planes, 6);
        assert_eq!(iridium.arc_of_ascending_nodes_deg, 180.0);
        // Adjacent Iridium planes are 30° apart in RAAN (180 / 6).
        let elements = iridium.satellite_elements();
        let raan_plane0 = elements[0].raan_deg;
        let raan_plane1 = elements[11].raan_deg;
        assert!((raan_plane1 - raan_plane0 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn elements_are_generated_in_plane_major_order() {
        let shell = WalkerShell::new(550.0, 53.0, 3, 4);
        let elements = shell.satellite_elements();
        assert_eq!(elements.len(), 12);
        // First four share the RAAN of plane 0.
        for e in &elements[0..4] {
            assert_eq!(e.raan_deg, 0.0);
        }
        // Next four are plane 1 at 120°.
        for e in &elements[4..8] {
            assert!((e.raan_deg - 120.0).abs() < 1e-9);
        }
        // Within a plane, mean anomalies are evenly spaced by 90°.
        assert!((elements[1].mean_anomaly_deg - elements[0].mean_anomaly_deg - 90.0).abs() < 1e-9);
    }

    #[test]
    fn index_mapping_round_trips_and_wraps() {
        let shell = WalkerShell::new(550.0, 53.0, 5, 7);
        for idx in 0..shell.total_satellites() {
            let plane = shell.plane_of(idx);
            let in_plane = shell.index_in_plane(idx);
            assert_eq!(shell.satellite_index(plane, in_plane), idx);
        }
        // Wrapping beyond the last plane/slot returns to the beginning.
        assert_eq!(shell.satellite_index(5, 0), 0);
        assert_eq!(shell.satellite_index(0, 7), 0);
    }

    #[test]
    fn all_generated_elements_are_valid_and_propagatable() {
        let shell = WalkerShell::starlink_shell1();
        let elements = shell.satellite_elements();
        assert_eq!(elements.len(), 1584);
        // Spot-check a handful of satellites across the shell.
        for e in elements.iter().step_by(199) {
            e.validate().expect("valid elements");
            let state = Propagator::new(e.clone()).propagate_minutes(30.0).expect("propagates");
            let alt = state.position_eci.norm()
                - celestial_types::constants::EARTH_RADIUS_KM;
            assert!((alt - 550.0).abs() < 5.0);
        }
    }

    #[test]
    fn phase_offset_shifts_adjacent_planes() {
        let without = WalkerShell::new(550.0, 53.0, 4, 4);
        let with = WalkerShell::new(550.0, 53.0, 4, 4).with_phase_offset(1);
        let e0 = without.satellite_elements();
        let e1 = with.satellite_elements();
        // Plane 0 is identical; plane 1 is shifted by 360 * 1 * 1 / 16 = 22.5°.
        assert_eq!(e0[0].mean_anomaly_deg, e1[0].mean_anomaly_deg);
        assert!((e1[4].mean_anomaly_deg - e0[4].mean_anomaly_deg - 22.5).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn walker_shells_have_unique_positions(
            planes in 1u32..10,
            per_plane in 1u32..10,
            alt in 400.0f64..1500.0,
            incl in 30.0f64..98.0,
        ) {
            let shell = WalkerShell::new(alt, incl, planes, per_plane);
            let elements = shell.satellite_elements();
            prop_assert_eq!(elements.len() as u32, shell.total_satellites());
            // No two satellites share both RAAN and mean anomaly.
            for (i, a) in elements.iter().enumerate() {
                for b in elements.iter().skip(i + 1) {
                    let same_raan = (a.raan_deg - b.raan_deg).abs() < 1e-9;
                    let same_anomaly = (a.mean_anomaly_deg - b.mean_anomaly_deg).abs() < 1e-9;
                    prop_assert!(!(same_raan && same_anomaly));
                }
            }
        }
    }
}
