//! Coordinate frames.
//!
//! Orbit propagation produces positions in an Earth-centred inertial frame
//! (TEME for SGP4); ground stations and link geometry live in the rotating
//! Earth-centred, Earth-fixed (ECEF) frame. The two frames are related by a
//! rotation around the Earth's axis by the Greenwich mean sidereal time
//! (GMST).
//!
//! The testbed defines its own simulation epoch: at simulation time zero the
//! inertial and Earth-fixed frames coincide (GMST = 0). Elements loaded from
//! TLEs can carry an epoch offset so that real constellations remain mutually
//! consistent.

use celestial_types::constants::EARTH_ROTATION_RAD_S;
use celestial_types::geo::{Cartesian, Geodetic};

/// Greenwich mean sidereal time (radians) at `minutes_since_epoch` minutes of
/// simulated time, with GMST defined to be zero at the simulation epoch.
pub fn gmst_rad(minutes_since_epoch: f64) -> f64 {
    let seconds = minutes_since_epoch * 60.0;
    let angle = EARTH_ROTATION_RAD_S * seconds;
    angle.rem_euclid(2.0 * std::f64::consts::PI)
}

/// Rotates an inertial (TEME/ECI) position into the Earth-fixed (ECEF) frame
/// at the given simulated time.
pub fn eci_to_ecef(position_eci: Cartesian, minutes_since_epoch: f64) -> Cartesian {
    let theta = gmst_rad(minutes_since_epoch);
    let (sin_t, cos_t) = theta.sin_cos();
    Cartesian {
        x: cos_t * position_eci.x + sin_t * position_eci.y,
        y: -sin_t * position_eci.x + cos_t * position_eci.y,
        z: position_eci.z,
    }
}

/// Rotates an Earth-fixed (ECEF) position into the inertial (TEME/ECI) frame
/// at the given simulated time.
pub fn ecef_to_eci(position_ecef: Cartesian, minutes_since_epoch: f64) -> Cartesian {
    let theta = gmst_rad(minutes_since_epoch);
    let (sin_t, cos_t) = theta.sin_cos();
    Cartesian {
        x: cos_t * position_ecef.x - sin_t * position_ecef.y,
        y: sin_t * position_ecef.x + cos_t * position_ecef.y,
        z: position_ecef.z,
    }
}

/// Converts an Earth-fixed position to geodetic coordinates (spherical Earth).
pub fn ecef_to_geodetic(position_ecef: Cartesian) -> Geodetic {
    position_ecef.to_geodetic()
}

/// Converts a geodetic position to the Earth-fixed frame (spherical Earth).
pub fn geodetic_to_ecef(position: Geodetic) -> Cartesian {
    position.to_cartesian()
}

/// The sub-satellite point: the geodetic position directly beneath an
/// inertial-frame satellite position at the given simulated time.
pub fn subsatellite_point(position_eci: Cartesian, minutes_since_epoch: f64) -> Geodetic {
    let ecef = eci_to_ecef(position_eci, minutes_since_epoch);
    let geo = ecef.to_geodetic();
    Geodetic::new(geo.latitude_deg(), geo.longitude_deg(), 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial_types::constants::EARTH_RADIUS_KM;
    use proptest::prelude::*;

    #[test]
    fn frames_coincide_at_epoch() {
        let p = Cartesian::new(7000.0, 100.0, -40.0);
        assert_eq!(eci_to_ecef(p, 0.0), p);
        assert_eq!(ecef_to_eci(p, 0.0), p);
    }

    #[test]
    fn earth_rotates_eastwards() {
        // A point fixed in inertial space appears to move westwards (towards
        // smaller longitude) in the Earth-fixed frame as time advances.
        let p = Geodetic::new(0.0, 0.0, 550.0).to_cartesian();
        let after = eci_to_ecef(p, 10.0).to_geodetic();
        assert!(after.longitude_deg() < 0.0);
        assert!(after.longitude_deg() > -5.0);
    }

    #[test]
    fn sidereal_day_is_about_23_hours_56_minutes() {
        // GMST should wrap back to ~0 after one sidereal day (~1436.07 min).
        let sidereal_day_min = 2.0 * std::f64::consts::PI / EARTH_ROTATION_RAD_S / 60.0;
        assert!((sidereal_day_min - 1436.0).abs() < 0.5);
        let gmst = gmst_rad(sidereal_day_min);
        assert!(gmst < 1e-6 || gmst > 2.0 * std::f64::consts::PI - 1e-6);
    }

    #[test]
    fn subsatellite_point_has_zero_altitude() {
        let p = Geodetic::new(30.0, 60.0, 550.0).to_cartesian();
        let ssp = subsatellite_point(p, 0.0);
        assert_eq!(ssp.altitude_km(), 0.0);
        assert!((ssp.latitude_deg() - 30.0).abs() < 1e-6);
        assert!((ssp.longitude_deg() - 60.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn eci_ecef_round_trip(
            lat in -89.0f64..89.0,
            lon in -179.0f64..179.0,
            alt in 200.0f64..2000.0,
            minutes in 0.0f64..10000.0,
        ) {
            let p = Geodetic::new(lat, lon, alt).to_cartesian();
            let back = ecef_to_eci(eci_to_ecef(p, minutes), minutes);
            prop_assert!(back.distance_to(&p) < 1e-6);
        }

        #[test]
        fn rotation_preserves_norm(minutes in 0.0f64..10000.0) {
            let p = Cartesian::new(EARTH_RADIUS_KM + 550.0, 123.0, -456.0);
            let rotated = eci_to_ecef(p, minutes);
            prop_assert!((rotated.norm() - p.norm()).abs() < 1e-6);
        }
    }
}
