//! Classical orbital elements.
//!
//! The propagator and the Walker-shell generator both describe a satellite by
//! its classical (Keplerian) elements at an epoch. Mean motion is stored in
//! revolutions per day, the unit used by two-line element sets.

use celestial_types::constants::{DEG_TO_RAD, EARTH_MU_KM3_S2, EARTH_RADIUS_KM, SECONDS_PER_DAY};
use serde::{Deserialize, Serialize};

/// Classical orbital elements of a satellite at a reference epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrbitalElements {
    /// Satellite name or catalogue designation.
    pub name: String,
    /// Orbit inclination in degrees.
    pub inclination_deg: f64,
    /// Right ascension of the ascending node in degrees.
    pub raan_deg: f64,
    /// Orbit eccentricity (dimensionless, `[0, 1)`).
    pub eccentricity: f64,
    /// Argument of perigee in degrees.
    pub argument_of_perigee_deg: f64,
    /// Mean anomaly at epoch in degrees.
    pub mean_anomaly_deg: f64,
    /// Mean motion in revolutions per day.
    pub mean_motion_rev_per_day: f64,
    /// First derivative of mean motion divided by two (rev/day²), the drag
    /// term carried by TLEs. Zero for generated shells.
    pub mean_motion_dot: f64,
    /// B* drag coefficient in inverse Earth radii (as carried by TLEs).
    pub bstar: f64,
    /// Epoch of the elements, expressed in minutes relative to the testbed's
    /// simulation epoch. Generated shells use zero; TLE-derived elements keep
    /// their offset so that satellites loaded from different TLE epochs stay
    /// consistent.
    pub epoch_offset_min: f64,
}

impl OrbitalElements {
    /// Creates circular-orbit elements for a generated constellation shell.
    ///
    /// `altitude_km` is the shell altitude above the mean Earth radius;
    /// `raan_deg`/`mean_anomaly_deg` position the satellite within its plane.
    pub fn circular(
        name: impl Into<String>,
        altitude_km: f64,
        inclination_deg: f64,
        raan_deg: f64,
        mean_anomaly_deg: f64,
    ) -> Self {
        OrbitalElements {
            name: name.into(),
            inclination_deg,
            raan_deg,
            eccentricity: 0.0,
            argument_of_perigee_deg: 0.0,
            mean_anomaly_deg,
            mean_motion_rev_per_day: mean_motion_from_altitude(altitude_km),
            mean_motion_dot: 0.0,
            bstar: 0.0,
            epoch_offset_min: 0.0,
        }
    }

    /// Semi-major axis of the orbit in kilometres, derived from the mean
    /// motion via Kepler's third law.
    pub fn semi_major_axis_km(&self) -> f64 {
        semi_major_axis_from_mean_motion(self.mean_motion_rev_per_day)
    }

    /// Mean altitude of the orbit above the mean Earth radius in kilometres.
    pub fn mean_altitude_km(&self) -> f64 {
        self.semi_major_axis_km() - EARTH_RADIUS_KM
    }

    /// Orbital period in minutes.
    pub fn period_minutes(&self) -> f64 {
        24.0 * 60.0 / self.mean_motion_rev_per_day
    }

    /// Mean motion in radians per minute.
    pub fn mean_motion_rad_per_min(&self) -> f64 {
        self.mean_motion_rev_per_day * 2.0 * std::f64::consts::PI / (24.0 * 60.0)
    }

    /// Inclination in radians.
    pub fn inclination_rad(&self) -> f64 {
        self.inclination_deg * DEG_TO_RAD
    }

    /// Validates that the elements describe a propagatable LEO orbit.
    ///
    /// # Errors
    ///
    /// Returns an error message when the eccentricity is outside `[0, 1)`,
    /// the mean motion is non-positive, or the perigee lies below the Earth's
    /// surface.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.eccentricity) {
            return Err(format!("eccentricity {} outside [0, 1)", self.eccentricity));
        }
        if self.mean_motion_rev_per_day <= 0.0 {
            return Err(format!(
                "mean motion {} rev/day is not positive",
                self.mean_motion_rev_per_day
            ));
        }
        let perigee = self.semi_major_axis_km() * (1.0 - self.eccentricity) - EARTH_RADIUS_KM;
        if perigee < 0.0 {
            return Err(format!("perigee altitude {perigee:.1} km is below the surface"));
        }
        Ok(())
    }
}

/// Computes the mean motion (revolutions per day) of a circular orbit at the
/// given altitude above the mean Earth radius.
pub fn mean_motion_from_altitude(altitude_km: f64) -> f64 {
    let a = EARTH_RADIUS_KM + altitude_km;
    let n_rad_s = (EARTH_MU_KM3_S2 / (a * a * a)).sqrt();
    n_rad_s * SECONDS_PER_DAY / (2.0 * std::f64::consts::PI)
}

/// Computes the semi-major axis (kilometres) corresponding to a mean motion
/// in revolutions per day.
pub fn semi_major_axis_from_mean_motion(mean_motion_rev_per_day: f64) -> f64 {
    let n_rad_s = mean_motion_rev_per_day * 2.0 * std::f64::consts::PI / SECONDS_PER_DAY;
    (EARTH_MU_KM3_S2 / (n_rad_s * n_rad_s)).cbrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn starlink_altitude_gives_plausible_period() {
        // Starlink shell 1 at 550 km: ~95.6-minute period, ~15.05 rev/day.
        let n = mean_motion_from_altitude(550.0);
        assert!((15.0..15.2).contains(&n), "mean motion {n}");
        let e = OrbitalElements::circular("s", 550.0, 53.0, 0.0, 0.0);
        assert!((e.period_minutes() - 95.6).abs() < 1.0);
    }

    #[test]
    fn iridium_altitude_gives_plausible_period() {
        // Iridium at 780 km: ~100.4-minute period.
        let e = OrbitalElements::circular("i", 780.0, 90.0, 0.0, 0.0);
        assert!((e.period_minutes() - 100.4).abs() < 1.0);
    }

    #[test]
    fn iss_mean_motion_round_trip() {
        // The ISS completes ~15.5 revolutions per day at ~420 km.
        let a = semi_major_axis_from_mean_motion(15.5);
        assert!((a - EARTH_RADIUS_KM - 410.0).abs() < 30.0, "a = {a}");
    }

    #[test]
    fn validate_rejects_bad_elements() {
        let mut e = OrbitalElements::circular("s", 550.0, 53.0, 0.0, 0.0);
        assert!(e.validate().is_ok());
        e.eccentricity = 1.5;
        assert!(e.validate().is_err());
        e.eccentricity = 0.0;
        e.mean_motion_rev_per_day = 0.0;
        assert!(e.validate().is_err());
        // An extremely eccentric LEO orbit dips below the surface.
        let mut low = OrbitalElements::circular("s", 300.0, 53.0, 0.0, 0.0);
        low.eccentricity = 0.2;
        assert!(low.validate().is_err());
    }

    proptest! {
        #[test]
        fn altitude_mean_motion_round_trip(alt in 200.0f64..2000.0) {
            let n = mean_motion_from_altitude(alt);
            let a = semi_major_axis_from_mean_motion(n);
            prop_assert!((a - EARTH_RADIUS_KM - alt).abs() < 1e-6);
        }

        #[test]
        fn higher_orbits_are_slower(alt1 in 200.0f64..1000.0, delta in 1.0f64..1000.0) {
            let n1 = mean_motion_from_altitude(alt1);
            let n2 = mean_motion_from_altitude(alt1 + delta);
            prop_assert!(n2 < n1);
        }
    }
}
