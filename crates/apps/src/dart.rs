//! The §5 case study: real-time ocean environment alerts with remote sensors.
//!
//! 100 DART-style data buoys in the Pacific send sensor readings over the
//! Iridium constellation once per second. The readings are fed to a
//! stacked-LSTM inference service and the predictions are forwarded to the
//! 200 ships and islands nearest to the originating sensor. Two deployments
//! are compared: central processing at the Pacific Tsunami Warning Center on
//! Ford Island, Hawaii, and processing directly on the buoy's current uplink
//! satellite (Fig. 11).

use crate::lstm::StackedLstm;
use crate::workload::{assign_sink_groups, dart_ground_stations, MessageHeader};
use celestial::testbed::{AppContext, GuestApplication};
use celestial_constellation::{GroundStation, Shell};
use celestial_netem::packet::Packet;
use celestial_sgp4::WalkerShell;
use celestial_sim::metrics::LatencyRecorder;
use celestial_sim::SimRng;
use celestial_types::geo::Geodetic;
use celestial_types::ids::NodeId;
use celestial_types::time::SimDuration;
use celestial_types::Bandwidth;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where the inference service runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DartDeployment {
    /// Central processing at the Pacific Tsunami Warning Center (Ford
    /// Island, Hawaii).
    Central,
    /// Processing on each buoy's current uplink satellite.
    Satellite,
}

/// Configuration of the DART experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DartConfig {
    /// Where inference runs.
    pub deployment: DartDeployment,
    /// Number of sensor buoys.
    pub buoy_count: u32,
    /// Number of data sinks (ships and islands).
    pub sink_count: u32,
    /// Number of sinks in each buoy's vicinity group.
    pub group_size: usize,
    /// Interval between sensor readings (1 s in the paper).
    pub send_interval: SimDuration,
    /// Wire size of one sensor reading in bytes.
    pub reading_size_bytes: u64,
    /// Wire size of one inference result in bytes.
    pub result_size_bytes: u64,
    /// Length of the feature sequence fed to the LSTM per inference.
    pub sequence_length: usize,
    /// Name of the central processing ground station.
    pub central_name: String,
    /// Seed for the scenario's ground-station placement and LSTM weights.
    pub scenario_seed: u64,
}

impl DartConfig {
    /// The configuration used in the paper's §5 case study.
    pub fn new(deployment: DartDeployment) -> Self {
        DartConfig {
            deployment,
            buoy_count: 100,
            sink_count: 200,
            group_size: 3,
            send_interval: SimDuration::from_secs(1),
            reading_size_bytes: 128,
            result_size_bytes: 64,
            sequence_length: 16,
            central_name: "ford-island-ptwc".to_owned(),
            scenario_seed: 2022,
        }
    }

    /// A reduced configuration for quick tests: fewer buoys and sinks.
    pub fn reduced(deployment: DartDeployment, buoys: u32, sinks: u32) -> Self {
        DartConfig {
            buoy_count: buoys,
            sink_count: sinks,
            ..DartConfig::new(deployment)
        }
    }

    /// The Iridium shell of the §5 scenario: 66 satellites, 6 planes, 780 km,
    /// polar orbit, 180° arc of ascending nodes, 100 Mb/s ISLs, 88 Kb/s
    /// ground links for remote sensing.
    pub fn iridium_shell() -> Shell {
        Shell::from_walker(WalkerShell::iridium())
            .with_isl_bandwidth(Bandwidth::from_mbps(100))
            .with_ground_link_bandwidth(Bandwidth::from_kbps(88))
            .with_min_elevation_deg(10.0)
            .with_resources(celestial_types::MachineResources::paper_sensor())
    }

    /// The ground stations of the scenario: buoys, sinks and the warning
    /// center, generated deterministically from the scenario seed.
    pub fn ground_stations(&self) -> Vec<GroundStation> {
        let mut rng = SimRng::seed_from_u64(self.scenario_seed);
        dart_ground_stations(self.buoy_count, self.sink_count, &mut rng)
    }
}

const KIND_READING: u8 = 1;
const KIND_RESULT: u8 = 2;
const TAG_SENSE: u64 = 1;

/// Per-sink result of the experiment: where the sink is and the latency of
/// the alerts it received.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SinkResult {
    /// Name of the sink ground station.
    pub name: String,
    /// Position of the sink.
    pub position: Geodetic,
    /// Mean end-to-end latency of received alerts in milliseconds.
    pub mean_latency_ms: f64,
    /// Number of alerts received.
    pub alerts: usize,
}

/// The DART experiment application.
#[derive(Debug)]
pub struct DartExperiment {
    config: DartConfig,
    lstm: StackedLstm,
    buoys: Vec<NodeId>,
    sinks: Vec<NodeId>,
    sink_positions: Vec<Geodetic>,
    central: Option<NodeId>,
    /// Sinks in each buoy's vicinity (indices into `sinks`).
    groups: Vec<Vec<usize>>,
    sequence: u64,
    /// End-to-end latency per sink index.
    sink_latencies: BTreeMap<usize, LatencyRecorder>,
    /// Number of readings processed by the inference service.
    inferences: u64,
    /// Sum of inference outputs, to keep the LSTM computation observable.
    inference_checksum: f64,
}

impl DartExperiment {
    /// Creates the experiment for the given configuration.
    pub fn new(config: DartConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(config.scenario_seed ^ 0x5eed);
        let lstm = StackedLstm::dart_default(&mut rng);
        DartExperiment {
            config,
            lstm,
            buoys: Vec::new(),
            sinks: Vec::new(),
            sink_positions: Vec::new(),
            central: None,
            groups: Vec::new(),
            sequence: 0,
            sink_latencies: BTreeMap::new(),
            inferences: 0,
            inference_checksum: 0.0,
        }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &DartConfig {
        &self.config
    }

    /// Number of inferences the service performed.
    pub fn inference_count(&self) -> u64 {
        self.inferences
    }

    /// Per-sink mean end-to-end latency, the data series of Fig. 11.
    pub fn sink_results(&self) -> Vec<SinkResult> {
        self.sink_latencies
            .iter()
            .filter(|(_, recorder)| !recorder.is_empty())
            .map(|(sink_index, recorder)| SinkResult {
                name: format!("sink-{sink_index}"),
                position: self.sink_positions[*sink_index],
                mean_latency_ms: recorder.summary().mean,
                alerts: recorder.len(),
            })
            .collect()
    }

    /// All alert latencies across all sinks, in milliseconds.
    pub fn all_latencies_ms(&self) -> Vec<f64> {
        self.sink_latencies
            .values()
            .flat_map(|r| r.samples_ms().to_vec())
            .collect()
    }

    fn run_inference(&mut self, header: &MessageHeader) {
        // Synthesize the feature sequence the buoy's reading represents and
        // run the real LSTM forward pass.
        let sequence: Vec<Vec<f64>> = (0..self.config.sequence_length)
            .map(|step| {
                (0..8)
                    .map(|f| {
                        ((header.origin as f64 + 1.0) * (step as f64 + 1.0) * (f as f64 + 1.0))
                            .sin()
                    })
                    .collect()
            })
            .collect();
        let output = self.lstm.predict(&sequence);
        self.inference_checksum += output.iter().sum::<f64>();
        self.inferences += 1;
    }

    fn forward_results(
        &mut self,
        processor: NodeId,
        header: &MessageHeader,
        ctx: &mut AppContext<'_>,
    ) {
        let buoy_index = header.origin as usize;
        let Some(group) = self.groups.get(buoy_index) else { return };
        let result_header = MessageHeader {
            kind: KIND_RESULT,
            ..*header
        };
        for sink_index in group.clone() {
            ctx.send(
                processor,
                self.sinks[sink_index],
                self.config.result_size_bytes,
                result_header.encode(),
            );
        }
    }
}

impl GuestApplication for DartExperiment {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        let stations = ctx.database().ground_stations().to_vec();
        for (i, station) in stations.iter().enumerate() {
            let node = NodeId::ground_station(i as u32);
            if station.name.starts_with("buoy-") {
                self.buoys.push(node);
            } else if station.name.starts_with("sink-") {
                self.sinks.push(node);
                self.sink_positions.push(station.position);
            }
        }
        self.central = ctx.ground_station(&self.config.central_name);
        assert_eq!(self.buoys.len() as u32, self.config.buoy_count);
        assert_eq!(self.sinks.len() as u32, self.config.sink_count);

        let buoy_positions: Vec<Geodetic> = stations
            .iter()
            .filter(|s| s.name.starts_with("buoy-"))
            .map(|s| s.position)
            .collect();
        self.groups = assign_sink_groups(&buoy_positions, &self.sink_positions, self.config.group_size);

        if let Some(central) = self.central {
            ctx.set_cpu_load(central, 0.5);
        }
        ctx.set_timer(self.config.send_interval, TAG_SENSE);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut AppContext<'_>) {
        if tag != TAG_SENSE {
            return;
        }
        // Every buoy transmits its latest reading.
        for (i, buoy) in self.buoys.clone().into_iter().enumerate() {
            let destination = match self.config.deployment {
                DartDeployment::Central => self.central,
                DartDeployment::Satellite => ctx.best_uplink(buoy),
            };
            let Some(destination) = destination else { continue };
            let header = MessageHeader {
                kind: KIND_READING,
                origin: i as u32,
                sent_at_micros: ctx.now().as_micros(),
                sequence: self.sequence,
            };
            self.sequence += 1;
            ctx.send(buoy, destination, self.config.reading_size_bytes, header.encode());
        }
        ctx.set_timer(self.config.send_interval, TAG_SENSE);
    }

    fn on_message(&mut self, message: &Packet, ctx: &mut AppContext<'_>) {
        let Some(header) = MessageHeader::decode(&message.payload) else {
            return;
        };
        match header.kind {
            KIND_READING => {
                // Inference runs wherever the reading arrived: the central
                // server or the uplink satellite.
                self.run_inference(&header);
                self.forward_results(message.destination, &header, ctx);
            }
            KIND_RESULT => {
                let Some(sink_index) = self.sinks.iter().position(|s| *s == message.destination)
                else {
                    return;
                };
                // End-to-end latency from the sensor reading leaving the buoy
                // to the alert arriving at the sink, plus the ~2 ms of
                // processing the paper measures for the inference service.
                let network_ms = ctx
                    .now()
                    .duration_since(celestial_types::time::SimInstant::from_micros(
                        header.sent_at_micros,
                    ))
                    .as_millis_f64();
                let processing_ms = self.lstm.inference_cpu_seconds(self.config.sequence_length, 100e6)
                    * 1e3;
                self.sink_latencies
                    .entry(sink_index)
                    .or_default()
                    .record_millis(network_ms + processing_ms);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial::config::{HostConfig, TestbedConfig};
    use celestial::testbed::Testbed;
    use celestial_constellation::BoundingBox;

    fn run(deployment: DartDeployment, duration_s: f64) -> DartExperiment {
        let config = DartConfig::reduced(deployment, 20, 40);
        let testbed_config = TestbedConfig::builder()
            .seed(5)
            .update_interval_s(5.0)
            .duration_s(duration_s)
            .shell(DartConfig::iridium_shell())
            .ground_stations(config.ground_stations())
            .bounding_box(BoundingBox::whole_earth())
            .hosts(vec![HostConfig::default(); 4])
            .build()
            .unwrap();
        let mut testbed = Testbed::new(&testbed_config).unwrap();
        let mut app = DartExperiment::new(config);
        testbed.run(&mut app).unwrap();
        app
    }

    #[test]
    fn central_deployment_delivers_alerts_with_plausible_latency() {
        let app = run(DartDeployment::Central, 30.0);
        assert!(app.inference_count() > 100, "inferences {}", app.inference_count());
        let results = app.sink_results();
        assert!(!results.is_empty());
        let latencies = app.all_latencies_ms();
        let stats = celestial_sim::metrics::summarize(&latencies);
        // The paper reports 22–183 ms mean end-to-end latency for central
        // processing; individual samples include the 88 Kb/s serialisation.
        assert!(stats.mean > 15.0 && stats.mean < 350.0, "mean {}", stats.mean);
    }

    #[test]
    fn satellite_deployment_reduces_latency_compared_to_central() {
        let central = run(DartDeployment::Central, 30.0);
        let satellite = run(DartDeployment::Satellite, 30.0);
        let central_mean = celestial_sim::metrics::summarize(&central.all_latencies_ms()).mean;
        let satellite_mean = celestial_sim::metrics::summarize(&satellite.all_latencies_ms()).mean;
        assert!(
            satellite_mean < central_mean,
            "satellite {satellite_mean} ms vs central {central_mean} ms"
        );
    }

    #[test]
    fn sink_results_report_positions_and_alert_counts() {
        let app = run(DartDeployment::Central, 20.0);
        for result in app.sink_results() {
            assert!(result.alerts > 0);
            assert!(result.mean_latency_ms > 0.0);
            assert!(result.name.starts_with("sink-"));
            let lon = result.position.longitude_deg();
            assert!(!(-110.0..130.0).contains(&lon), "sink outside the Pacific: {lon}");
        }
    }

    #[test]
    fn config_helpers_describe_the_paper_scenario() {
        let config = DartConfig::new(DartDeployment::Central);
        assert_eq!(config.buoy_count, 100);
        assert_eq!(config.sink_count, 200);
        let shell = DartConfig::iridium_shell();
        assert_eq!(shell.satellite_count(), 66);
        assert!(shell.has_seam());
        assert_eq!(shell.isl_bandwidth, Bandwidth::from_mbps(100));
        assert_eq!(config.ground_stations().len(), 301);
    }
}
