//! A stacked LSTM network implemented from scratch.
//!
//! The §5 case study processes sensor readings "with an LSTM neural network"
//! (a TensorFlow stacked LSTM in the original). This module provides the
//! inference path of such a network — real matrix arithmetic, not a stub — so
//! the DART application performs genuine computation whose cost maps onto the
//! ~2 ms of processing latency the paper reports.

use celestial_sim::SimRng;
use serde::{Deserialize, Serialize};

/// One LSTM layer: input, forget, cell and output gates over an input vector
/// and the previous hidden state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmLayer {
    input_size: usize,
    hidden_size: usize,
    /// Input weights, `4 * hidden x input`, gate-major (i, f, g, o).
    w_input: Vec<f64>,
    /// Recurrent weights, `4 * hidden x hidden`.
    w_recurrent: Vec<f64>,
    /// Biases, `4 * hidden`.
    bias: Vec<f64>,
}

impl LstmLayer {
    /// Creates a layer with small random weights drawn from the given
    /// generator (Xavier-style scaling).
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut SimRng) -> Self {
        let scale = (1.0 / (input_size + hidden_size) as f64).sqrt();
        let mut init = |n: usize| -> Vec<f64> {
            (0..n).map(|_| rng.uniform_range(-scale, scale)).collect()
        };
        LstmLayer {
            input_size,
            hidden_size,
            w_input: init(4 * hidden_size * input_size),
            w_recurrent: init(4 * hidden_size * hidden_size),
            bias: init(4 * hidden_size),
        }
    }

    /// The hidden-state size of this layer.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Runs one time step, updating hidden and cell state in place.
    ///
    /// # Panics
    ///
    /// Panics if the input, hidden or cell slices have the wrong length.
    pub fn step(&self, input: &[f64], hidden: &mut [f64], cell: &mut [f64]) {
        assert_eq!(input.len(), self.input_size, "input size mismatch");
        assert_eq!(hidden.len(), self.hidden_size, "hidden size mismatch");
        assert_eq!(cell.len(), self.hidden_size, "cell size mismatch");
        let h = self.hidden_size;
        // gates = W_x · x + W_h · h + b, laid out as [i, f, g, o].
        let mut gates = self.bias.clone();
        for (row, gate) in gates.iter_mut().enumerate() {
            let mut acc = 0.0;
            let w_in = &self.w_input[row * self.input_size..(row + 1) * self.input_size];
            for (w, x) in w_in.iter().zip(input) {
                acc += w * x;
            }
            let w_rec = &self.w_recurrent[row * h..(row + 1) * h];
            for (w, hprev) in w_rec.iter().zip(hidden.iter()) {
                acc += w * hprev;
            }
            *gate += acc;
        }
        for j in 0..h {
            let i_gate = sigmoid(gates[j]);
            let f_gate = sigmoid(gates[h + j]);
            let g_gate = gates[2 * h + j].tanh();
            let o_gate = sigmoid(gates[3 * h + j]);
            cell[j] = f_gate * cell[j] + i_gate * g_gate;
            hidden[j] = o_gate * cell[j].tanh();
        }
    }

    /// Approximate number of floating-point operations per time step.
    pub fn flops_per_step(&self) -> u64 {
        // Two multiply-adds per weight, plus the elementwise gate math.
        (8 * self.hidden_size * (self.input_size + self.hidden_size) + 30 * self.hidden_size) as u64
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A stacked LSTM with a dense output layer, as used by the DART inference
/// service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackedLstm {
    layers: Vec<LstmLayer>,
    /// Dense output weights, `outputs x hidden`.
    w_out: Vec<f64>,
    outputs: usize,
}

impl StackedLstm {
    /// Creates a stacked LSTM with the given input size, hidden sizes (one
    /// per layer) and output size.
    ///
    /// # Panics
    ///
    /// Panics if `hidden_sizes` is empty.
    pub fn new(input_size: usize, hidden_sizes: &[usize], outputs: usize, rng: &mut SimRng) -> Self {
        assert!(!hidden_sizes.is_empty(), "at least one LSTM layer is required");
        let mut layers = Vec::with_capacity(hidden_sizes.len());
        let mut in_size = input_size;
        for &h in hidden_sizes {
            layers.push(LstmLayer::new(in_size, h, rng));
            in_size = h;
        }
        let last_hidden = *hidden_sizes.last().expect("non-empty");
        let scale = (1.0 / last_hidden as f64).sqrt();
        let w_out = (0..outputs * last_hidden)
            .map(|_| rng.uniform_range(-scale, scale))
            .collect();
        StackedLstm {
            layers,
            w_out,
            outputs,
        }
    }

    /// The default DART inference network: two stacked layers of 32 units
    /// over 8-feature sensor readings, predicting 2 outputs (event
    /// probability and severity).
    pub fn dart_default(rng: &mut SimRng) -> Self {
        StackedLstm::new(8, &[32, 32], 2, rng)
    }

    /// Number of stacked layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Runs inference over a sequence of feature vectors and returns the
    /// dense output computed from the final hidden state.
    ///
    /// # Panics
    ///
    /// Panics if any feature vector does not match the input size.
    pub fn predict(&self, sequence: &[Vec<f64>]) -> Vec<f64> {
        let mut hidden: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.hidden_size()])
            .collect();
        let mut cell = hidden.clone();
        for features in sequence {
            let mut input = features.clone();
            for (i, layer) in self.layers.iter().enumerate() {
                layer.step(&input, &mut hidden[i], &mut cell[i]);
                input = hidden[i].clone();
            }
        }
        let last = hidden.last().expect("at least one layer");
        (0..self.outputs)
            .map(|o| {
                self.w_out[o * last.len()..(o + 1) * last.len()]
                    .iter()
                    .zip(last)
                    .map(|(w, h)| w * h)
                    .sum()
            })
            .collect()
    }

    /// Approximate floating-point operations for one inference over a
    /// sequence of the given length.
    pub fn flops(&self, sequence_length: usize) -> u64 {
        let per_step: u64 = self.layers.iter().map(LstmLayer::flops_per_step).sum();
        per_step * sequence_length as u64
            + (2 * self.outputs * self.layers.last().map(|l| l.hidden_size()).unwrap_or(0)) as u64
    }

    /// The single-core CPU time of one inference in seconds, assuming the
    /// given sustained throughput in floating-point operations per second.
    /// With the default DART network, a 16-step sequence and a modest
    /// 100 MFLOP/s satellite computer this is on the order of the ~2 ms
    /// processing latency the paper reports.
    pub fn inference_cpu_seconds(&self, sequence_length: usize, flops_per_second: f64) -> f64 {
        assert!(flops_per_second > 0.0, "throughput must be positive");
        self.flops(sequence_length) as f64 / flops_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(42)
    }

    fn sequence(len: usize, size: usize, value: f64) -> Vec<Vec<f64>> {
        (0..len).map(|i| vec![value * (i + 1) as f64 / len as f64; size]).collect()
    }

    #[test]
    fn prediction_has_the_requested_shape_and_is_finite() {
        let lstm = StackedLstm::new(4, &[16, 8], 3, &mut rng());
        assert_eq!(lstm.layer_count(), 2);
        let out = lstm.predict(&sequence(10, 4, 0.5));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn inference_is_deterministic_for_the_same_weights() {
        let lstm = StackedLstm::dart_default(&mut rng());
        let a = lstm.predict(&sequence(16, 8, 1.0));
        let b = lstm.predict(&sequence(16, 8, 1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_inputs_give_different_outputs() {
        let lstm = StackedLstm::dart_default(&mut rng());
        let calm = lstm.predict(&sequence(16, 8, 0.01));
        let storm = lstm.predict(&sequence(16, 8, 5.0));
        assert_ne!(calm, storm);
    }

    #[test]
    fn hidden_state_stays_bounded() {
        // tanh-bounded cell outputs keep the hidden state in [-1, 1] even for
        // large inputs over long sequences.
        let layer = LstmLayer::new(2, 8, &mut rng());
        let mut hidden = vec![0.0; 8];
        let mut cell = vec![0.0; 8];
        for _ in 0..500 {
            layer.step(&[100.0, -100.0], &mut hidden, &mut cell);
        }
        assert!(hidden.iter().all(|h| h.abs() <= 1.0));
    }

    #[test]
    fn flops_and_processing_time_are_plausible() {
        let lstm = StackedLstm::dart_default(&mut rng());
        let flops = lstm.flops(16);
        assert!(flops > 100_000, "flops {flops}");
        let seconds = lstm.inference_cpu_seconds(16, 100e6);
        // Around 2 ms on a constrained satellite computer.
        assert!(seconds > 0.0005 && seconds < 0.01, "inference takes {seconds}s");
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_size_panics() {
        let layer = LstmLayer::new(4, 4, &mut rng());
        let mut hidden = vec![0.0; 4];
        let mut cell = vec![0.0; 4];
        layer.step(&[1.0], &mut hidden, &mut cell);
    }

    #[test]
    #[should_panic(expected = "at least one LSTM layer")]
    fn empty_stack_is_rejected() {
        StackedLstm::new(4, &[], 1, &mut rng());
    }
}
