//! Evaluation applications for the Celestial LEO edge testbed.
//!
//! The paper evaluates Celestial with two guest applications, both
//! reproduced here on top of the [`celestial`] testbed runtime:
//!
//! * [`meetup`] — the §4 multi-user video conference in West Africa: three
//!   clients stream video through a bridge server that either runs in the
//!   Johannesburg cloud datacenter or on the currently optimal satellite,
//!   selected by a tracking service every five seconds (Figs. 4–6).
//! * [`dart`] — the §5 DART-inspired real-time ocean environment alert
//!   system: 100 buoys in the Pacific send sensor readings over the Iridium
//!   constellation, a stacked-LSTM inference service (implemented from
//!   scratch in [`lstm`]) predicts environmental events, and results are
//!   forwarded to 200 ships and islands, either from a central processing
//!   location on Ford Island or directly on the satellites (Fig. 11).
//! * [`workload`] — constant-bit-rate traffic sources and scenario
//!   generators shared by both applications.
//! * [`scenario`] — the scenario engine: composable workload blocks (CBR,
//!   mobile, IoT, CDN, failover) expanded into thousands of generated
//!   tenants with flow-level population aggregation, riding the
//!   multi-tenant fan-out (`docs/SCENARIOS.md`).
//!
//! # Examples
//!
//! ```
//! use celestial_apps::meetup::{BridgeDeployment, MeetupConfig, MeetupExperiment};
//!
//! let config = MeetupConfig::new(BridgeDeployment::Satellite);
//! let experiment = MeetupExperiment::new(config);
//! assert_eq!(experiment.config().client_names.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dart;
pub mod lstm;
pub mod meetup;
pub mod scenario;
pub mod workload;

pub use dart::{DartConfig, DartDeployment, DartExperiment};
pub use lstm::StackedLstm;
pub use meetup::{BridgeDeployment, MeetupConfig, MeetupExperiment};
pub use scenario::ScenarioTenant;
