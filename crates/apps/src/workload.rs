//! Workload generators and scenario helpers shared by the evaluation
//! applications.

use celestial_constellation::GroundStation;
use celestial_sim::SimRng;
use celestial_types::geo::Geodetic;
use celestial_types::time::SimDuration;
use celestial_types::{Bandwidth, MachineResources};
use serde::{Deserialize, Serialize};

/// A constant-bit-rate traffic source, e.g. one WebRTC video stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbrSource {
    /// Target bit rate in bits per second.
    pub bitrate_bps: u64,
    /// Interval between packets.
    pub packet_interval: SimDuration,
}

impl CbrSource {
    /// Creates a source with the given bit rate and packet interval.
    pub fn new(bitrate_bps: u64, packet_interval: SimDuration) -> Self {
        CbrSource {
            bitrate_bps,
            packet_interval,
        }
    }

    /// The video stream of the §4 meetup scenario: 2.6 Mb/s in 20 ms frames.
    pub fn paper_video_stream() -> Self {
        CbrSource::new(2_600_000, SimDuration::from_millis(20))
    }

    /// The size in bytes of each packet so that the configured bit rate is
    /// met at the configured interval.
    pub fn packet_size_bytes(&self) -> u64 {
        (self.bitrate_bps as f64 * self.packet_interval.as_secs_f64() / 8.0).round() as u64
    }

    /// Number of packets sent over the given duration.
    pub fn packets_over(&self, duration: SimDuration) -> u64 {
        if self.packet_interval.is_zero() {
            return 0;
        }
        duration.as_micros() / self.packet_interval.as_micros()
    }
}

/// Serialisable application message header used by both evaluation
/// applications: who originally sent the message and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageHeader {
    /// Message kind discriminator, application-defined.
    pub kind: u8,
    /// Index of the originating node within the application's own numbering.
    pub origin: u32,
    /// Send time in microseconds of simulated time.
    pub sent_at_micros: u64,
    /// Sequence number from the originator.
    pub sequence: u64,
}

impl MessageHeader {
    /// Serialises the header into a fixed-size byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(21);
        bytes.push(self.kind);
        bytes.extend_from_slice(&self.origin.to_le_bytes());
        bytes.extend_from_slice(&self.sent_at_micros.to_le_bytes());
        bytes.extend_from_slice(&self.sequence.to_le_bytes());
        bytes
    }

    /// Parses a header from bytes produced by [`encode`](Self::encode).
    ///
    /// Returns `None` if the slice is too short.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 21 {
            return None;
        }
        Some(MessageHeader {
            kind: bytes[0],
            origin: u32::from_le_bytes(bytes[1..5].try_into().ok()?),
            sent_at_micros: u64::from_le_bytes(bytes[5..13].try_into().ok()?),
            sequence: u64::from_le_bytes(bytes[13..21].try_into().ok()?),
        })
    }
}

/// Generates the DART scenario's ground stations: `buoy_count` sensor buoys
/// and `sink_count` data sinks (ships and islands) spread over the Pacific,
/// plus the Pacific Tsunami Warning Center on Ford Island as the final
/// station. Buoys and sinks use the 88 Kb/s Iridium remote-sensing link rate;
/// the warning center gets a 100 Mb/s link and server-class resources.
pub fn dart_ground_stations(buoy_count: u32, sink_count: u32, rng: &mut SimRng) -> Vec<GroundStation> {
    let mut stations = Vec::with_capacity((buoy_count + sink_count + 1) as usize);
    for i in 0..buoy_count {
        let position = random_pacific_position(rng);
        stations.push(
            GroundStation::new(format!("buoy-{i}"), position)
                .with_resources(MachineResources::paper_sensor())
                .with_bandwidth(Bandwidth::from_kbps(88))
                .with_min_elevation_deg(10.0),
        );
    }
    for i in 0..sink_count {
        let position = random_pacific_position(rng);
        stations.push(
            GroundStation::new(format!("sink-{i}"), position)
                .with_resources(MachineResources::paper_sensor())
                .with_bandwidth(Bandwidth::from_kbps(88))
                .with_min_elevation_deg(10.0),
        );
    }
    stations.push(
        GroundStation::new("ford-island-ptwc", Geodetic::new(21.3649, -157.9779, 0.0))
            .with_resources(MachineResources::paper_central_server())
            .with_bandwidth(Bandwidth::from_mbps(100))
            .with_min_elevation_deg(10.0),
    );
    stations
}

/// Draws a position in the Pacific basin: longitudes from 135° E eastwards
/// across the antimeridian to 115° W, latitudes between 45° S and 55° N.
fn random_pacific_position(rng: &mut SimRng) -> Geodetic {
    let latitude = rng.uniform_range(-45.0, 55.0);
    // 135 .. 245 degrees east, normalised to (-180, 180].
    let longitude = rng.uniform_range(135.0, 245.0);
    Geodetic::new(latitude, longitude, 0.0)
}

/// Assigns each buoy the `group_size` nearest sinks (by great-circle
/// distance), the "ships and islands in the vicinity of the sensor" of the
/// paper's §5 scenario.
pub fn assign_sink_groups(
    buoys: &[Geodetic],
    sinks: &[Geodetic],
    group_size: usize,
) -> Vec<Vec<usize>> {
    buoys
        .iter()
        .map(|buoy| {
            let mut by_distance: Vec<(usize, f64)> = sinks
                .iter()
                .enumerate()
                .map(|(i, sink)| (i, buoy.great_circle_distance_km(sink)))
                .collect();
            by_distance.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN distances"));
            by_distance.into_iter().take(group_size).map(|(i, _)| i).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_stream_matches_the_paper_rate() {
        let stream = CbrSource::paper_video_stream();
        assert_eq!(stream.packet_size_bytes(), 6_500);
        assert_eq!(stream.packets_over(SimDuration::from_secs(1)), 50);
        // 50 packets of 6,500 bytes per second is 2.6 Mb/s.
        assert_eq!(stream.packet_size_bytes() * 50 * 8, 2_600_000);
    }

    #[test]
    fn message_header_round_trips() {
        let header = MessageHeader {
            kind: 2,
            origin: 77,
            sent_at_micros: 123_456_789,
            sequence: 42,
        };
        let encoded = header.encode();
        assert_eq!(MessageHeader::decode(&encoded), Some(header));
        assert_eq!(MessageHeader::decode(&encoded[..10]), None);
    }

    #[test]
    fn dart_stations_have_the_paper_population_and_link_rates() {
        let mut rng = SimRng::seed_from_u64(5);
        let stations = dart_ground_stations(100, 200, &mut rng);
        assert_eq!(stations.len(), 301);
        assert_eq!(stations.iter().filter(|s| s.name.starts_with("buoy-")).count(), 100);
        assert_eq!(stations.iter().filter(|s| s.name.starts_with("sink-")).count(), 200);
        assert_eq!(stations.last().unwrap().name, "ford-island-ptwc");
        assert_eq!(stations[0].bandwidth, Some(Bandwidth::from_kbps(88)));
        assert_eq!(
            stations.last().unwrap().bandwidth,
            Some(Bandwidth::from_mbps(100))
        );
        // All stations are in the Pacific basin.
        for station in &stations {
            let lon = station.position.longitude_deg();
            assert!(
                !( -110.0..130.0).contains(&lon),
                "{} at longitude {lon} is outside the Pacific",
                station.name
            );
        }
    }

    #[test]
    fn dart_stations_are_deterministic_per_seed() {
        let a = dart_ground_stations(10, 10, &mut SimRng::seed_from_u64(1));
        let b = dart_ground_stations(10, 10, &mut SimRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn sink_groups_pick_the_nearest_sinks() {
        let buoys = vec![Geodetic::new(0.0, 180.0, 0.0)];
        let sinks = vec![
            Geodetic::new(0.0, 179.0, 0.0),  // ~111 km away
            Geodetic::new(20.0, 160.0, 0.0), // far
            Geodetic::new(1.0, -180.0, 0.0), // ~111 km away (across the antimeridian)
            Geodetic::new(-40.0, 200.0, 0.0),
        ];
        let groups = assign_sink_groups(&buoys, &sinks, 2);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
        assert!(groups[0].contains(&0));
        assert!(groups[0].contains(&2));
    }
}
