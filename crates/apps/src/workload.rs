//! Workload generators and scenario helpers shared by the evaluation
//! applications.

use celestial_constellation::GroundStation;
use celestial_sim::flow::cumulative_floor;
use celestial_sim::SimRng;
use celestial_types::geo::Geodetic;
use celestial_types::time::{SimDuration, SimInstant};
use celestial_types::{Bandwidth, MachineResources};
use serde::{Deserialize, Serialize};

/// A constant-bit-rate traffic source, e.g. one WebRTC video stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbrSource {
    /// Target bit rate in bits per second.
    pub bitrate_bps: u64,
    /// Interval between packets.
    pub packet_interval: SimDuration,
}

impl CbrSource {
    /// Creates a source with the given bit rate and packet interval.
    pub fn new(bitrate_bps: u64, packet_interval: SimDuration) -> Self {
        CbrSource {
            bitrate_bps,
            packet_interval,
        }
    }

    /// The video stream of the §4 meetup scenario: 2.6 Mb/s in 20 ms frames.
    pub fn paper_video_stream() -> Self {
        CbrSource::new(2_600_000, SimDuration::from_millis(20))
    }

    /// The *nominal* size in bytes of each packet so that the configured bit
    /// rate is met at the configured interval, rounded to whole bytes.
    ///
    /// For rates where `bitrate·interval/8` is not integral the rounding
    /// makes the delivered rate drift; use
    /// [`packet_size_for`](Self::packet_size_for) for the exact per-packet
    /// sizes that carry the rounding residual forward instead.
    pub fn packet_size_bytes(&self) -> u64 {
        (self.bitrate_bps as f64 * self.packet_interval.as_secs_f64() / 8.0).round() as u64
    }

    /// Cumulative payload bytes carried by the first `packets` packets:
    /// `⌊packets·bitrate·interval/8⌋`, exact in integer microsecond ticks.
    ///
    /// Successive differences of this prefix distribute the per-packet
    /// rounding residual across the stream, so the delivered byte count never
    /// deviates from the configured bit rate by as much as one byte at any
    /// packet boundary — for *any* rate, not just ones where
    /// `bitrate·interval/8` is integral.
    pub fn cumulative_bytes(&self, packets: u64) -> u64 {
        // bits per packet·1e6 = bitrate · interval_µs; bytes = /8 /1e6.
        let num = self.bitrate_bps.saturating_mul(self.packet_interval.as_micros());
        cumulative_floor(packets, num, 8_000_000)
    }

    /// The exact size in bytes of packet number `sequence` (0-based), sized
    /// so that cumulative delivery tracks the configured bit rate without
    /// drift (see [`cumulative_bytes`](Self::cumulative_bytes)).
    pub fn packet_size_for(&self, sequence: u64) -> u64 {
        self.cumulative_bytes(sequence + 1) - self.cumulative_bytes(sequence)
    }

    /// Number of packets emitted up to and including time `t` by a source
    /// that started at the epoch: `⌊t/interval⌋`.
    pub fn packets_before(&self, t: SimInstant) -> u64 {
        if self.packet_interval.is_zero() {
            return 0;
        }
        t.duration_since(SimInstant::EPOCH).as_micros() / self.packet_interval.as_micros()
    }

    /// Number of packets emitted inside the window `(t0, t1]`, carrying the
    /// source's phase across window boundaries: `⌊t1/ivl⌋ − ⌊t0/ivl⌋`.
    ///
    /// Unlike truncating each window independently, these counts telescope —
    /// summing over any partition of a run equals the one-shot count, even
    /// when the interval does not divide the window (e.g. 30 ms packets
    /// observed in 1 s epochs). Returns 0 when `t1 <= t0`.
    pub fn packets_between(&self, t0: SimInstant, t1: SimInstant) -> u64 {
        if t1 <= t0 {
            return 0;
        }
        self.packets_before(t1) - self.packets_before(t0)
    }

    /// Payload bytes delivered inside the window `(t0, t1]` under the exact
    /// accounting of [`cumulative_bytes`](Self::cumulative_bytes).
    pub fn bytes_between(&self, t0: SimInstant, t1: SimInstant) -> u64 {
        if t1 <= t0 {
            return 0;
        }
        self.cumulative_bytes(self.packets_before(t1))
            - self.cumulative_bytes(self.packets_before(t0))
    }

    /// Number of packets sent over the given duration by a source starting
    /// at phase zero (equivalent to `packets_between(EPOCH, EPOCH+duration)`).
    pub fn packets_over(&self, duration: SimDuration) -> u64 {
        self.packets_before(SimInstant::EPOCH + duration)
    }
}

/// Serialisable application message header used by both evaluation
/// applications: who originally sent the message and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageHeader {
    /// Message kind discriminator, application-defined.
    pub kind: u8,
    /// Index of the originating node within the application's own numbering.
    pub origin: u32,
    /// Send time in microseconds of simulated time.
    pub sent_at_micros: u64,
    /// Sequence number from the originator.
    pub sequence: u64,
}

impl MessageHeader {
    /// Serialises the header into a fixed-size byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(21);
        bytes.push(self.kind);
        bytes.extend_from_slice(&self.origin.to_le_bytes());
        bytes.extend_from_slice(&self.sent_at_micros.to_le_bytes());
        bytes.extend_from_slice(&self.sequence.to_le_bytes());
        bytes
    }

    /// Parses a header from bytes produced by [`encode`](Self::encode).
    ///
    /// Returns `None` if the slice is too short.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 21 {
            return None;
        }
        Some(MessageHeader {
            kind: bytes[0],
            origin: u32::from_le_bytes(bytes[1..5].try_into().ok()?),
            sent_at_micros: u64::from_le_bytes(bytes[5..13].try_into().ok()?),
            sequence: u64::from_le_bytes(bytes[13..21].try_into().ok()?),
        })
    }
}

/// Generates the DART scenario's ground stations: `buoy_count` sensor buoys
/// and `sink_count` data sinks (ships and islands) spread over the Pacific,
/// plus the Pacific Tsunami Warning Center on Ford Island as the final
/// station. Buoys and sinks use the 88 Kb/s Iridium remote-sensing link rate;
/// the warning center gets a 100 Mb/s link and server-class resources.
pub fn dart_ground_stations(buoy_count: u32, sink_count: u32, rng: &mut SimRng) -> Vec<GroundStation> {
    let mut stations = Vec::with_capacity((buoy_count + sink_count + 1) as usize);
    for i in 0..buoy_count {
        let position = random_pacific_position(rng);
        stations.push(
            GroundStation::new(format!("buoy-{i}"), position)
                .with_resources(MachineResources::paper_sensor())
                .with_bandwidth(Bandwidth::from_kbps(88))
                .with_min_elevation_deg(10.0),
        );
    }
    for i in 0..sink_count {
        let position = random_pacific_position(rng);
        stations.push(
            GroundStation::new(format!("sink-{i}"), position)
                .with_resources(MachineResources::paper_sensor())
                .with_bandwidth(Bandwidth::from_kbps(88))
                .with_min_elevation_deg(10.0),
        );
    }
    stations.push(
        GroundStation::new("ford-island-ptwc", Geodetic::new(21.3649, -157.9779, 0.0))
            .with_resources(MachineResources::paper_central_server())
            .with_bandwidth(Bandwidth::from_mbps(100))
            .with_min_elevation_deg(10.0),
    );
    stations
}

/// Draws a position in the Pacific basin: longitudes from 135° E eastwards
/// across the antimeridian to 115° W, latitudes between 45° S and 55° N.
fn random_pacific_position(rng: &mut SimRng) -> Geodetic {
    let latitude = rng.uniform_range(-45.0, 55.0);
    // 135 .. 245 degrees east, normalised to (-180, 180].
    let longitude = rng.uniform_range(135.0, 245.0);
    Geodetic::new(latitude, longitude, 0.0)
}

/// Assigns each buoy the `group_size` nearest sinks (by great-circle
/// distance), the "ships and islands in the vicinity of the sensor" of the
/// paper's §5 scenario.
///
/// The function is total: `group_size` is clamped to the number of sinks (a
/// generated block may ask for a larger vicinity than the fleet offers, and
/// gets every sink, nearest first), an empty sink set yields empty groups,
/// and NaN distances (degenerate generated positions) order after all finite
/// distances via [`f64::total_cmp`] instead of panicking.
pub fn assign_sink_groups(
    buoys: &[Geodetic],
    sinks: &[Geodetic],
    group_size: usize,
) -> Vec<Vec<usize>> {
    let take = group_size.min(sinks.len());
    buoys
        .iter()
        .map(|buoy| {
            let mut by_distance: Vec<(usize, f64)> = sinks
                .iter()
                .enumerate()
                .map(|(i, sink)| (i, buoy.great_circle_distance_km(sink)))
                .collect();
            by_distance.sort_by(|a, b| a.1.total_cmp(&b.1));
            by_distance.into_iter().take(take).map(|(i, _)| i).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_stream_matches_the_paper_rate() {
        let stream = CbrSource::paper_video_stream();
        assert_eq!(stream.packet_size_bytes(), 6_500);
        assert_eq!(stream.packets_over(SimDuration::from_secs(1)), 50);
        // 50 packets of 6,500 bytes per second is 2.6 Mb/s.
        assert_eq!(stream.packet_size_bytes() * 50 * 8, 2_600_000);
    }

    #[test]
    fn windowed_packet_counts_equal_the_one_shot_count() {
        // 30 ms does not divide the 1 s window: the old per-window
        // truncation (`window/interval`) lost a fractional packet every
        // window (33·100 = 3,300), while the whole run holds 3,333.
        let source = CbrSource::new(1_000_000, SimDuration::from_millis(30));
        let horizon = SimDuration::from_secs(100);
        let total = source.packets_over(horizon);
        assert_eq!(total, 3_333);
        let mut summed = 0;
        let mut windows = Vec::new();
        for s in 0..100 {
            let t0 = SimInstant::EPOCH + SimDuration::from_secs(s);
            let t1 = SimInstant::EPOCH + SimDuration::from_secs(s + 1);
            let n = source.packets_between(t0, t1);
            windows.push(n);
            summed += n;
        }
        assert_eq!(summed, total, "window sums must equal the one-shot count");
        // The phase carry shows up as unequal window counts (33 vs 34).
        assert!(windows.contains(&33) && windows.contains(&34));
        // Telescoping holds for irregular partitions too.
        let cuts = [0_u64, 7, 1_204, 29_999, 30_000, 65_432, 100_000];
        let pieces: u64 = cuts
            .windows(2)
            .map(|w| {
                source.packets_between(
                    SimInstant::from_millis(w[0]),
                    SimInstant::from_millis(w[1]),
                )
            })
            .sum();
        assert_eq!(pieces, total);
        // Degenerate windows and intervals are total.
        let t = SimInstant::from_millis(500);
        assert_eq!(source.packets_between(t, t), 0);
        let frozen = CbrSource::new(1_000, SimDuration::ZERO);
        assert_eq!(frozen.packets_over(SimDuration::from_secs(5)), 0);
    }

    #[test]
    fn exact_byte_accounting_matches_the_bitrate_for_awkward_rates() {
        // Rates where bitrate·interval/8 is not integral: a fixed rounded
        // packet size drifts, the cumulative-floor accounting must not.
        let awkward = [
            CbrSource::new(1_000_003, SimDuration::from_millis(30)),
            CbrSource::new(88_000, SimDuration::from_millis(7)),
            CbrSource::new(64_123, SimDuration::from_millis(333)),
            CbrSource::new(999_999, SimDuration::from_millis(1)),
            CbrSource::paper_video_stream(),
        ];
        for source in awkward {
            let packets = source.packets_over(SimDuration::from_secs(100));
            // The prefix never deviates from the ideal rate by a full byte,
            // at any packet boundary.
            for k in [0, 1, 2, 3, packets / 2, packets.saturating_sub(1), packets] {
                let ideal =
                    k as f64 * source.bitrate_bps as f64 * source.packet_interval.as_secs_f64()
                        / 8.0;
                let got = source.cumulative_bytes(k) as f64;
                assert!(
                    (got - ideal).abs() < 1.0,
                    "{} bps / {:?}: cumulative drift {} bytes after {k} packets",
                    source.bitrate_bps,
                    source.packet_interval,
                    got - ideal,
                );
            }
            // Per-packet sizes telescope to the cumulative total and differ
            // by at most one byte from each other.
            let sizes: Vec<u64> = (0..packets.min(10_000)).map(|k| source.packet_size_for(k)).collect();
            let span = sizes.iter().max().unwrap() - sizes.iter().min().unwrap();
            assert!(span <= 1, "packet sizes vary by more than the residual byte");
            assert_eq!(
                sizes.iter().sum::<u64>(),
                source.cumulative_bytes(packets.min(10_000)),
            );
            // Windowed byte accounting telescopes like the packet counts.
            let mut summed = 0;
            for s in 0..100 {
                summed += source.bytes_between(
                    SimInstant::EPOCH + SimDuration::from_secs(s),
                    SimInstant::EPOCH + SimDuration::from_secs(s + 1),
                );
            }
            assert_eq!(summed, source.cumulative_bytes(packets));
        }
        // The paper's lucky rate stays bit-for-bit what it always was.
        let paper = CbrSource::paper_video_stream();
        assert_eq!(paper.packet_size_for(0), 6_500);
        assert_eq!(paper.packet_size_for(49), 6_500);
        // An awkward rate demonstrates the bug the fix removes: the rounded
        // fixed size drifts by >1 byte per second against the exact account.
        let drifty = CbrSource::new(1_000_003, SimDuration::from_millis(30));
        let rounded_total = drifty.packet_size_bytes() * drifty.packets_over(SimDuration::from_secs(100));
        let exact_total = drifty.cumulative_bytes(drifty.packets_over(SimDuration::from_secs(100)));
        assert!(rounded_total != exact_total, "the awkward rate must exercise the residual");
    }

    #[test]
    fn message_header_round_trips() {
        let header = MessageHeader {
            kind: 2,
            origin: 77,
            sent_at_micros: 123_456_789,
            sequence: 42,
        };
        let encoded = header.encode();
        assert_eq!(MessageHeader::decode(&encoded), Some(header));
        assert_eq!(MessageHeader::decode(&encoded[..10]), None);
    }

    #[test]
    fn dart_stations_have_the_paper_population_and_link_rates() {
        let mut rng = SimRng::seed_from_u64(5);
        let stations = dart_ground_stations(100, 200, &mut rng);
        assert_eq!(stations.len(), 301);
        assert_eq!(stations.iter().filter(|s| s.name.starts_with("buoy-")).count(), 100);
        assert_eq!(stations.iter().filter(|s| s.name.starts_with("sink-")).count(), 200);
        assert_eq!(stations.last().unwrap().name, "ford-island-ptwc");
        assert_eq!(stations[0].bandwidth, Some(Bandwidth::from_kbps(88)));
        assert_eq!(
            stations.last().unwrap().bandwidth,
            Some(Bandwidth::from_mbps(100))
        );
        // All stations are in the Pacific basin.
        for station in &stations {
            let lon = station.position.longitude_deg();
            assert!(
                !( -110.0..130.0).contains(&lon),
                "{} at longitude {lon} is outside the Pacific",
                station.name
            );
        }
    }

    #[test]
    fn dart_stations_are_deterministic_per_seed() {
        let a = dart_ground_stations(10, 10, &mut SimRng::seed_from_u64(1));
        let b = dart_ground_stations(10, 10, &mut SimRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn sink_groups_pick_the_nearest_sinks() {
        let buoys = vec![Geodetic::new(0.0, 180.0, 0.0)];
        let sinks = vec![
            Geodetic::new(0.0, 179.0, 0.0),  // ~111 km away
            Geodetic::new(20.0, 160.0, 0.0), // far
            Geodetic::new(1.0, -180.0, 0.0), // ~111 km away (across the antimeridian)
            Geodetic::new(-40.0, 200.0, 0.0),
        ];
        let groups = assign_sink_groups(&buoys, &sinks, 2);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
        assert!(groups[0].contains(&0));
        assert!(groups[0].contains(&2));
    }

    #[test]
    fn sink_groups_are_total_for_degenerate_inputs() {
        let buoys = vec![Geodetic::new(0.0, 180.0, 0.0), Geodetic::new(10.0, 170.0, 0.0)];
        let sinks = vec![Geodetic::new(0.0, 179.0, 0.0), Geodetic::new(5.0, 175.0, 0.0)];
        // Oversized groups clamp to the whole sink set, nearest first.
        let groups = assign_sink_groups(&buoys, &sinks, 10);
        assert_eq!(groups.len(), 2);
        for group in &groups {
            assert_eq!(group.len(), 2, "clamped to every sink");
        }
        assert_eq!(groups[0][0], 0, "nearest sink still leads the group");
        // No sinks: every buoy gets an empty vicinity instead of a panic.
        let empty = assign_sink_groups(&buoys, &[], 3);
        assert_eq!(empty, vec![Vec::<usize>::new(), Vec::new()]);
        // No buoys: no groups.
        assert!(assign_sink_groups(&[], &sinks, 3).is_empty());
        // A NaN distance (degenerate generated position) orders last rather
        // than panicking the sort.
        let degenerate = vec![
            Geodetic::new(f64::NAN, 180.0, 0.0),
            Geodetic::new(0.0, 179.0, 0.0),
        ];
        let groups = assign_sink_groups(&buoys[..1], &degenerate, 2);
        assert_eq!(groups[0], vec![1, 0], "NaN distance sorts after finite ones");
    }
}
