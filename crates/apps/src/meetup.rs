//! The §4 evaluation application: a multi-user video conference in West
//! Africa.
//!
//! Three clients in Accra, Abuja and Yaoundé each send a 2.6 Mb/s video
//! stream to a bridge server, which duplicates every frame to the other two
//! participants. The bridge runs either in the Johannesburg cloud datacenter
//! (the nearest cloud region, assumed to have a satellite uplink) or on the
//! satellite currently offering the lowest combined latency to all three
//! clients, selected by a tracking service every five seconds. The
//! measurements reproduce Figs. 4 (latency CDFs per client pair), 5
//! (measured vs. expected latency over time) and 6 (reproducibility across
//! repetitions).

use crate::workload::{CbrSource, MessageHeader};
use celestial::testbed::{AppContext, GuestApplication};
use celestial_constellation::{GroundStation, Shell};
use celestial_constellation::ground_station::presets;
use celestial_netem::packet::Packet;
use celestial_sgp4::WalkerShell;
use celestial_sim::metrics::{LatencyRecorder, TimeSeries};
use celestial_types::ids::NodeId;
use celestial_types::time::SimDuration;
use celestial_types::{Latency, MachineResources};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where the video bridge runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BridgeDeployment {
    /// On the Johannesburg cloud datacenter (the paper's baseline).
    Cloud,
    /// On the optimal satellite server, chosen by the tracking service.
    Satellite,
}

/// Configuration of the meetup experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeetupConfig {
    /// Where the bridge runs.
    pub deployment: BridgeDeployment,
    /// The video stream each client sends.
    pub stream: CbrSource,
    /// Names of the client ground stations (must exist in the testbed
    /// configuration).
    pub client_names: Vec<String>,
    /// Name of the cloud datacenter ground station.
    pub cloud_name: String,
    /// Interval at which the tracking service re-selects the bridge
    /// satellite.
    pub tracking_interval: SimDuration,
    /// Median processing delay added by clients, bridge and measurement
    /// pipeline, in milliseconds (1.37 ms in the paper's baseline).
    pub processing_delay_ms: f64,
    /// Standard deviation of the processing delay jitter in milliseconds
    /// (3.86 ms in the paper's baseline).
    pub processing_jitter_ms: f64,
}

impl MeetupConfig {
    /// The configuration used in the paper's §4 evaluation.
    pub fn new(deployment: BridgeDeployment) -> Self {
        MeetupConfig {
            deployment,
            stream: CbrSource::paper_video_stream(),
            client_names: vec!["accra".to_owned(), "abuja".to_owned(), "yaounde".to_owned()],
            cloud_name: "johannesburg-dc".to_owned(),
            tracking_interval: SimDuration::from_secs(5),
            processing_delay_ms: 1.37,
            processing_jitter_ms: 3.86,
        }
    }

    /// The ground stations this scenario needs (three clients plus the cloud
    /// datacenter), ready to be added to a testbed configuration.
    pub fn ground_stations() -> Vec<GroundStation> {
        vec![
            presets::accra().with_resources(MachineResources::paper_client()),
            presets::abuja().with_resources(MachineResources::paper_client()),
            presets::yaounde().with_resources(MachineResources::paper_client()),
            presets::johannesburg_datacenter(),
        ]
    }

    /// The constellation shells of the §4 scenario: the two lowest (and
    /// densest) Starlink phase-I shells — the paper observes that only these
    /// are ever selected as bridge servers.
    pub fn shells() -> Vec<Shell> {
        WalkerShell::starlink_phase1()
            .into_iter()
            .take(2)
            .map(Shell::from_walker)
            .collect()
    }
}

const KIND_FRAME: u8 = 1;
const TAG_TRACKING: u64 = 1;
const TAG_FRAME_BASE: u64 = 100;

/// The meetup experiment: clients, bridge, tracking service and its
/// measurements.
#[derive(Debug)]
pub struct MeetupExperiment {
    config: MeetupConfig,
    clients: Vec<NodeId>,
    cloud: Option<NodeId>,
    bridge: Option<NodeId>,
    sequence: u64,
    /// End-to-end one-way latency per (sender, receiver) client pair.
    pair_latencies: BTreeMap<(usize, usize), LatencyRecorder>,
    /// Measured latency over time per (sender, receiver) client pair.
    measured_series: BTreeMap<(usize, usize), TimeSeries>,
    /// Expected latency over time per (sender, receiver) pair, as computed by
    /// the tracking service from the constellation calculation.
    expected_series: BTreeMap<(usize, usize), TimeSeries>,
    /// History of selected bridge nodes (time, node).
    bridge_history: Vec<(f64, NodeId)>,
}

impl MeetupExperiment {
    /// Creates the experiment for the given configuration.
    pub fn new(config: MeetupConfig) -> Self {
        MeetupExperiment {
            config,
            clients: Vec::new(),
            cloud: None,
            bridge: None,
            sequence: 0,
            pair_latencies: BTreeMap::new(),
            measured_series: BTreeMap::new(),
            expected_series: BTreeMap::new(),
            bridge_history: Vec::new(),
        }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &MeetupConfig {
        &self.config
    }

    /// The end-to-end latency recorder for the ordered client pair
    /// `(from, to)` (indices into `client_names`).
    pub fn pair_latencies(&self, from: usize, to: usize) -> Option<&LatencyRecorder> {
        self.pair_latencies.get(&(from, to))
    }

    /// Measured latency over time for the ordered client pair.
    pub fn measured_series(&self, from: usize, to: usize) -> Option<&TimeSeries> {
        self.measured_series.get(&(from, to))
    }

    /// Expected (calculated) latency over time for the ordered client pair.
    pub fn expected_series(&self, from: usize, to: usize) -> Option<&TimeSeries> {
        self.expected_series.get(&(from, to))
    }

    /// The sequence of bridge servers selected over the experiment.
    pub fn bridge_history(&self) -> &[(f64, NodeId)] {
        &self.bridge_history
    }

    /// All end-to-end latency samples across all client pairs, in
    /// milliseconds.
    pub fn all_latencies_ms(&self) -> Vec<f64> {
        self.pair_latencies
            .values()
            .flat_map(|r| r.samples_ms().to_vec())
            .collect()
    }

    fn select_bridge(&mut self, ctx: &mut AppContext<'_>) {
        let new_bridge = match self.config.deployment {
            BridgeDeployment::Cloud => self.cloud,
            BridgeDeployment::Satellite => self.optimal_satellite(ctx).or(self.bridge).or(self.cloud),
        };
        if new_bridge != self.bridge {
            self.bridge = new_bridge;
            if let Some(bridge) = new_bridge {
                self.bridge_history.push((ctx.now().as_secs_f64(), bridge));
                ctx.set_cpu_load(bridge, 0.6);
            }
        }
    }

    /// The satellite with the lowest combined expected latency to all three
    /// clients, as computed by the tracking service from the info API.
    fn optimal_satellite(&self, ctx: &AppContext<'_>) -> Option<NodeId> {
        // Candidates: satellites visible from any client.
        let mut best: Option<(NodeId, Latency)> = None;
        let mut seen = std::collections::BTreeSet::new();
        for client in &self.clients {
            for sat in ctx.visible_satellites(*client) {
                if !seen.insert(sat) {
                    continue;
                }
                let mut total = Latency::ZERO;
                let mut reachable = true;
                for other in &self.clients {
                    match ctx.expected_latency(*other, sat) {
                        Some(latency) => total = total + latency,
                        None => {
                            reachable = false;
                            break;
                        }
                    }
                }
                if reachable {
                    match best {
                        Some((_, best_latency)) if total >= best_latency => {}
                        _ => best = Some((sat, total)),
                    }
                }
            }
        }
        best.map(|(node, _)| node)
    }

    fn record_expected(&mut self, ctx: &mut AppContext<'_>) {
        let Some(bridge) = self.bridge else { return };
        let now_s = ctx.now().as_secs_f64();
        for (i, from) in self.clients.iter().enumerate() {
            for (j, to) in self.clients.iter().enumerate() {
                if i == j {
                    continue;
                }
                let leg1 = ctx.expected_latency(*from, bridge);
                let leg2 = ctx.expected_latency(bridge, *to);
                if let (Some(a), Some(b)) = (leg1, leg2) {
                    let expected_ms =
                        a.as_millis_f64() + b.as_millis_f64() + self.config.processing_delay_ms;
                    self.expected_series
                        .entry((i, j))
                        .or_default()
                        .record_at_secs(now_s, expected_ms);
                }
            }
        }
    }

    fn send_frame(&mut self, client_index: usize, ctx: &mut AppContext<'_>) {
        let Some(bridge) = self.bridge else { return };
        let client = self.clients[client_index];
        let header = MessageHeader {
            kind: KIND_FRAME,
            origin: client_index as u32,
            sent_at_micros: ctx.now().as_micros(),
            sequence: self.sequence,
        };
        self.sequence += 1;
        ctx.send(
            client,
            bridge,
            self.config.stream.packet_size_bytes(),
            header.encode(),
        );
    }
}

impl GuestApplication for MeetupExperiment {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.clients = self
            .config
            .client_names
            .iter()
            .filter_map(|name| ctx.ground_station(name))
            .collect();
        assert_eq!(
            self.clients.len(),
            self.config.client_names.len(),
            "all meetup clients must exist in the testbed configuration"
        );
        self.cloud = ctx.ground_station(&self.config.cloud_name);
        for client in &self.clients {
            ctx.set_cpu_load(*client, 0.5);
        }
        if let Some(cloud) = self.cloud {
            ctx.set_cpu_load(cloud, 0.3);
        }
        self.select_bridge(ctx);
        self.record_expected(ctx);

        // Stagger the three clients' frame timers so they do not all fire in
        // the same microsecond.
        for (i, _) in self.clients.iter().enumerate() {
            ctx.set_timer(
                SimDuration::from_millis(i as u64),
                TAG_FRAME_BASE + i as u64,
            );
        }
        ctx.set_timer(self.config.tracking_interval, TAG_TRACKING);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut AppContext<'_>) {
        if tag == TAG_TRACKING {
            self.select_bridge(ctx);
            self.record_expected(ctx);
            ctx.set_timer(self.config.tracking_interval, TAG_TRACKING);
        } else if tag >= TAG_FRAME_BASE {
            let client_index = (tag - TAG_FRAME_BASE) as usize;
            self.send_frame(client_index, ctx);
            ctx.set_timer(self.config.stream.packet_interval, tag);
        }
    }

    fn on_message(&mut self, message: &Packet, ctx: &mut AppContext<'_>) {
        let Some(header) = MessageHeader::decode(&message.payload) else {
            return;
        };
        let bridge = match self.bridge {
            Some(bridge) => bridge,
            None => return,
        };
        if message.destination == bridge && !self.clients.contains(&message.destination) {
            // Bridge: duplicate the frame to every other participant.
            for (j, client) in self.clients.iter().enumerate() {
                if j as u32 == header.origin {
                    continue;
                }
                ctx.send(bridge, *client, message.size_bytes, message.payload.to_vec());
            }
        } else if let Some(receiver_index) =
            self.clients.iter().position(|c| *c == message.destination)
        {
            // A client received a (possibly forwarded) frame: record the
            // end-to-end latency from the original sender, plus the
            // processing delay of the real pipeline.
            let sender_index = header.origin as usize;
            if sender_index == receiver_index {
                return;
            }
            // The cloud deployment also uses this path when the bridge is a
            // ground station that happens to be a "client" of the message —
            // frames arriving directly from a sending client at the bridge
            // are handled above because the bridge is never one of the three
            // clients.
            let network_ms = ctx
                .now()
                .duration_since(celestial_types::time::SimInstant::from_micros(
                    header.sent_at_micros,
                ))
                .as_millis_f64();
            let processing = ctx
                .rng()
                .normal(self.config.processing_delay_ms, self.config.processing_jitter_ms)
                .max(0.0);
            let total_ms = network_ms + processing;
            let key = (sender_index, receiver_index);
            self.pair_latencies.entry(key).or_default().record_millis(total_ms);
            self.measured_series
                .entry(key)
                .or_default()
                .record_at_secs(ctx.now().as_secs_f64(), total_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial::config::{HostConfig, TestbedConfig};
    use celestial::testbed::Testbed;
    use celestial_constellation::BoundingBox;

    /// A reduced version of the §4 scenario that runs quickly in unit tests:
    /// only the first Starlink shell and a 30-second experiment.
    fn quick_testbed(seed: u64) -> Testbed {
        let config = TestbedConfig::builder()
            .seed(seed)
            .update_interval_s(2.0)
            .duration_s(30.0)
            .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
            .ground_stations(MeetupConfig::ground_stations())
            .bounding_box(BoundingBox::west_africa())
            .hosts(vec![HostConfig::default(); 3])
            .build()
            .unwrap();
        Testbed::new(&config).unwrap()
    }

    fn run(deployment: BridgeDeployment, seed: u64) -> MeetupExperiment {
        let mut testbed = quick_testbed(seed);
        let mut app = MeetupExperiment::new(MeetupConfig::new(deployment));
        testbed.run(&mut app).unwrap();
        app
    }

    #[test]
    fn satellite_bridge_gives_lower_latency_than_cloud() {
        let satellite = run(BridgeDeployment::Satellite, 7);
        let cloud = run(BridgeDeployment::Cloud, 7);
        let sat_ms = celestial_sim::metrics::summarize(&satellite.all_latencies_ms());
        let cloud_ms = celestial_sim::metrics::summarize(&cloud.all_latencies_ms());
        assert!(sat_ms.count > 1_000, "satellite samples {}", sat_ms.count);
        assert!(cloud_ms.count > 1_000, "cloud samples {}", cloud_ms.count);
        // The paper's headline: ~16 ms over the satellite bridge vs ~46 ms
        // over the Johannesburg datacenter for most of the conference.
        assert!(
            sat_ms.median < cloud_ms.median,
            "satellite {} ms vs cloud {} ms",
            sat_ms.median,
            cloud_ms.median
        );
        assert!(sat_ms.median < 25.0, "satellite median {}", sat_ms.median);
        assert!(cloud_ms.median > 30.0, "cloud median {}", cloud_ms.median);
    }

    #[test]
    fn tracking_service_selects_satellites_in_the_satellite_deployment() {
        let satellite = run(BridgeDeployment::Satellite, 3);
        assert!(!satellite.bridge_history().is_empty());
        assert!(satellite
            .bridge_history()
            .iter()
            .all(|(_, node)| node.is_satellite()));
        let cloud = run(BridgeDeployment::Cloud, 3);
        assert_eq!(cloud.bridge_history().len(), 1);
        assert!(cloud.bridge_history()[0].1.is_ground_station());
    }

    #[test]
    fn expected_and_measured_latency_track_each_other() {
        let cloud = run(BridgeDeployment::Cloud, 11);
        let measured = cloud.measured_series(1, 0).expect("abuja -> accra measured");
        let expected = cloud.expected_series(1, 0).expect("abuja -> accra expected");
        assert!(!measured.is_empty());
        assert!(!expected.is_empty());
        let measured_median = celestial_sim::metrics::summarize(&measured.values()).median;
        let expected_median = celestial_sim::metrics::summarize(&expected.values()).median;
        // Fig. 5: both curves follow the same trend; medians within a few ms.
        assert!(
            (measured_median - expected_median).abs() < 6.0,
            "measured {measured_median} vs expected {expected_median}"
        );
    }

    #[test]
    fn repetitions_with_the_same_seed_are_identical_and_other_seeds_similar() {
        let a = run(BridgeDeployment::Cloud, 21);
        let b = run(BridgeDeployment::Cloud, 21);
        assert_eq!(a.all_latencies_ms(), b.all_latencies_ms());
        let c = run(BridgeDeployment::Cloud, 22);
        let median_a = celestial_sim::metrics::summarize(&a.all_latencies_ms()).median;
        let median_c = celestial_sim::metrics::summarize(&c.all_latencies_ms()).median;
        // Fig. 6: repetitions follow the same trends.
        assert!((median_a - median_c).abs() < 5.0);
    }
}
