//! The scenario engine: composable workload blocks expanded into generated
//! tenant fleets (`docs/SCENARIOS.md`).
//!
//! The paper evaluates Celestial with exactly two hand-written guest
//! applications (meetup §4, DART §5). The scenario engine generalises them: a
//! `[scenario]` table composes reusable building blocks — CBR flows,
//! handover-chasing mobile clients, bursty IoT fleets, CDN-style edge caches
//! with origin fallback, and region-blackout failover consumers — into N
//! generated tenants riding the multi-tenant fan-out
//! (`Testbed::run_fleet`).
//!
//! Per-block populations are aggregated at **flow level** on the
//! deterministic sim engine: each block accounts for its population's
//! emissions in closed form ([`FlowPopulation`]) and puts one probe message
//! per epoch window on the wire, so a tenant with a million simulated users
//! costs the event queue no more than one with a hundred. All randomness
//! comes from each tenant's own `SimRng::derive("scenario.<tenant>.<block>")`
//! stream, which is what makes any generated scenario bit-reproducible
//! across runs, thread counts and {sync, pipelined} × {global, sharded} —
//! the paper's fig. 6 claim, generalised.

use crate::workload::{CbrSource, MessageHeader};
use celestial::config::{ScenarioBlock, ScenarioBlockKind, TestbedConfig};
use celestial::testbed::{AppContext, GuestApplication};
use celestial_netem::packet::Packet;
use celestial_sim::flow::FlowPopulation;
use celestial_sim::SimRng;
use celestial_types::ids::NodeId;
use celestial_types::time::SimInstant;
use celestial_types::{Error, Result};

/// Wire size floor for a probe message: the [`MessageHeader`] itself.
const HEADER_BYTES: u64 = 21;

/// One workload block instantiated inside one generated tenant.
struct BlockRuntime {
    /// The configured block this runtime instantiates.
    spec: ScenarioBlock,
    /// Effective block name (`<kind>-<index>` when unnamed).
    name: String,
    /// Station names after positional resolution ("" → first/last station).
    source_name: String,
    sink_name: String,
    fallback_name: String,
    /// Per-user CBR law, shared by the whole population.
    cbr: CbrSource,
    /// The population aggregated at flow level.
    flow: FlowPopulation,
    /// CDN hit ratio in integer permille, so the hit split is exact.
    hit_permille: u64,
    /// Derived RNG stream `scenario.<tenant>.<block>` (seeded in
    /// `on_start`).
    rng: Option<SimRng>,
    /// Resolved node ids (in `on_start`).
    source: Option<NodeId>,
    sink: Option<NodeId>,
    fallback: Option<NodeId>,
    /// The mobile block's currently chased uplink satellite.
    uplink: Option<NodeId>,
    // Exact aggregate accounting, cumulative over the run.
    events: u64,
    bytes: u64,
    bursts: u64,
    handovers: u64,
    hits: u64,
    misses: u64,
    failovers: u64,
    probes_sent: u64,
    deliveries: u64,
}

impl BlockRuntime {
    fn new(spec: ScenarioBlock, index: usize, config: &TestbedConfig) -> Self {
        let first = config.ground_stations.first().expect("validated: stations exist");
        let last = config.ground_stations.last().expect("validated: stations exist");
        let pick = |role: &str, default: &str| -> String {
            if role.is_empty() { default.to_owned() } else { role.to_owned() }
        };
        let name = spec.effective_name(index);
        let cbr = CbrSource::new(spec.bitrate_bps, spec.interval());
        let flow = FlowPopulation::new(spec.population, spec.interval());
        BlockRuntime {
            name,
            source_name: pick(&spec.source, &first.name),
            sink_name: pick(&spec.sink, &last.name),
            fallback_name: pick(&spec.fallback, &last.name),
            cbr,
            flow,
            hit_permille: (spec.hit_ratio * 1_000.0).round() as u64,
            spec,
            rng: None,
            source: None,
            sink: None,
            fallback: None,
            uplink: None,
            events: 0,
            bytes: 0,
            bursts: 0,
            handovers: 0,
            hits: 0,
            misses: 0,
            failovers: 0,
            probes_sent: 0,
            deliveries: 0,
        }
    }

    /// Accounts the window `(t0, t1]` for this block's population and puts
    /// the window's probe message(s) on the wire.
    fn emit_window(
        &mut self,
        index: usize,
        t0: SimInstant,
        t1: SimInstant,
        ctx: &mut AppContext<'_>,
    ) {
        let mut events = self.flow.events_between(t0, t1);
        // The IoT fleet draws exactly one burst decision per window, so the
        // derived stream advances identically whether or not bursts land.
        if self.spec.kind == ScenarioBlockKind::Iot {
            let burst = self
                .rng
                .as_mut()
                .expect("on_start derived the stream")
                .chance(self.spec.burst_prob);
            if burst && events > 0 {
                events = events.saturating_mul(u64::from(self.spec.burst_factor));
                self.bursts += 1;
            }
        }

        // Exact aggregate byte accounting: the per-packet residual carry
        // applied at the aggregate event index (see CbrSource).
        let before = self.cbr.cumulative_bytes(self.events);
        self.events += events;
        let after = self.cbr.cumulative_bytes(self.events);
        self.bytes += after - before;

        let (Some(source), Some(sink), Some(fallback)) = (self.source, self.sink, self.fallback)
        else {
            return;
        };

        // Kind-specific routing of the window's aggregate flow.
        let mut targets: Vec<NodeId> = Vec::with_capacity(2);
        match self.spec.kind {
            ScenarioBlockKind::Cbr | ScenarioBlockKind::Iot => {
                if events > 0 {
                    targets.push(sink);
                }
            }
            ScenarioBlockKind::Mobile => {
                // Chase handovers: re-pick the best uplink every epoch and
                // count the switches.
                let best = ctx.best_uplink(source);
                if best != self.uplink {
                    if self.uplink.is_some() {
                        self.handovers += 1;
                    }
                    self.uplink = best;
                }
                if events > 0 {
                    targets.push(best.unwrap_or(sink));
                }
            }
            ScenarioBlockKind::Cdn => {
                // Requests hit the edge cache (best uplink satellite) at the
                // configured ratio; misses fall through to the origin. With
                // no edge in view every request is a miss.
                let edge = ctx.best_uplink(source);
                let (hit_delta, miss_delta) = match edge {
                    Some(_) => {
                        let hits = events * self.hit_permille / 1_000;
                        (hits, events - hits)
                    }
                    None => (0, events),
                };
                self.hits += hit_delta;
                self.misses += miss_delta;
                if hit_delta > 0 {
                    targets.push(edge.expect("hits imply an edge"));
                }
                if miss_delta > 0 {
                    targets.push(fallback);
                }
            }
            ScenarioBlockKind::Failover => {
                // Stream from the primary while it runs; fail over to the
                // backup when the region is dark.
                let target = if ctx.is_running(sink) {
                    sink
                } else {
                    self.failovers += 1;
                    fallback
                };
                if events > 0 {
                    targets.push(target);
                }
            }
        }

        for target in targets {
            let header = MessageHeader {
                kind: self.spec.kind as u8,
                origin: index as u32,
                sent_at_micros: ctx.now().duration_since(SimInstant::EPOCH).as_micros(),
                sequence: self.probes_sent,
            };
            let size = self.cbr.packet_size_for(self.probes_sent).max(HEADER_BYTES);
            ctx.send(source, target, size, header.encode());
            self.probes_sent += 1;
        }
    }

    /// One journal fragment capturing everything this block observed.
    fn journal_fragment(&self) -> String {
        format!(
            "{}[e={} B={} burst={} ho={} hit={} miss={} fo={} tx={} rx={}]",
            self.name,
            self.events,
            self.bytes,
            self.bursts,
            self.handovers,
            self.hits,
            self.misses,
            self.failovers,
            self.probes_sent,
            self.deliveries,
        )
    }
}

/// One generated tenant: every configured block, instantiated against the
/// tenant's own derived RNG streams, journalling per-epoch observations.
pub struct ScenarioTenant {
    name: String,
    blocks: Vec<BlockRuntime>,
    last_window_end: SimInstant,
    epochs: Vec<String>,
    latencies_ms: Vec<f64>,
}

impl ScenarioTenant {
    /// Generates the tenant at `index` of the configured scenario fleet.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when `config` carries no `[scenario]` table
    /// or the index is out of range.
    pub fn for_index(config: &TestbedConfig, index: u32) -> Result<Self> {
        let scenario = config
            .scenario
            .as_ref()
            .ok_or_else(|| Error::config("the configuration has no [scenario] table"))?;
        if index >= scenario.tenants {
            return Err(Error::config(format!(
                "scenario tenant index {index} out of range (fleet has {})",
                scenario.tenants
            )));
        }
        let name = format!("scenario-{index:04}");
        let blocks = scenario
            .blocks
            .iter()
            .enumerate()
            .map(|(i, spec)| BlockRuntime::new(spec.clone(), i, config))
            .collect();
        Ok(ScenarioTenant {
            name,
            blocks,
            last_window_end: SimInstant::EPOCH,
            epochs: Vec::new(),
            latencies_ms: Vec::new(),
        })
    }

    /// Generates the whole fleet, one tenant application per generated
    /// tenant, in tenant-id order (ready for `Testbed::run_fleet`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when `config` carries no `[scenario]`
    /// table.
    pub fn generate(config: &TestbedConfig) -> Result<Vec<Self>> {
        let scenario = config
            .scenario
            .as_ref()
            .ok_or_else(|| Error::config("the configuration has no [scenario] table"))?;
        (0..scenario.tenants).map(|i| Self::for_index(config, i)).collect()
    }

    /// The generated tenant's name (`scenario-<index>`), which seeds its
    /// derived RNG streams.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-epoch journal: one line per constellation update capturing
    /// every block's cumulative counters and the programme state. Two runs
    /// observed the same world exactly when their journals are
    /// bit-identical.
    pub fn journal(&self) -> &[String] {
        &self.epochs
    }

    /// One-way delivery latencies of every probe received, in order.
    pub fn latencies_ms(&self) -> &[f64] {
        &self.latencies_ms
    }

    /// Aggregate emissions accounted across all blocks (flow level).
    pub fn total_events(&self) -> u64 {
        self.blocks.iter().map(|b| b.events).sum()
    }

    /// Aggregate payload bytes accounted across all blocks.
    pub fn total_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.bytes).sum()
    }

    /// Probe messages delivered back to this tenant's machines.
    pub fn deliveries(&self) -> u64 {
        self.blocks.iter().map(|b| b.deliveries).sum()
    }

    /// Simulated users this tenant aggregates (the sum of block
    /// populations).
    pub fn users(&self) -> u64 {
        self.blocks.iter().map(|b| b.spec.population).sum()
    }
}

impl GuestApplication for ScenarioTenant {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        // Derive one independent stream per block. `derive` does not advance
        // the parent, so blocks neither perturb each other nor the tenant's
        // base stream — and the labels carry the tenant name, so every
        // tenant behaves differently while staying bit-reproducible.
        for block in &mut self.blocks {
            let label = format!("scenario.{}.{}", self.name, block.name);
            block.rng = Some(ctx.rng().derive(&label));
            block.source = ctx.ground_station(&block.source_name);
            block.sink = ctx.ground_station(&block.sink_name);
            block.fallback = ctx.ground_station(&block.fallback_name);
        }
        self.last_window_end = ctx.now();
    }

    fn on_constellation_update(&mut self, ctx: &mut AppContext<'_>) {
        let now = ctx.now();
        let t0 = self.last_window_end;
        self.last_window_end = now;
        for index in 0..self.blocks.len() {
            self.blocks[index].emit_window(index, t0, now, ctx);
        }
        let stats = ctx.database().programme_stats();
        let fragments: Vec<String> = self.blocks.iter().map(BlockRuntime::journal_fragment).collect();
        self.epochs.push(format!(
            "t={:?} stats={:?} {}",
            ctx.database().updated_at_seconds(),
            stats.map(|s| (s.epoch, s.pairs, s.delta_ops)),
            fragments.join(" "),
        ));
    }

    fn on_message(&mut self, message: &Packet, ctx: &mut AppContext<'_>) {
        let Some(header) = MessageHeader::decode(&message.payload) else {
            return;
        };
        let Some(block) = self.blocks.get_mut(header.origin as usize) else {
            return;
        };
        block.deliveries += 1;
        let sent = SimInstant::from_micros(header.sent_at_micros);
        self.latencies_ms
            .push(ctx.now().duration_since(sent).as_millis_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use celestial::config::ScenarioConfig;
    use celestial_constellation::{BoundingBox, GroundStation, Shell};
    use celestial_sgp4::WalkerShell;
    use celestial_types::geo::Geodetic;

    fn config(blocks: Vec<ScenarioBlock>, tenants: u32) -> TestbedConfig {
        TestbedConfig::builder()
            .seed(7)
            .update_interval_s(1.0)
            .duration_s(5.0)
            .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
            .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
            .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
            .bounding_box(BoundingBox::west_africa())
            .scenario(ScenarioConfig { tenants, blocks })
            .build()
            .expect("valid config")
    }

    #[test]
    fn generation_expands_every_tenant_with_every_block() {
        let blocks = vec![
            ScenarioBlock { population: 250, ..ScenarioBlock::default() },
            ScenarioBlock {
                kind: ScenarioBlockKind::Iot,
                population: 750,
                ..ScenarioBlock::default()
            },
        ];
        let config = config(blocks, 16);
        let fleet = ScenarioTenant::generate(&config).expect("generates");
        assert_eq!(fleet.len(), 16);
        assert_eq!(fleet[0].name(), "scenario-0000");
        assert_eq!(fleet[15].name(), "scenario-0015");
        for tenant in &fleet {
            assert_eq!(tenant.users(), 1_000);
            assert_eq!(tenant.blocks.len(), 2);
        }
        // Station roles resolve positionally: source → first, sink → last.
        assert_eq!(fleet[0].blocks[0].source_name, "accra");
        assert_eq!(fleet[0].blocks[0].sink_name, "abuja");
        // Out-of-range indexes and scenario-less configs are rejected.
        assert!(ScenarioTenant::for_index(&config, 16).is_err());
        let mut plain = config.clone();
        plain.scenario = None;
        assert!(ScenarioTenant::generate(&plain).is_err());
    }

    #[test]
    fn flow_accounting_scales_with_population_not_events() {
        // A million-user block accounts a million users' emissions but puts
        // only one probe per window on the wire.
        let blocks = vec![ScenarioBlock {
            population: 1_000_000,
            interval_ms: 1_000.0,
            ..ScenarioBlock::default()
        }];
        let config = config(blocks, 1);
        let mut tenant = ScenarioTenant::for_index(&config, 0).expect("generates");
        let flow = tenant.blocks[0].flow;
        assert_eq!(
            flow.events_between(SimInstant::EPOCH, SimInstant::from_millis(1_000)),
            1_000_000
        );
        // The byte account follows the exact CBR law at the aggregate index.
        let cbr = tenant.blocks[0].cbr;
        tenant.blocks[0].events = 12_345;
        tenant.blocks[0].bytes = cbr.cumulative_bytes(12_345);
        assert_eq!(tenant.total_bytes(), cbr.cumulative_bytes(12_345));
    }
}
