//! E12 (network): throughput of the netem queueing-discipline model and of
//! per-pair rule reprogramming, the operations the machine managers perform
//! on every constellation update and for every application packet.

use celestial_netem::packet::Packet;
use celestial_netem::qdisc::NetemQdisc;
use celestial_netem::TrafficControl;
use celestial_types::ids::NodeId;
use celestial_types::time::SimInstant;
use celestial_types::{Bandwidth, Latency};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_qdisc(c: &mut Criterion) {
    let mut group = c.benchmark_group("netem_qdisc");
    group.bench_function("process_packet", |b| {
        let mut qdisc = NetemQdisc::new(Latency::from_millis_f64(8.0), Bandwidth::from_gbps(10));
        let packet = Packet::new(NodeId::ground_station(0), NodeId::satellite(0, 1), 1_250);
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = 0u64;
        b.iter(|| {
            t += 20_000;
            qdisc.process(&packet, SimInstant::from_micros(t), &mut rng)
        });
    });
    group.finish();
}

fn bench_tc_reprogramming(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic_control");
    group.bench_function("reprogram_1000_pairs", |b| {
        let mut tc = TrafficControl::new();
        b.iter(|| {
            for i in 0..1000u32 {
                tc.set_link(
                    NodeId::ground_station(i % 10),
                    NodeId::satellite(0, i),
                    Latency::from_millis_f64(f64::from(i % 40)),
                    Bandwidth::from_gbps(10),
                );
            }
            tc.rule_count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_qdisc, bench_tc_reprogramming);
criterion_main!(benches);
