//! E12 (orbital mechanics): SGP4-class propagation throughput — the inner
//! loop of every constellation update (one propagation per satellite per
//! update).

use celestial_sgp4::{Propagator, WalkerShell};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_propagation(c: &mut Criterion) {
    let shell = WalkerShell::starlink_shell1();
    let propagators: Vec<Propagator> = shell
        .satellite_elements()
        .into_iter()
        .map(Propagator::new)
        .collect();

    let mut group = c.benchmark_group("sgp4");
    group.throughput(Throughput::Elements(propagators.len() as u64));
    group.bench_function("propagate_starlink_shell1_one_step", |b| {
        let mut minutes = 0.0;
        b.iter(|| {
            minutes += 1.0 / 30.0;
            propagators
                .iter()
                .map(|p| p.propagate_minutes(minutes).expect("propagation").position_eci.x)
                .sum::<f64>()
        });
    });
    group.finish();
}

fn bench_single_propagation(c: &mut Criterion) {
    let elements = WalkerShell::iridium().satellite_elements();
    let propagator = Propagator::new(elements[0].clone());
    c.bench_function("sgp4_single_satellite", |b| {
        let mut minutes = 0.0;
        b.iter(|| {
            minutes += 0.1;
            propagator.propagate_minutes(minutes).expect("propagation")
        });
    });
}

criterion_group!(benches, bench_propagation, bench_single_propagation);
criterion_main!(benches);
