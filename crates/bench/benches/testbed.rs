//! E12 (end to end): full testbed steps — how much wall-clock time one second
//! of emulated §4 workload costs, including constellation updates, machine
//! lifecycle, network shaping and application traffic.

use celestial::config::{HostConfig, TestbedConfig};
use celestial::testbed::Testbed;
use celestial_apps::meetup::{BridgeDeployment, MeetupConfig, MeetupExperiment};
use celestial_constellation::{BoundingBox, Shell};
use celestial_sgp4::WalkerShell;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn config(duration_s: f64) -> TestbedConfig {
    TestbedConfig::builder()
        .seed(1)
        .update_interval_s(2.0)
        .duration_s(duration_s)
        .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
        .ground_stations(MeetupConfig::ground_stations())
        .bounding_box(BoundingBox::west_africa())
        .hosts(vec![HostConfig::default(); 3])
        .build()
        .expect("valid configuration")
}

fn bench_testbed_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed");
    group.sample_size(10);
    group.bench_function("meetup_10s_satellite_bridge", |b| {
        b.iter_batched(
            || {
                (
                    Testbed::new(&config(10.0)).expect("testbed"),
                    MeetupExperiment::new(MeetupConfig::new(BridgeDeployment::Satellite)),
                )
            },
            |(mut testbed, mut app)| {
                testbed.run(&mut app).expect("run");
                app.all_latencies_ms().len()
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_testbed_construction(c: &mut Criterion) {
    c.bench_function("testbed_construction_starlink_shell1", |b| {
        let cfg = config(10.0);
        b.iter(|| Testbed::new(&cfg).expect("testbed"));
    });
}

criterion_group!(benches, bench_testbed_run, bench_testbed_construction);
criterion_main!(benches);
