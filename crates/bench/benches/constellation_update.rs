//! E10: constellation update time.
//!
//! The paper claims the Constellation Calculation completes "within one
//! second even on a standard laptop" for the full phase-I Starlink
//! constellation. This bench measures one full state computation (positions,
//! ISLs, ground links, graph construction) for the first shell and the full
//! five-shell constellation, plus the coordinator's per-pair programme.

use celestial::Coordinator;
use celestial_constellation::{BoundingBox, Constellation, GroundStation, Shell};
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::time::SimDuration;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn ground_stations() -> Vec<GroundStation> {
    vec![
        GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)),
        GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)),
        GroundStation::new("yaounde", Geodetic::new(3.848, 11.5021, 0.0)),
        GroundStation::new("johannesburg", Geodetic::new(-26.2041, 28.0473, 0.0)),
    ]
}

fn constellation(shells: usize) -> Constellation {
    Constellation::builder()
        .shells(
            WalkerShell::starlink_phase1()
                .into_iter()
                .take(shells)
                .map(Shell::from_walker),
        )
        .ground_stations(ground_stations())
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation")
}

fn bench_state_computation(c: &mut Criterion) {
    let mut group = c.benchmark_group("constellation_state");
    group.sample_size(10);
    for shells in [1usize, 5] {
        let constellation = constellation(shells);
        group.bench_function(format!("starlink_{shells}_shells"), |b| {
            let mut t = 0.0;
            b.iter(|| {
                t += 2.0;
                constellation.state_at(t).expect("state")
            });
        });
    }
    group.finish();
}

fn bench_coordinator_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("coordinator_update");
    group.sample_size(10);
    group.bench_function("update_and_programme_shell1", |b| {
        b.iter_batched(
            || Coordinator::new(constellation(1), SimDuration::from_secs(2)),
            |mut coordinator| {
                coordinator.update(0.0).expect("update");
                coordinator.network_programme().expect("programme")
            },
            BatchSize::SmallInput,
        );
    });
    // Steady state: the path engine's buffers are warm and each iteration is
    // one timestep advance plus the per-pair programme, as the running
    // testbed performs it.
    group.bench_function("steady_state_timestep_shell1", |b| {
        let mut coordinator = Coordinator::new(constellation(1), SimDuration::from_secs(2));
        coordinator.update(0.0).expect("update");
        let mut t = 0.0;
        b.iter(|| {
            t += 2.0;
            coordinator.update(t).expect("update");
            coordinator.network_programme().expect("programme")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_state_computation, bench_coordinator_update);
criterion_main!(benches);
