//! E11: shortest-path ablation — per-source Dijkstra vs. Floyd–Warshall vs.
//! the parallel/incremental [`PathEngine`].
//!
//! Celestial replaces SILLEO-SCNS's path computation with "more efficient
//! implementations of Dijkstra's algorithm and the Floyd–Warshall algorithm".
//! This bench compares the stateless algorithms on +GRID constellation
//! graphs of increasing size, the engine's parallel full solve and
//! incremental timestep re-solve, and the single-source case the coordinator
//! uses as the info-API fallback. The standalone `bench_paths` binary emits
//! the same comparison as `BENCH_paths.json` for the perf trajectory.

use celestial_constellation::{Constellation, GroundStation, PathAlgorithm, PathEngine, Shell};
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn graph_at(planes: u32, per_plane: u32, t: f64) -> celestial_constellation::NetworkGraph {
    let constellation = Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, planes, per_plane)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6, -0.19, 0.0)))
        .build()
        .expect("valid constellation");
    constellation.state_at(t).expect("state").graph().clone()
}

fn graph(planes: u32, per_plane: u32) -> celestial_constellation::NetworkGraph {
    graph_at(planes, per_plane, 0.0)
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_shortest_paths");
    group.sample_size(10);
    for (planes, per_plane) in [(6u32, 6u32), (10, 10), (16, 16)] {
        let g = graph(planes, per_plane);
        let nodes = g.node_count();
        group.bench_with_input(BenchmarkId::new("dijkstra", nodes), &g, |b, g| {
            b.iter(|| g.all_pairs_dijkstra());
        });
        group.bench_with_input(BenchmarkId::new("floyd_warshall", nodes), &g, |b, g| {
            b.iter(|| g.floyd_warshall());
        });
        group.bench_with_input(BenchmarkId::new("engine_parallel", nodes), &g, |b, g| {
            let mut engine = PathEngine::new(PathAlgorithm::Dijkstra);
            b.iter(|| {
                engine.solve(g);
                engine.last_solve().solved_sources
            });
        });
    }
    group.finish();
}

fn bench_incremental_timestep(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_timestep");
    group.sample_size(10);
    let g0 = graph_at(16, 16, 0.0);
    let g1 = graph_at(16, 16, 2.0);
    // Note: each iteration is a *pair* of solves (t0 and t2).
    group.bench_function("engine_solve_pair_t0_t2", |b| {
        let mut engine = PathEngine::new(PathAlgorithm::Incremental);
        b.iter(|| {
            engine.solve(&g0);
            engine.solve(&g1);
            engine.last_solve().solved_sources
        });
    });
    group.finish();
}

fn bench_single_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_source_dijkstra");
    let g = graph(72, 22);
    group.bench_function("starlink_shell1_from_ground_station", |b| {
        let source = g.node_count() - 1;
        b.iter(|| g.dijkstra(source));
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_incremental_timestep, bench_single_source);
criterion_main!(benches);
