//! E12 (machines): microVM lifecycle churn and snapshot diffing, the
//! per-update work of the machine managers and the coordinator.

use celestial_constellation::{BoundingBox, Constellation, ConstellationSnapshot, GroundStation, Shell};
use celestial_machines::{FirecrackerModel, Host, MicroVm};
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::ids::{HostId, MachineId, NodeId};
use celestial_types::resources::MachineResources;
use celestial_types::time::SimInstant;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_boot_suspend_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("machines");
    group.bench_function("boot_suspend_resume_100_microvms", |b| {
        b.iter_batched(
            || {
                let mut host = Host::n2_highcpu_32(HostId(0)).with_model(FirecrackerModel::default());
                for i in 0..100u64 {
                    host.place(MicroVm::new(
                        MachineId(i),
                        NodeId::satellite(0, i as u32),
                        MachineResources::paper_satellite(),
                    ))
                    .expect("place");
                }
                host
            },
            |mut host| {
                let machine_ids: Vec<MachineId> = host.machines().map(|m| m.id()).collect();
                for id in &machine_ids {
                    let vm = host.machine_mut(*id).expect("machine");
                    let ready = vm.boot(SimInstant::EPOCH).expect("boot");
                    vm.finish_boot(ready).expect("finish boot");
                    vm.suspend().expect("suspend");
                    vm.resume().expect("resume");
                }
                host.memory_utilization()
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_snapshot_diffing(c: &mut Criterion) {
    let constellation = Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::starlink_shell1()))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6, -0.19, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation");
    let s0 = ConstellationSnapshot::from_state(&constellation.state_at(0.0).expect("state"));
    let s1 = ConstellationSnapshot::from_state(&constellation.state_at(2.0).expect("state"));

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(20);
    group.bench_function("diff_starlink_shell1_2s_apart", |b| {
        b.iter(|| s0.diff(&s1));
    });
    group.bench_function("apply_diff", |b| {
        let diff = s0.diff(&s1);
        b.iter(|| s0.apply(&diff));
    });
    group.finish();
}

criterion_group!(benches, bench_boot_suspend_cycle, bench_snapshot_diffing);
criterion_main!(benches);
