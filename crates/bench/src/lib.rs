//! Shared helpers for the figure-regeneration binaries.
//!
//! Every binary in this crate regenerates one table or figure of the paper's
//! evaluation (the top-level `README.md` maps figures to binaries). They all
//! accept a `--quick` flag that shrinks the experiment (shorter duration,
//! fewer nodes) so the whole suite can double as an end-to-end smoke test,
//! a `--seed <n>` override, and an `--out <dir>` flag to write CSV/SVG
//! artifacts next to the printed output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use celestial::config::{HostConfig, TestbedConfig};
use celestial_apps::meetup::MeetupConfig;
use celestial_constellation::{BoundingBox, Shell};
use std::path::PathBuf;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct FigureOptions {
    /// Run a reduced version of the experiment.
    pub quick: bool,
    /// Directory to write CSV/SVG artifacts to (optional).
    pub out_dir: Option<PathBuf>,
    /// Override the random seed.
    pub seed: u64,
}

impl FigureOptions {
    /// Parses options from the process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_slice(&args)
    }

    /// Parses options from a slice of argument strings.
    pub fn from_slice(args: &[String]) -> Self {
        let mut options = FigureOptions {
            quick: false,
            out_dir: None,
            seed: 2022,
        };
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => options.quick = true,
                "--out" => {
                    if let Some(dir) = iter.next() {
                        options.out_dir = Some(PathBuf::from(dir));
                    }
                }
                "--seed" => {
                    if let Some(seed) = iter.next() {
                        options.seed = seed.parse().unwrap_or(options.seed);
                    }
                }
                _ => {}
            }
        }
        options
    }

    /// Writes an artifact file into the output directory, if one was given.
    pub fn write_artifact(&self, name: &str, contents: &str) {
        if let Some(dir) = &self.out_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(name);
            if std::fs::write(&path, contents).is_ok() {
                println!("# wrote {}", path.display());
            }
        }
    }
}

/// The testbed configuration of the §4 meetup evaluation: the two lowest
/// Starlink shells, the three West African clients plus the Johannesburg
/// datacenter, the West Africa bounding box and three 32-core hosts.
pub fn meetup_testbed_config(options: &FigureOptions) -> TestbedConfig {
    let shells: Vec<Shell> = if options.quick {
        MeetupConfig::shells().into_iter().take(1).collect()
    } else {
        MeetupConfig::shells()
    };
    TestbedConfig::builder()
        .seed(options.seed)
        .update_interval_s(2.0)
        .duration_s(if options.quick { 60.0 } else { 600.0 })
        .shells(shells)
        .ground_stations(MeetupConfig::ground_stations())
        .bounding_box(BoundingBox::west_africa())
        .hosts(vec![HostConfig::default(); 3])
        .build()
        .expect("valid meetup configuration")
}

/// The testbed configuration of the §5 DART case study: the Iridium shell,
/// the buoy/sink/warning-center ground stations and four 32-core hosts.
pub fn dart_testbed_config(
    options: &FigureOptions,
    app_config: &celestial_apps::DartConfig,
) -> TestbedConfig {
    TestbedConfig::builder()
        .seed(options.seed)
        .update_interval_s(5.0)
        .duration_s(if options.quick { 60.0 } else { 900.0 })
        .shell(celestial_apps::DartConfig::iridium_shell())
        .ground_stations(app_config.ground_stations())
        .bounding_box(BoundingBox::whole_earth())
        .hosts(vec![HostConfig::default(); 4])
        .build()
        .expect("valid DART configuration")
}

/// The DART application configuration matching `--quick`.
pub fn dart_app_config(
    options: &FigureOptions,
    deployment: celestial_apps::DartDeployment,
) -> celestial_apps::DartConfig {
    if options.quick {
        celestial_apps::DartConfig::reduced(deployment, 20, 40)
    } else {
        celestial_apps::DartConfig::new(deployment)
    }
}

/// Formats a series of `(x, y)` points as CSV with the given column names.
pub fn csv(points: &[(f64, f64)], x_name: &str, y_name: &str) -> String {
    let mut out = format!("{x_name},{y_name}\n");
    for (x, y) in points {
        out.push_str(&format!("{x:.6},{y:.6}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_flags() {
        let options = FigureOptions::from_slice(&[
            "--quick".to_owned(),
            "--seed".to_owned(),
            "7".to_owned(),
            "--out".to_owned(),
            "/tmp/figs".to_owned(),
        ]);
        assert!(options.quick);
        assert_eq!(options.seed, 7);
        assert_eq!(options.out_dir.as_deref(), Some(std::path::Path::new("/tmp/figs")));
    }

    #[test]
    fn quick_configs_are_smaller() {
        let quick = FigureOptions::from_slice(&["--quick".to_owned()]);
        let full = FigureOptions::from_slice(&[]);
        let quick_config = meetup_testbed_config(&quick);
        let full_config = meetup_testbed_config(&full);
        assert!(quick_config.duration_s < full_config.duration_s);
        assert!(quick_config.shells.len() <= full_config.shells.len());
        let dart_quick = dart_app_config(&quick, celestial_apps::DartDeployment::Central);
        assert!(dart_quick.buoy_count < 100);
    }

    #[test]
    fn csv_formatting() {
        let text = csv(&[(1.0, 2.0), (3.0, 4.5)], "t", "latency");
        assert!(text.starts_with("t,latency\n"));
        assert_eq!(text.lines().count(), 3);
    }
}
