//! Network-programming benchmark: emits `BENCH_netprog.json` for the perf
//! trajectory.
//!
//! Measures, on a +GRID constellation with a bounding box, how many pair
//! programmings a steady-state constellation update performs under two
//! policies:
//!
//! * **full** — the pre-delta behaviour: every programmed pair is rewritten
//!   on every update (the per-update cost is the full programme size),
//! * **delta** — the [`celestial::netprog`] engine: only pairs whose
//!   quantized latency or bottleneck bandwidth changed are touched
//!   (`added + changed + removed` operations).
//!
//! The counts are deterministic (they depend only on orbital mechanics and
//! the 0.1 ms quantization), so the reported ratio is hardware-independent.
//!
//! ```console
//! $ cargo run --release -p celestial-bench --bin bench_netprog            # default
//! $ cargo run --release -p celestial-bench --bin bench_netprog -- --quick # CI smoke
//! ```
//!
//! Flags: `--quick` (small graph, fewer updates), `--planes N`,
//! `--satellites-per-plane N`, `--updates N`, `--interval-s S`,
//! `--out FILE` (default `BENCH_netprog.json`).

use celestial::Coordinator;
use celestial_constellation::{BoundingBox, Constellation, GroundStation, Shell};
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::time::SimDuration;
use serde_json::{json, Value};
use std::time::Instant;

struct Options {
    planes: u32,
    per_plane: u32,
    updates: u32,
    interval_s: f64,
    out: String,
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The default mirrors bench_paths' 1024-satellite +GRID; one-second
    // updates are the steady-state cadence of the paper's experiments.
    let mut options = Options {
        planes: 32,
        per_plane: 32,
        updates: 10,
        interval_s: 1.0,
        out: "BENCH_netprog.json".to_owned(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {
                options.planes = 12;
                options.per_plane = 16;
                options.updates = 5;
            }
            "--planes" => {
                if let Some(v) = iter.next() {
                    options.planes = v.parse().expect("--planes takes a number");
                }
            }
            "--satellites-per-plane" => {
                if let Some(v) = iter.next() {
                    options.per_plane = v.parse().expect("--satellites-per-plane takes a number");
                }
            }
            "--updates" => {
                if let Some(v) = iter.next() {
                    options.updates = v.parse().expect("--updates takes a number");
                }
            }
            "--interval-s" => {
                if let Some(v) = iter.next() {
                    options.interval_s = v.parse().expect("--interval-s takes seconds");
                }
            }
            "--out" => {
                if let Some(v) = iter.next() {
                    options.out = v.clone();
                }
            }
            other => eprintln!("ignoring unknown flag {other:?}"),
        }
    }
    options
}

fn main() {
    let options = parse_options();
    let constellation = Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(
            550.0,
            53.0,
            options.planes,
            options.per_plane,
        )))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation");
    let nodes = constellation.node_count();
    let mut coordinator = Coordinator::new(
        constellation,
        SimDuration::from_secs_f64(options.interval_s),
    );

    // Warm-up epoch: every reachable pair is added; steady state starts
    // after it.
    coordinator.update(0.0).expect("first update");
    let initial_pairs = coordinator.programme_pair_count();
    println!(
        "# bench_netprog: {nodes} nodes (+GRID {}x{}), {} initial pairs, {} steady-state updates at {} s",
        options.planes, options.per_plane, initial_pairs, options.updates, options.interval_s
    );

    let mut results: Vec<Value> = Vec::new();
    let mut full_ops: u64 = 0;
    let mut delta_ops: u64 = 0;
    for update in 1..=options.updates {
        let t = f64::from(update) * options.interval_s;
        let start = Instant::now();
        coordinator.update(t).expect("steady-state update");
        let update_ns = start.elapsed().as_nanos() as u64;
        let delta = coordinator.programme_delta();
        let pairs = coordinator.programme_pair_count();
        // The full-rebuild policy rewrites every pair; the delta policy
        // touches only the change set.
        full_ops += pairs as u64;
        delta_ops += delta.op_count() as u64;
        println!(
            "update {update:>3}: {pairs:>6} pairs, delta {:>5} ops ({} added, {} changed, {} removed)",
            delta.op_count(),
            delta.added.len(),
            delta.changed.len(),
            delta.removed.len()
        );
        results.push(json!({
            "update": update,
            "t_s": t,
            "pairs": pairs,
            "delta_ops": delta.op_count(),
            "added": delta.added.len(),
            "changed": delta.changed.len(),
            "removed": delta.removed.len(),
            "update_ns": update_ns,
        }));
    }

    // Guard against a degenerate zero-change window: the ratio is computed
    // against at least one operation.
    let ratio = full_ops as f64 / (delta_ops.max(1)) as f64;
    println!(
        "# full rebuild: {full_ops} pair programmings, delta engine: {delta_ops} ({ratio:.1}x fewer)"
    );

    let document = json!({
        "bench": "netprog",
        "nodes": nodes,
        "planes": options.planes,
        "satellites_per_plane": options.per_plane,
        "updates": options.updates,
        "interval_s": options.interval_s,
        "initial_pairs": initial_pairs,
        "full_pair_programmings": full_ops,
        "delta_pair_programmings": delta_ops,
        "ratio": ratio,
        "results": results,
    });
    let body = serde_json::to_string(&document).expect("serializable document");
    std::fs::write(&options.out, &body).expect("write BENCH_netprog.json");
    println!("# wrote {}", options.out);
}
