//! Figure 5: measured vs. expected end-to-end latency from Abuja to Accra
//! over the Johannesburg cloud bridge (1 s rolling median).

use celestial::testbed::Testbed;
use celestial_apps::meetup::{BridgeDeployment, MeetupConfig, MeetupExperiment};
use celestial_bench::{csv, meetup_testbed_config, FigureOptions};

fn main() {
    let options = FigureOptions::from_args();
    let config = meetup_testbed_config(&options);
    let mut testbed = Testbed::new(&config).expect("testbed");
    let mut app = MeetupExperiment::new(MeetupConfig::new(BridgeDeployment::Cloud));
    testbed.run(&mut app).expect("experiment run");

    // Abuja (client index 1) to Accra (client index 0).
    let measured = app
        .measured_series(1, 0)
        .expect("measured series")
        .rolling_median(1.0);
    let expected = app.expected_series(1, 0).expect("expected series");

    println!("# Figure 5: measured vs expected latency, Abuja -> Accra via cloud bridge");
    println!("series,points,median_ms,mean_ms");
    for (name, series) in [("measured", &measured), ("expected", expected)] {
        let stats = celestial_sim::metrics::summarize(&series.values());
        println!("{name},{},{:.2},{:.2}", series.len(), stats.median, stats.mean);
    }
    let measured_median = celestial_sim::metrics::summarize(&measured.values()).median;
    let expected_median = celestial_sim::metrics::summarize(&expected.values()).median;
    println!(
        "median_difference_ms,{:.3}",
        (measured_median - expected_median).abs()
    );
    println!("# expectation: both curves follow the same trend; the difference stays within the processing jitter");

    options.write_artifact(
        "fig05_measured.csv",
        &csv(measured.points(), "t_s", "latency_ms"),
    );
    options.write_artifact(
        "fig05_expected.csv",
        &csv(expected.points(), "t_s", "latency_ms"),
    );
}
