//! Epoch-engine benchmark: emits `BENCH_epoch.json` for the perf trajectory.
//!
//! Measures the wall-clock cost per constellation epoch under three
//! configurations of the epoch engine on the default 32×32 +GRID:
//!
//! * **serial** — the seed behaviour: single-threaded per-satellite
//!   propagation, epoch computed inline at the boundary while the event loop
//!   stalls,
//! * **batch** — batch propagation fanned out over worker threads into
//!   retained buffers ([`celestial_constellation::StateBuffers`]), still
//!   computed inline,
//! * **pipelined** — the full [`celestial::pipeline::EpochPipeline`]: the
//!   next epoch is precomputed on a background worker while the event loop
//!   plays the current epoch's events.
//!
//! Between epoch boundaries the benchmark *plays* the epoch by sleeping for
//! a playout window calibrated to the serial compute time — the honest model
//! of the paper's testbed, where emulation fills the (real-time) update
//! interval. The headline metric is the **boundary stall**: how long the
//! event loop is blocked at each epoch handover. A synchronous engine stalls
//! for the full epoch computation; the pipeline stalls only for the channel
//! receive of an already finished bundle — that stall ratio is the
//! epoch-throughput improvement a saturated event loop observes, and CI
//! asserts it stays ≥ 1.5× for the pipelined engine (in practice it is far
//! higher). Wall-clock ms/epoch (including playout) is reported alongside
//! for context.
//!
//! ```console
//! $ cargo run --release -p celestial-bench --bin bench_epoch            # default
//! $ cargo run --release -p celestial-bench --bin bench_epoch -- --quick # CI smoke
//! ```
//!
//! Flags: `--quick` (small graph, fewer epochs), `--planes N`,
//! `--satellites-per-plane N`, `--epochs N`, `--interval-s S`,
//! `--out FILE` (default `BENCH_epoch.json`).

use celestial::pipeline::{EpochCompute, EpochPipeline, PipelineMode};
use celestial_constellation::{BoundingBox, Constellation, GroundStation, Shell};
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::time::SimDuration;
use serde_json::{json, Value};
use std::time::{Duration, Instant};

struct Options {
    planes: u32,
    per_plane: u32,
    epochs: u32,
    interval_s: f64,
    out: String,
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The default mirrors bench_paths/bench_netprog: a 1024-satellite +GRID
    // at the steady-state one-second update cadence.
    let mut options = Options {
        planes: 32,
        per_plane: 32,
        epochs: 20,
        interval_s: 1.0,
        out: "BENCH_epoch.json".to_owned(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {
                options.planes = 12;
                options.per_plane = 16;
                options.epochs = 10;
            }
            "--planes" => {
                if let Some(v) = iter.next() {
                    options.planes = v.parse().expect("--planes takes a number");
                }
            }
            "--satellites-per-plane" => {
                if let Some(v) = iter.next() {
                    options.per_plane = v.parse().expect("--satellites-per-plane takes a number");
                }
            }
            "--epochs" => {
                if let Some(v) = iter.next() {
                    options.epochs = v.parse().expect("--epochs takes a number");
                }
            }
            "--interval-s" => {
                if let Some(v) = iter.next() {
                    options.interval_s = v.parse().expect("--interval-s takes seconds");
                }
            }
            "--out" => {
                if let Some(v) = iter.next() {
                    options.out = v.clone();
                }
            }
            other => eprintln!("ignoring unknown flag {other:?}"),
        }
    }
    options
}

fn constellation(options: &Options) -> Constellation {
    Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(
            550.0,
            53.0,
            options.planes,
            options.per_plane,
        )))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation")
}

/// Runs `epochs` epoch boundaries at the configured cadence, sleeping for
/// `playout` between boundaries to model the event loop playing the epoch.
/// Returns (total wall ms, mean boundary-wait ms).
fn run_epochs(
    mut pipeline: EpochPipeline,
    options: &Options,
    playout: Duration,
) -> (f64, f64) {
    let started = Instant::now();
    for epoch in 0..options.epochs {
        let t = f64::from(epoch) * options.interval_s;
        let bundle = pipeline.advance(t).expect("epoch computation");
        pipeline.recycle(bundle);
        std::thread::sleep(playout);
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let wait_ms = pipeline.stats().total_wait_ns as f64 / 1e6 / f64::from(options.epochs);
    (total_ms, wait_ms)
}

fn main() {
    let options = parse_options();
    let nodes = constellation(&options).node_count();

    // Calibrate the playout window: the steady-state compute time of the
    // serial seed path (a few warm-up epochs, inline, no sleep). The paper's
    // argument is exactly that emulation work of this order fills the
    // interval while the next epoch computes.
    let mut calibrate = EpochCompute::with_threads(constellation(&options), 1);
    let mut serial_compute_ms = 0.0;
    let calibration_epochs = 5u32;
    for epoch in 0..=calibration_epochs {
        let t = f64::from(epoch) * options.interval_s;
        let started = Instant::now();
        calibrate.compute(t).expect("calibration epoch");
        // Skip the first epoch: it pays one-off allocation + full solve.
        if epoch > 0 {
            serial_compute_ms += started.elapsed().as_secs_f64() * 1e3;
        }
    }
    serial_compute_ms /= f64::from(calibration_epochs);
    // The playout only needs to give the background worker comfortable wall
    // time to finish the precompute; its exact length cancels out of the
    // stall metric. 1.5× the serial compute, floored at 2 ms so sleep
    // granularity never starves the worker.
    let playout = Duration::from_secs_f64((serial_compute_ms * 1.5 / 1e3).max(0.002));
    let playout_ms = playout.as_secs_f64() * 1e3;
    println!(
        "# bench_epoch: {nodes} nodes (+GRID {}x{}), {} epochs at {} s, \
         serial compute {serial_compute_ms:.2} ms, playout {playout_ms:.2} ms",
        options.planes, options.per_plane, options.epochs, options.interval_s
    );

    let interval = SimDuration::from_secs_f64(options.interval_s);
    let configs: [(&str, Box<dyn Fn() -> EpochPipeline>); 3] = [
        (
            "serial",
            Box::new(|| {
                EpochPipeline::new(
                    EpochCompute::with_threads(constellation(&options), 1),
                    PipelineMode::Synchronous,
                    interval,
                )
            }),
        ),
        (
            "batch",
            Box::new(|| {
                EpochPipeline::new(
                    EpochCompute::new(constellation(&options)),
                    PipelineMode::Synchronous,
                    interval,
                )
            }),
        ),
        (
            "pipelined",
            Box::new(|| {
                EpochPipeline::new(
                    EpochCompute::new(constellation(&options)),
                    PipelineMode::Pipelined,
                    interval,
                )
            }),
        ),
    ];

    let mut results: Vec<Value> = Vec::new();
    let mut stall_ms = [0.0f64; 3];
    for (index, (name, build)) in configs.iter().enumerate() {
        let (total_ms, wait_ms) = run_epochs(build(), &options, playout);
        let per_epoch = total_ms / f64::from(options.epochs);
        stall_ms[index] = wait_ms;
        println!(
            "{name:>9}: boundary stall {wait_ms:8.3} ms/epoch (wall {per_epoch:.3} ms/epoch incl. playout)"
        );
        results.push(json!({
            "config": name,
            "boundary_stall_ms": wait_ms,
            "ms_per_epoch": per_epoch,
            "total_ms": total_ms,
        }));
    }

    // The stall is what bounds epoch throughput once emulation fills the
    // update interval: a saturated event loop completes an epoch every
    // `playout + stall`, with `playout` fixed by the experiment.
    let speedup_batch = stall_ms[0] / stall_ms[1].max(1e-6);
    let speedup_pipelined = stall_ms[0] / stall_ms[2].max(1e-6);
    println!(
        "# boundary-stall speedup over serial: batch {speedup_batch:.2}x, pipelined {speedup_pipelined:.2}x"
    );

    let document = json!({
        "bench": "epoch",
        "nodes": nodes,
        "planes": options.planes,
        "satellites_per_plane": options.per_plane,
        "epochs": options.epochs,
        "interval_s": options.interval_s,
        "serial_compute_ms": serial_compute_ms,
        "playout_ms": playout_ms,
        "results": results,
        "speedup_batch": speedup_batch,
        "speedup_pipelined": speedup_pipelined,
    });
    let body = serde_json::to_string(&document).expect("serializable document");
    std::fs::write(&options.out, &body).expect("write BENCH_epoch.json");
    println!("# wrote {}", options.out);
}
