//! Figure 6: measured end-to-end latency from Yaoundé to Abuja over the
//! cloud bridge across three repetitions of the experiment.

use celestial::testbed::Testbed;
use celestial_apps::meetup::{BridgeDeployment, MeetupConfig, MeetupExperiment};
use celestial_bench::{csv, meetup_testbed_config, FigureOptions};

fn main() {
    let options = FigureOptions::from_args();
    println!("# Figure 6: reproducibility across three repetitions, Yaounde -> Abuja via cloud bridge");
    println!("run,samples,median_ms,mean_ms,p95_ms");

    let mut medians = Vec::new();
    for run in 1..=3u64 {
        let mut run_options = options.clone();
        // Each repetition uses its own seed, as each real run would see its
        // own measurement noise, while the constellation evolution (driven by
        // simulated time) is identical.
        run_options.seed = options.seed + run;
        let config = meetup_testbed_config(&run_options);
        let mut testbed = Testbed::new(&config).expect("testbed");
        let mut app = MeetupExperiment::new(MeetupConfig::new(BridgeDeployment::Cloud));
        testbed.run(&mut app).expect("experiment run");

        // Yaoundé (index 2) to Abuja (index 1).
        let series = app
            .measured_series(2, 1)
            .expect("measured series")
            .rolling_median(1.0);
        let stats = celestial_sim::metrics::summarize(&series.values());
        println!(
            "{run},{},{:.2},{:.2},{:.2}",
            stats.count, stats.median, stats.mean, stats.p95
        );
        medians.push(stats.median);
        options.write_artifact(
            &format!("fig06_run{run}.csv"),
            &csv(series.points(), "t_s", "latency_ms"),
        );
    }
    let spread = medians.iter().cloned().fold(f64::MIN, f64::max)
        - medians.iter().cloned().fold(f64::MAX, f64::min);
    println!("median_spread_ms,{spread:.3}");
    println!("# expectation: all three runs follow the same trend (small spread of the medians)");
}
