//! Figure 4: cumulative end-to-end latency distributions per client pair,
//! satellite bridge vs. cloud bridge.
//!
//! Runs the §4 meetup experiment twice — once with the video bridge on the
//! Johannesburg datacenter, once with the tracking service selecting the
//! optimal satellite — and prints the latency CDF for each of the three
//! client pairs, together with the fraction of samples below the paper's
//! 16 ms (satellite) and 46 ms (cloud) reference lines.

use celestial::testbed::Testbed;
use celestial_apps::meetup::{BridgeDeployment, MeetupConfig, MeetupExperiment};
use celestial_bench::{csv, meetup_testbed_config, FigureOptions};

fn run(deployment: BridgeDeployment, options: &FigureOptions) -> MeetupExperiment {
    let config = meetup_testbed_config(options);
    let mut testbed = Testbed::new(&config).expect("testbed");
    let mut app = MeetupExperiment::new(MeetupConfig::new(deployment));
    testbed.run(&mut app).expect("experiment run");
    app
}

fn main() {
    let options = FigureOptions::from_args();
    println!("# Figure 4: end-to-end latency CDFs per client pair");
    let pairs = [(0usize, 1usize, "accra-abuja"), (0, 2, "accra-yaounde"), (1, 2, "abuja-yaounde")];

    for (label, deployment) in [
        ("satellite", BridgeDeployment::Satellite),
        ("cloud", BridgeDeployment::Cloud),
    ] {
        let app = run(deployment, &options);
        for (a, b, pair_name) in pairs {
            // Both directions of the pair, as in the paper's per-pair plots.
            let mut samples = Vec::new();
            for (from, to) in [(a, b), (b, a)] {
                if let Some(recorder) = app.pair_latencies(from, to) {
                    samples.extend_from_slice(recorder.samples_ms());
                }
            }
            let stats = celestial_sim::metrics::summarize(&samples);
            let cdf = celestial_sim::metrics::Cdf::from_samples(&samples);
            let below_16 = cdf.probability_at(16.0);
            let below_46 = cdf.probability_at(46.0);
            println!(
                "{label},{pair_name},samples={},median_ms={:.2},p95_ms={:.2},below_16ms={:.3},below_46ms={:.3}",
                stats.count, stats.median, stats.p95, below_16, below_46
            );
            options.write_artifact(
                &format!("fig04_{label}_{pair_name}.csv"),
                &csv(cdf.points(), "latency_ms", "cumulative_probability"),
            );
        }
    }
    println!("# expectation: satellite bridge stays below ~16 ms and cloud around ~46 ms for >=80% of samples");
}
