//! Figures 9 and 10: the DART scenario topology on the Iridium constellation.
//!
//! Builds the Iridium shell (66 satellites, 6 planes, 780 km, polar orbit,
//! 180° arc of ascending nodes) together with the 100 buoys, 200 sinks and
//! the Pacific Tsunami Warning Center, prints the seam property the paper
//! highlights (no ISLs between the first and last plane) and renders the map.

use celestial_apps::{DartConfig, DartDeployment};
use celestial_bench::FigureOptions;
use celestial_constellation::animation::{render_summary, render_svg, RenderOptions};
use celestial_constellation::{Constellation, LinkKind};
use celestial_bench::dart_app_config;

fn main() {
    let options = FigureOptions::from_args();
    let app_config = dart_app_config(&options, DartDeployment::Central);
    let shell = DartConfig::iridium_shell();
    let constellation = Constellation::builder()
        .shell(shell.clone())
        .ground_stations(app_config.ground_stations())
        .build()
        .expect("valid constellation");
    let state = constellation.state_at(0.0).expect("constellation state");

    println!("# Figure 10: Iridium constellation with DART ground stations");
    println!("{}", render_summary(&state));
    println!("satellites,{}", shell.satellite_count());
    println!("planes,{}", shell.walker.planes);
    println!("arc_of_ascending_nodes_deg,{}", shell.walker.arc_of_ascending_nodes_deg);
    println!("ground_stations,{}", app_config.ground_stations().len());

    // The seam: no ISLs between plane 0 and plane 5.
    let per_plane = shell.walker.satellites_per_plane;
    let seam_links = state
        .links
        .iter()
        .filter(|l| l.kind == LinkKind::Isl)
        .filter(|l| {
            let (Some(a), Some(b)) = (l.a.as_satellite(), l.b.as_satellite()) else {
                return false;
            };
            let pa = a.index / per_plane;
            let pb = b.index / per_plane;
            (pa == 0 && pb == shell.walker.planes - 1) || (pb == 0 && pa == shell.walker.planes - 1)
        })
        .count();
    println!("isls_between_first_and_last_plane,{seam_links}");
    println!("# expectation: 0 ISLs across the seam — satellites of the first and last plane move in opposite directions");

    let svg = render_svg(&state, &RenderOptions::default());
    options.write_artifact("fig10_iridium.svg", &svg);
}
