//! Chaos soak benchmark: emits `BENCH_chaos.json` for the chaos engine's
//! long-horizon guarantees (`docs/CHAOS.md`).
//!
//! Runs a full testbed — sharded hosts, pipelined epoch engine, the chaos
//! engine enabled — for a simulated day at one-second epochs, with a
//! journalling guest application pinging between the two ground stations.
//! Three gates must hold for the soak to pass (the process exits non-zero
//! otherwise, so CI can gate on it directly):
//!
//! 1. **Flat growth** — journal bytes and heap allocations per block stay
//!    flat after warm-up (`celestial::invariants::SoakMeter`). A counting
//!    global allocator provides the allocation counts.
//! 2. **No uncapped pairs** — the final network programme contains no
//!    `Bandwidth::INFINITY` entry (`check_no_uncapped`).
//! 3. **Convergence** — the final programme is bit-identical to a fault-free
//!    reference run of the same configuration (`programme_divergence`);
//!    chaos windows end at least two epochs before the horizon, so the
//!    programme must have converged.
//!
//! ```console
//! $ cargo run --release -p celestial-bench --bin bench_chaos             # 24 h soak
//! $ cargo run --release -p celestial-bench --bin bench_chaos -- --quick  # CI smoke
//! ```
//!
//! Flags: `--quick` (10-simulated-minute smoke), `--duration-s S`,
//! `--block-s S`, `--seed N`, `--shards N`, `--synchronous`,
//! `--out FILE` (default `BENCH_chaos.json`).

use celestial::config::{ChaosConfig, TestbedConfig};
use celestial::invariants::{check_no_uncapped, programme_divergence, SoakMeter};
use celestial::pipeline::PipelineMode;
use celestial::testbed::{AppContext, GuestApplication, Testbed};
use celestial_constellation::{BoundingBox, GroundStation, Shell};
use celestial_netem::Packet;
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::ids::NodeId;
use celestial_types::time::{SimDuration, SimInstant};
use serde_json::{json, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A pass-through allocator that counts allocation events, so the soak can
/// gate on flat allocation counts per block. Reallocation counts as one
/// event; frees are not counted (growth is what leaks look like).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

struct Options {
    duration_s: f64,
    block_s: u64,
    warmup_blocks: usize,
    tolerance: f64,
    seed: u64,
    shards: u32,
    mode: PipelineMode,
    out: String,
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = Options {
        duration_s: 86_400.0,
        block_s: 3_600,
        warmup_blocks: 2,
        tolerance: 2.0,
        seed: 11,
        shards: 4,
        mode: PipelineMode::Pipelined,
        out: "BENCH_chaos.json".to_owned(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {
                options.duration_s = 600.0;
                options.block_s = 60;
            }
            "--duration-s" => {
                if let Some(v) = iter.next() {
                    options.duration_s = v.parse().expect("--duration-s takes seconds");
                }
            }
            "--block-s" => {
                if let Some(v) = iter.next() {
                    options.block_s = v.parse().expect("--block-s takes seconds");
                }
            }
            "--seed" => {
                if let Some(v) = iter.next() {
                    options.seed = v.parse().expect("--seed takes a number");
                }
            }
            "--shards" => {
                if let Some(v) = iter.next() {
                    options.shards = v.parse().expect("--shards takes a number");
                }
            }
            "--synchronous" => options.mode = PipelineMode::Synchronous,
            "--out" => {
                if let Some(v) = iter.next() {
                    options.out = v.clone();
                }
            }
            other => eprintln!("ignoring unknown flag {other:?}"),
        }
    }
    options
}

fn config(options: &Options, chaos: Option<ChaosConfig>) -> TestbedConfig {
    let mut builder = TestbedConfig::builder()
        .seed(options.seed)
        .update_interval_s(1.0)
        .duration_s(options.duration_s)
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, 12, 16)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .pipeline(options.mode)
        .shards(options.shards);
    if let Some(chaos) = chaos {
        builder = builder.chaos(chaos);
    }
    builder.build().expect("valid soak config")
}

/// Journalling ping application: one ping and one journal line per simulated
/// second, plus one `(journal growth, allocation growth)` sample per block.
struct SoakApp {
    accra: Option<NodeId>,
    abuja: Option<NodeId>,
    block_s: u64,
    journal: String,
    sent_at: BTreeMap<u64, SimInstant>,
    next_seq: u64,
    rtts: u64,
    last_rtt_ms: f64,
    samples: Vec<(u64, u64)>,
    last_journal_bytes: u64,
    last_allocations: u64,
}

impl SoakApp {
    fn new(block_s: u64) -> Self {
        SoakApp {
            accra: None,
            abuja: None,
            block_s,
            journal: String::new(),
            sent_at: BTreeMap::new(),
            next_seq: 0,
            rtts: 0,
            last_rtt_ms: f64::NAN,
            samples: Vec::new(),
            last_journal_bytes: 0,
            last_allocations: 0,
        }
    }

    fn send_ping(&mut self, ctx: &mut AppContext<'_>) {
        let (Some(a), Some(b)) = (self.accra, self.abuja) else { return };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent_at.insert(seq, ctx.now());
        // Drop in-flight records for pings lost to chaos, so the map stays
        // bounded over the full day.
        self.sent_at.retain(|&s, _| seq.saturating_sub(s) < 64);
        ctx.send(a, b, 1_250, seq.to_le_bytes().to_vec());
    }
}

impl GuestApplication for SoakApp {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.accra = ctx.ground_station("accra");
        self.abuja = ctx.ground_station("abuja");
        self.send_ping(ctx);
        ctx.set_timer(SimDuration::from_secs(1), 0);
        self.last_journal_bytes = self.journal.len() as u64;
        self.last_allocations = allocations();
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut AppContext<'_>) {
        self.send_ping(ctx);
        let now = ctx.now();
        let (accra_up, abuja_up) = (
            self.accra.is_some_and(|n| ctx.is_running(n)),
            self.abuja.is_some_and(|n| ctx.is_running(n)),
        );
        self.journal.push_str(&format!(
            "t={:?} pings={} rtts={} last_rtt_ms={:.3} accra_up={accra_up} abuja_up={abuja_up}\n",
            now, self.next_seq, self.rtts, self.last_rtt_ms,
        ));
        let seconds = now.as_micros() / 1_000_000;
        if seconds > 0 && seconds % self.block_s == 0 {
            let journal_bytes = self.journal.len() as u64;
            let allocs = allocations();
            self.samples.push((
                journal_bytes - self.last_journal_bytes,
                allocs - self.last_allocations,
            ));
            self.last_journal_bytes = journal_bytes;
            self.last_allocations = allocs;
        }
        ctx.set_timer(SimDuration::from_secs(1), 0);
    }

    fn on_message(&mut self, message: &Packet, ctx: &mut AppContext<'_>) {
        if message.payload.len() < 8 {
            return;
        }
        let seq = u64::from_le_bytes(message.payload[..8].try_into().unwrap());
        if let Some(sent) = self.sent_at.remove(&seq) {
            self.rtts += 1;
            self.last_rtt_ms = (ctx.now() - sent).as_secs_f64() * 1_000.0;
        }
    }
}

/// Fault-free reference application: nothing to do, the reference run only
/// exists for its final network programme.
struct Quiet;

impl GuestApplication for Quiet {}

fn main() {
    let options = parse_options();
    println!(
        "# bench_chaos: {} s simulated at 1 s epochs, {} s blocks, seed {}, {} shards, {:?}",
        options.duration_s, options.block_s, options.seed, options.shards, options.mode
    );

    // Chaos run.
    let chaos_config = config(&options, Some(ChaosConfig::default()));
    let mut testbed = Testbed::new(&chaos_config).expect("chaos testbed");
    let chaos_events = testbed.chaos_events();
    let mut app = SoakApp::new(options.block_s);
    let started = Instant::now();
    testbed.run(&mut app).expect("chaos soak run");
    let chaos_wall_s = started.elapsed().as_secs_f64();
    let chaos_programme = testbed.coordinator().network_programme().expect("programme");
    println!(
        "# chaos run: {:.1} s wall, {} chaos events, {} pings, {} rtts, journal {} B",
        chaos_wall_s,
        chaos_events,
        app.next_seq,
        app.rtts,
        app.journal.len(),
    );

    // Fault-free reference run for the convergence gate.
    let reference_config = config(&options, None);
    let mut reference = Testbed::new(&reference_config).expect("reference testbed");
    let started = Instant::now();
    reference.run(&mut Quiet).expect("reference run");
    let reference_wall_s = started.elapsed().as_secs_f64();
    let reference_programme = reference.coordinator().network_programme().expect("programme");

    // Gates.
    let mut meter = SoakMeter::new();
    for &(journal, allocs) in &app.samples {
        meter.record_block(journal, allocs);
    }
    let flat = meter.verdict(options.warmup_blocks, options.tolerance);
    let uncapped = check_no_uncapped(&chaos_programme);
    let divergence = programme_divergence(&reference_programme, &chaos_programme);
    let failed_recoveries = testbed.failed_recoveries();

    let mut failures: Vec<String> = Vec::new();
    if let Err(violations) = &flat {
        failures.extend(violations.iter().cloned());
    }
    failures.extend(uncapped.iter().cloned());
    failures.extend(divergence.iter().cloned());
    if failed_recoveries > 0 {
        failures.push(format!("{failed_recoveries} recoveries failed"));
    }

    let blocks: Vec<Value> = app
        .samples
        .iter()
        .enumerate()
        .map(|(i, &(journal, allocs))| {
            json!({"block": i, "journal_bytes": journal, "allocations": allocs})
        })
        .collect();
    let document = json!({
        "bench": "chaos",
        "duration_s": options.duration_s,
        "interval_s": 1.0,
        "block_s": options.block_s,
        "warmup_blocks": options.warmup_blocks,
        "tolerance": options.tolerance,
        "seed": options.seed,
        "shards": options.shards,
        "pipelined": options.mode == PipelineMode::Pipelined,
        "chaos_events": chaos_events,
        "ignored_faults": testbed.ignored_faults(),
        "failed_recoveries": failed_recoveries,
        "pings": app.next_seq,
        "rtts": app.rtts,
        "journal_bytes": app.journal.len(),
        "programme_pairs": chaos_programme.len(),
        "blocks": blocks,
        "flat": flat.is_ok(),
        "uncapped_pairs": uncapped.len(),
        "converged": divergence.is_empty(),
        "failures": failures,
        "chaos_wall_s": chaos_wall_s,
        "reference_wall_s": reference_wall_s,
    });
    let body = serde_json::to_string(&document).expect("serializable document");
    std::fs::write(&options.out, &body).expect("write BENCH_chaos.json");
    println!("# wrote {}", options.out);

    if failures.is_empty() {
        println!(
            "# PASS: flat over {} blocks, 0 uncapped pairs, converged to the fault-free programme",
            app.samples.len()
        );
    } else {
        for failure in &failures {
            eprintln!("# FAIL: {failure}");
        }
        std::process::exit(1);
    }
}
