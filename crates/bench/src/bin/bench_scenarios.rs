//! Scenario-engine benchmark: emits `BENCH_scenarios.json`.
//!
//! Measures the tenants-vs-wall-clock curve of generated scenario fleets
//! (see `docs/SCENARIOS.md`): the block set of `examples/scenario.toml`
//! expanded into 64 → 1,024 generated tenants (1,024,000 aggregate
//! simulated users at the top end), every population aggregated at flow
//! level, riding one shared epoch pipeline. Also gates, exiting non-zero on
//! violation:
//!
//! * **generation budget** — expanding the full 1,024-tenant fleet from
//!   TOML must be effectively free (well under one epoch interval), and
//! * **bit-reproducibility** — two runs of the same generated fleet must
//!   produce identical journals for every tenant.
//!
//! ```console
//! $ cargo run --release -p celestial-bench --bin bench_scenarios            # full curve
//! $ cargo run --release -p celestial-bench --bin bench_scenarios -- --quick # CI smoke
//! ```
//!
//! Flags: `--quick` (smaller fleets, fewer epochs), `--epochs N`,
//! `--out FILE` (default `BENCH_scenarios.json`).

use celestial::config::TestbedConfig;
use celestial::testbed::GuestApplication;
use celestial::Testbed;
use celestial_apps::ScenarioTenant;
use serde_json::{json, Value};
use std::time::Instant;

/// The shipped thousand-tenant scenario, the single source of truth for the
/// block set swept here.
const EXAMPLE: &str = include_str!("../../../../examples/scenario.toml");

struct Options {
    epochs: u32,
    tenant_counts: Vec<u32>,
    repro_tenants: u32,
    out: String,
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = Options {
        epochs: 10,
        tenant_counts: vec![64, 256, 1_024],
        repro_tenants: 16,
        out: "BENCH_scenarios.json".to_owned(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {
                options.epochs = 5;
                options.tenant_counts = vec![16, 64];
                options.repro_tenants = 8;
            }
            "--epochs" => {
                if let Some(v) = iter.next() {
                    options.epochs = v.parse().expect("--epochs takes a number");
                }
            }
            "--out" => {
                if let Some(v) = iter.next() {
                    options.out = v.clone();
                }
            }
            other => eprintln!("ignoring unknown flag {other:?}"),
        }
    }
    options
}

/// The example scenario resized to `tenants` generated tenants and
/// `epochs` one-second epochs.
fn config_for(tenants: u32, epochs: u32) -> TestbedConfig {
    let mut config = TestbedConfig::from_toml(EXAMPLE).expect("examples/scenario.toml parses");
    config.duration_s = f64::from(epochs);
    config
        .scenario
        .as_mut()
        .expect("the example defines [scenario]")
        .tenants = tenants;
    config.validate().expect("resized scenario config stays valid");
    config
}

struct FleetRun {
    wall_ms: f64,
    users: u64,
    events: u64,
    bytes: u64,
    deliveries: u64,
    /// Every tenant's journal, for reproducibility comparison.
    journals: Vec<Vec<String>>,
}

/// Builds the testbed, generates the fleet, and runs it end to end — the
/// wall clock covers all three, which is what a user of the TOML file pays.
fn run_fleet(config: &TestbedConfig) -> FleetRun {
    let started = Instant::now();
    let mut testbed = Testbed::new(config).expect("testbed");
    let mut apps = ScenarioTenant::generate(config).expect("fleet generates");
    let mut refs: Vec<&mut dyn GuestApplication> = apps
        .iter_mut()
        .map(|app| app as &mut dyn GuestApplication)
        .collect();
    testbed.run_fleet(&mut refs).expect("fleet run");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    FleetRun {
        wall_ms,
        users: apps.iter().map(ScenarioTenant::users).sum(),
        events: apps.iter().map(ScenarioTenant::total_events).sum(),
        bytes: apps.iter().map(ScenarioTenant::total_bytes).sum(),
        deliveries: apps.iter().map(ScenarioTenant::deliveries).sum(),
        journals: apps.iter().map(|app| app.journal().to_vec()).collect(),
    }
}

fn main() {
    let options = parse_options();
    println!(
        "# bench_scenarios: {} epochs, fleets of {:?} tenants",
        options.epochs, options.tenant_counts
    );

    // Gate 1: generating the full shipped 1,024-tenant fleet from TOML is
    // effectively free — parse + expansion must fit well inside one epoch
    // interval even in the quick smoke.
    let full = config_for(1_024, options.epochs);
    let started = Instant::now();
    let fleet = ScenarioTenant::generate(&full).expect("full fleet generates");
    let generation_ms = started.elapsed().as_secs_f64() * 1e3;
    let full_users: u64 = fleet.iter().map(ScenarioTenant::users).sum();
    drop(fleet);
    println!(
        "# generated 1024 tenants / {full_users} aggregate users in {generation_ms:.3} ms"
    );
    assert!(
        generation_ms < 1_000.0,
        "generating 1,024 tenants took {generation_ms:.1} ms, over the 1 s epoch interval"
    );
    assert!(full_users >= 1_000_000, "the shipped scenario must aggregate a million users");

    // The tenants-vs-wall curve.
    let mut results: Vec<Value> = Vec::new();
    for &tenants in &options.tenant_counts {
        let config = config_for(tenants, options.epochs);
        let run = run_fleet(&config);
        let ms_per_epoch = run.wall_ms / f64::from(options.epochs);
        println!(
            "{tenants:>5} tenants ({:>9} users): {:10.1} ms wall, {ms_per_epoch:8.2} ms/epoch, \
             {} flow events, {} probes delivered",
            run.users, run.wall_ms, run.events, run.deliveries
        );
        assert!(run.events > 0, "the fleet must account flow events");
        results.push(json!({
            "tenants": tenants,
            "users": run.users,
            "wall_ms": run.wall_ms,
            "ms_per_epoch": ms_per_epoch,
            "ms_per_epoch_per_tenant": ms_per_epoch / f64::from(tenants),
            "flow_events": run.events,
            "flow_bytes": run.bytes,
            "probes_delivered": run.deliveries,
        }));
    }

    // Gate 2: two runs of the same generated fleet observe the same world,
    // journal line for journal line, for every tenant.
    let repro_config = config_for(options.repro_tenants, options.epochs);
    let first = run_fleet(&repro_config);
    let second = run_fleet(&repro_config);
    let reproducible = first.journals == second.journals
        && first.events == second.events
        && first.deliveries == second.deliveries;
    assert!(
        reproducible,
        "two runs of the {}-tenant fleet diverged",
        options.repro_tenants
    );
    println!(
        "# reproducibility: {} tenants x {} epochs bit-identical across two runs",
        options.repro_tenants, options.epochs
    );

    let document = json!({
        "bench": "scenarios",
        "epochs": options.epochs,
        "tenant_counts": options.tenant_counts,
        "generation_ms_1024": generation_ms,
        "users_1024": full_users,
        "results": results,
        "repro_tenants": options.repro_tenants,
        "bit_reproducible": reproducible,
    });
    let body = serde_json::to_string(&document).expect("serializable document");
    std::fs::write(&options.out, &body).expect("write BENCH_scenarios.json");
    println!("# wrote {}", options.out);
}
