//! Mega-constellation benchmark: emits `BENCH_megascale.json` for the perf
//! trajectory.
//!
//! Sweeps +GRID shells from the 1,024-satellite default up to a
//! 16,384-satellite mega-constellation and measures the full epoch compute
//! (batch propagation → scoped path solve → windowed programme walk) on a
//! **single thread**, against the paper's 1 s update interval. A regional
//! bounding box (West Africa, ≈1.8 % of the Earth's surface) keeps the
//! programme realistic: a few hundred active satellites out of thousands.
//!
//! Alongside the timing, every scale re-proves the headline exactness
//! guarantee: the scoped solve's rows are compared bit-for-bit against full
//! (unbounded) Dijkstra rows on every (required, required) pair — the exact
//! set of entries the programme store and the info API read.
//!
//! ```console
//! $ cargo run --release -p celestial-bench --bin bench_megascale            # full sweep
//! $ cargo run --release -p celestial-bench --bin bench_megascale -- --quick # CI smoke
//! ```
//!
//! Flags: `--quick` (small scales, fewer epochs), `--epochs N`,
//! `--budget-ms N` (default 1000), `--out FILE` (default
//! `BENCH_megascale.json`). Exits non-zero if the largest swept scale
//! exceeds the budget or any scoped row differs from the full solve.

use celestial::pipeline::EpochCompute;
use celestial_constellation::{
    BoundingBox, Constellation, GroundStation, PathAlgorithm, PathEngine, ScopeParams, Shell,
    SolveScope,
};
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use serde_json::{json, Value};
use std::time::Instant;

struct Options {
    quick: bool,
    epochs: u32,
    budget_ms: f64,
    out: String,
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = Options {
        quick: false,
        epochs: 5,
        budget_ms: 1000.0,
        out: "BENCH_megascale.json".to_owned(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {
                options.quick = true;
                options.epochs = 3;
            }
            "--epochs" => {
                if let Some(v) = iter.next() {
                    options.epochs = v.parse().expect("--epochs takes a number");
                }
            }
            "--budget-ms" => {
                if let Some(v) = iter.next() {
                    options.budget_ms = v.parse().expect("--budget-ms takes milliseconds");
                }
            }
            "--out" => {
                if let Some(v) = iter.next() {
                    options.out = v.clone();
                }
            }
            other => eprintln!("ignoring unknown flag {other:?}"),
        }
    }
    options
}

fn constellation(planes: u32, per_plane: u32) -> Constellation {
    Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(550.0, 53.0, planes, per_plane)))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation")
}

/// Proves the exactness contract at this scale: scoped-solve rows equal
/// full-solve rows on every (required, required) pair at `t`. Returns the
/// number of compared pairs, panicking on the first mismatch.
fn prove_rows_exact(planes: u32, per_plane: u32, t: f64) -> usize {
    let constellation = constellation(planes, per_plane);
    let state = constellation.state_at(t).expect("state");
    let mut scope = SolveScope::new();
    scope.derive(&state, &constellation.bounding_box(), &ScopeParams::default());
    let required: Vec<u32> =
        (0..state.node_count() as u32).filter(|&i| scope.is_required(i as usize)).collect();

    let mut scoped = PathEngine::with_threads(PathAlgorithm::Dijkstra, 1);
    let mut full = PathEngine::with_threads(PathAlgorithm::Dijkstra, 1);
    let scoped_paths = scoped.solve_scope(state.graph(), &scope);
    let full_paths = full.solve_sources(state.graph(), &required);
    let mut pairs = 0usize;
    for &a in &required {
        for &b in &required {
            if a == b {
                continue;
            }
            let (a, b) = (a as usize, b as usize);
            assert!(
                scoped_paths.is_exact(a, b),
                "required pair ({a}, {b}) not exact in the scoped solve"
            );
            assert_eq!(
                scoped_paths.latency_micros(a, b),
                full_paths.latency_micros(a, b),
                "scoped row differs from the full solve on pair ({a}, {b})"
            );
            pairs += 1;
        }
    }
    pairs
}

fn main() {
    let options = parse_options();
    // (planes, satellites-per-plane): the full sweep runs from the
    // 1,024-satellite default over a 72×22 Starlink-class shell to a
    // 16,384-satellite mega-constellation; --quick keeps CI at the two
    // smallest scales.
    let scales: Vec<(u32, u32)> = if options.quick {
        vec![(8, 8), (12, 16)]
    } else {
        vec![(32, 32), (72, 22), (64, 64), (128, 128)]
    };

    println!(
        "# bench_megascale: {} scales, {} measured epochs each, single-threaded, budget {} ms",
        scales.len(),
        options.epochs,
        options.budget_ms
    );

    let mut results: Vec<Value> = Vec::new();
    let mut over_budget = false;
    for &(planes, per_plane) in &scales {
        let satellites = planes * per_plane;
        // The exactness proof first: one timestep inside the sweep window.
        let exact_pairs = prove_rows_exact(planes, per_plane, 1.0);

        // Single-threaded epoch loop: epoch 0 pays one-off allocation and
        // the cold full landmark rows, so it warms up unmeasured; epochs
        // 1..=N are the steady state the 1 s interval has to absorb.
        let mut compute = EpochCompute::with_threads(constellation(planes, per_plane), 1);
        compute.compute(0.0).expect("warm-up epoch");
        let mut epoch_ms: Vec<f64> = Vec::with_capacity(options.epochs as usize);
        for epoch in 1..=options.epochs {
            let started = Instant::now();
            compute.compute(f64::from(epoch)).expect("epoch");
            epoch_ms.push(started.elapsed().as_secs_f64() * 1e3);
        }
        let max_ms = epoch_ms.iter().cloned().fold(0.0f64, f64::max);
        let mean_ms = epoch_ms.iter().sum::<f64>() / f64::from(options.epochs);
        let report = compute.scope_report();
        println!(
            "#   epochs: [{}] ms",
            epoch_ms.iter().map(|ms| format!("{ms:.1}")).collect::<Vec<_>>().join(", ")
        );
        let within = max_ms < options.budget_ms;
        over_budget |= !within;
        println!(
            "+GRID {planes:>3}x{per_plane:<3} {satellites:>6} sats  \
             mean {mean_ms:>8.2} ms  max {max_ms:>8.2} ms  \
             scope {:>4}/{:<6} sources  settled {:>9}  rows_exact on {exact_pairs} pairs  {}",
            report.sources,
            satellites + 2,
            report.settled,
            if within { "OK" } else { "OVER BUDGET" }
        );
        results.push(json!({
            "planes": planes,
            "satellites_per_plane": per_plane,
            "satellites": satellites,
            "nodes": satellites + 2,
            "epochs": options.epochs,
            "mean_epoch_ms": mean_ms,
            "max_epoch_ms": max_ms,
            "budget_ms": options.budget_ms,
            "within_budget": within,
            "scope_sources": report.sources,
            "scope_required": report.required,
            "scope_satellites": report.scope_satellites,
            "active_satellites": report.active_satellites,
            "settled": report.settled,
            "rows_exact": true,
            "exact_pairs": exact_pairs,
            "epoch_ms": epoch_ms,
        }));
    }

    let document = json!({
        "bench": "megascale",
        "quick": options.quick,
        "threads": 1,
        "budget_ms": options.budget_ms,
        "bounding_box": "west_africa",
        "results": results,
    });
    let body = serde_json::to_string(&document).expect("serializable document");
    std::fs::write(&options.out, &body).expect("write BENCH_megascale.json");
    println!("# wrote {}", options.out);

    assert!(
        !over_budget,
        "an epoch exceeded the {} ms budget (see {})",
        options.budget_ms, options.out
    );
}
