//! Multi-tenant fan-out benchmark: emits `BENCH_tenants.json`.
//!
//! Measures the per-tenant cost of one epoch pipeline serving N tenants
//! (see `docs/TENANTS.md`). The pipeline computes the shared epoch core —
//! orbital propagation, snapshot diff, shortest-path solve — exactly once
//! per update regardless of the tenant count; only the per-tenant programme
//! deltas fan out. The headline metric is the **amortization ratio**: the
//! per-tenant ms/epoch of a 16-tenant fleet divided by a solo run. CI
//! asserts it stays ≤ 0.5 (in practice the shared core dominates and the
//! ratio is far lower).
//!
//! ```console
//! $ cargo run --release -p celestial-bench --bin bench_tenants            # default
//! $ cargo run --release -p celestial-bench --bin bench_tenants -- --quick # CI smoke
//! ```
//!
//! Flags: `--quick` (small graph, fewer epochs), `--planes N`,
//! `--satellites-per-plane N`, `--epochs N`, `--interval-s S`,
//! `--out FILE` (default `BENCH_tenants.json`).

use celestial::pipeline::{EpochCompute, EpochPipeline, PipelineMode};
use celestial_constellation::{BoundingBox, Constellation, GroundStation, Shell};
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;
use celestial_types::time::SimDuration;
use serde_json::{json, Value};
use std::time::Instant;

/// The tenant counts on the cost-per-tenant curve.
const TENANT_COUNTS: [usize; 3] = [1, 4, 16];

struct Options {
    planes: u32,
    per_plane: u32,
    epochs: u32,
    interval_s: f64,
    out: String,
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The default mirrors bench_epoch: a 1024-satellite +GRID at the
    // steady-state one-second update cadence.
    let mut options = Options {
        planes: 32,
        per_plane: 32,
        epochs: 20,
        interval_s: 1.0,
        out: "BENCH_tenants.json".to_owned(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {
                options.planes = 12;
                options.per_plane = 16;
                options.epochs = 10;
            }
            "--planes" => {
                if let Some(v) = iter.next() {
                    options.planes = v.parse().expect("--planes takes a number");
                }
            }
            "--satellites-per-plane" => {
                if let Some(v) = iter.next() {
                    options.per_plane = v.parse().expect("--satellites-per-plane takes a number");
                }
            }
            "--epochs" => {
                if let Some(v) = iter.next() {
                    options.epochs = v.parse().expect("--epochs takes a number");
                }
            }
            "--interval-s" => {
                if let Some(v) = iter.next() {
                    options.interval_s = v.parse().expect("--interval-s takes seconds");
                }
            }
            "--out" => {
                if let Some(v) = iter.next() {
                    options.out = v.clone();
                }
            }
            other => eprintln!("ignoring unknown flag {other:?}"),
        }
    }
    options
}

fn constellation(options: &Options) -> Constellation {
    Constellation::builder()
        .shell(Shell::from_walker(WalkerShell::new(
            550.0,
            53.0,
            options.planes,
            options.per_plane,
        )))
        .ground_station(GroundStation::new("accra", Geodetic::new(5.6037, -0.187, 0.0)))
        .ground_station(GroundStation::new("abuja", Geodetic::new(9.0765, 7.3986, 0.0)))
        .bounding_box(BoundingBox::west_africa())
        .build()
        .expect("valid constellation")
}

/// Runs `epochs` steady-state boundaries of a synchronous pipeline fanning
/// out to `tenants` tenants and returns the steady total wall ms. Epoch 0
/// (the one-off allocation + full solve) is warmed up outside the window.
fn run_fanout(options: &Options, tenants: usize) -> f64 {
    let mut compute = EpochCompute::new(constellation(options));
    compute.set_tenant_count(tenants);
    let interval = SimDuration::from_secs_f64(options.interval_s);
    let mut pipeline = EpochPipeline::new(compute, PipelineMode::Synchronous, interval);

    // Warm up: the first epoch pays buffer allocation and the full
    // (non-incremental) programme; steady state starts at epoch 1.
    let bundle = pipeline.advance(0.0).expect("warm-up epoch");
    assert_eq!(bundle.tenant_count(), tenants);
    pipeline.recycle(bundle);

    let started = Instant::now();
    for epoch in 1..=options.epochs {
        let t = f64::from(epoch) * options.interval_s;
        let bundle = pipeline.advance(t).expect("epoch computation");
        pipeline.recycle(bundle);
    }
    started.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let options = parse_options();
    let nodes = constellation(&options).node_count();
    println!(
        "# bench_tenants: {nodes} nodes (+GRID {}x{}), {} steady epochs at {} s",
        options.planes, options.per_plane, options.epochs, options.interval_s
    );

    let mut results: Vec<Value> = Vec::new();
    let mut per_tenant_ms = Vec::new();
    for &tenants in &TENANT_COUNTS {
        let total_ms = run_fanout(&options, tenants);
        let ms_per_epoch = total_ms / f64::from(options.epochs);
        let per_tenant = ms_per_epoch / tenants as f64;
        per_tenant_ms.push(per_tenant);
        println!(
            "{tenants:>3} tenants: {ms_per_epoch:8.3} ms/epoch, {per_tenant:8.3} ms/epoch/tenant"
        );
        results.push(json!({
            "tenants": tenants,
            "ms_per_epoch": ms_per_epoch,
            "ms_per_epoch_per_tenant": per_tenant,
            "total_ms": total_ms,
        }));
    }

    // The amortization the fan-out buys: the shared epoch core (propagation,
    // diff, path solve) is computed once however many tenants ride on it, so
    // per-tenant cost collapses as the fleet grows.
    let amortization = per_tenant_ms[per_tenant_ms.len() - 1] / per_tenant_ms[0].max(1e-9);
    println!(
        "# 16-tenant per-tenant cost is {amortization:.3}x solo (CI gates \u{2264} 0.5x)"
    );

    let document = json!({
        "bench": "tenants",
        "nodes": nodes,
        "planes": options.planes,
        "satellites_per_plane": options.per_plane,
        "epochs": options.epochs,
        "interval_s": options.interval_s,
        "tenant_counts": TENANT_COUNTS.to_vec(),
        "results": results,
        "amortization_16_vs_1": amortization,
    });
    let body = serde_json::to_string(&document).expect("serializable document");
    std::fs::write(&options.out, &body).expect("write BENCH_tenants.json");
    println!("# wrote {}", options.out);
}
