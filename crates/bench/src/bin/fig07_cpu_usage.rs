//! Figure 7: CPU usage on the most loaded Celestial host over one experiment.
//!
//! Runs the §4 satellite-bridge experiment and prints the CPU utilisation and
//! Firecracker process count of the host carrying the most machines, sampled
//! once per second of simulated time.

use celestial::testbed::Testbed;
use celestial_apps::meetup::{BridgeDeployment, MeetupConfig, MeetupExperiment};
use celestial_bench::{csv, meetup_testbed_config, FigureOptions};

fn main() {
    let options = FigureOptions::from_args();
    let config = meetup_testbed_config(&options);
    let mut testbed = Testbed::new(&config).expect("testbed");
    let mut app = MeetupExperiment::new(MeetupConfig::new(BridgeDeployment::Satellite));
    testbed.run(&mut app).expect("experiment run");

    // The host under the highest load (most Firecracker processes).
    let busiest = (0..testbed.managers().len())
        .max_by_key(|i| testbed.managers()[*i].host().machine_count())
        .expect("at least one host");
    let cpu = &testbed.host_cpu_series()[busiest];
    let processes = &testbed.host_process_series()[busiest];

    println!("# Figure 7: CPU usage on host {busiest} (32 cores) over the experiment");
    let cpu_stats = celestial_sim::metrics::summarize(&cpu.values());
    let early_peak = cpu
        .points()
        .iter()
        .filter(|(t, _)| *t <= 10.0)
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max);
    let steady: Vec<f64> = cpu
        .points()
        .iter()
        .filter(|(t, _)| *t > 30.0)
        .map(|(_, v)| *v)
        .collect();
    let steady_mean = celestial_sim::metrics::summarize(&steady).mean;
    println!("samples,{}", cpu_stats.count);
    println!("boot_phase_peak_cpu_percent,{early_peak:.2}");
    println!("steady_state_mean_cpu_percent,{steady_mean:.2}");
    println!("max_firecracker_processes,{:.0}", processes.values().iter().fold(0.0f64, |a, b| a.max(*b)));
    println!("# expectation: a boot spike at the start, then total CPU usage on the order of 10% despite over-provisioning");

    options.write_artifact("fig07_cpu.csv", &csv(cpu.points(), "t_s", "cpu_percent"));
    options.write_artifact(
        "fig07_processes.csv",
        &csv(processes.points(), "t_s", "firecracker_processes"),
    );
}
