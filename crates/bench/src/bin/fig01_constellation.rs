//! Figure 1: overview of the planned phase-I Starlink constellation.
//!
//! Builds all five shells (1584, 1600, 400, 375 and 450 satellites), computes
//! the constellation state at the epoch and renders the equirectangular map
//! with ISLs and the ground-to-satellite links of one ground station, as the
//! paper's animation component does.

use celestial_bench::FigureOptions;
use celestial_constellation::animation::{render_summary, render_svg, RenderOptions};
use celestial_constellation::{Constellation, GroundStation, Shell};
use celestial_sgp4::WalkerShell;
use celestial_types::geo::Geodetic;

fn main() {
    let options = FigureOptions::from_args();
    let shells: Vec<Shell> = WalkerShell::starlink_phase1()
        .into_iter()
        .take(if options.quick { 1 } else { 5 })
        .map(Shell::from_walker)
        .collect();
    let constellation = Constellation::builder()
        .shells(shells.clone())
        .ground_station(GroundStation::new("berlin", Geodetic::new(52.52, 13.405, 0.0)))
        .build()
        .expect("valid constellation");

    let state = constellation.state_at(0.0).expect("constellation state");
    println!("# Figure 1: Starlink phase I constellation overview");
    println!("{}", render_summary(&state));
    println!("shell,altitude_km,inclination_deg,planes,satellites_per_plane,satellites");
    for (i, shell) in shells.iter().enumerate() {
        println!(
            "{i},{},{},{},{},{}",
            shell.walker.altitude_km,
            shell.walker.inclination_deg,
            shell.walker.planes,
            shell.walker.satellites_per_plane,
            shell.satellite_count()
        );
    }
    let total: u32 = shells.iter().map(Shell::satellite_count).sum();
    println!("total,{total}");

    let svg = render_svg(&state, &RenderOptions::default());
    options.write_artifact("fig01_constellation.svg", &svg);
}
