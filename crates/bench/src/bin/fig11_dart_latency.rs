//! Figure 11: mean observed end-to-end latency of the DART alert system for
//! the central-processing and satellite-server deployments.
//!
//! Runs the §5 case study twice and prints, per data sink, its position and
//! mean alert latency, together with the aggregate comparison the paper
//! reports (central: 22–183 ms; satellite: 13–90 ms; the east–west asymmetry
//! caused by the Iridium seam disappears with on-satellite processing).

use celestial::testbed::Testbed;
use celestial_apps::dart::DartExperiment;
use celestial_apps::DartDeployment;
use celestial_bench::{dart_app_config, dart_testbed_config, FigureOptions};

fn run(deployment: DartDeployment, options: &FigureOptions) -> DartExperiment {
    let app_config = dart_app_config(options, deployment);
    let config = dart_testbed_config(options, &app_config);
    let mut testbed = Testbed::new(&config).expect("testbed");
    let mut app = DartExperiment::new(app_config);
    testbed.run(&mut app).expect("experiment run");
    app
}

fn main() {
    let options = FigureOptions::from_args();
    println!("# Figure 11: mean end-to-end latency per data sink, central vs satellite deployment");

    for (label, deployment) in [
        ("central", DartDeployment::Central),
        ("satellite", DartDeployment::Satellite),
    ] {
        let app = run(deployment, &options);
        let results = app.sink_results();
        let all = app.all_latencies_ms();
        let stats = celestial_sim::metrics::summarize(&all);
        let sink_means: Vec<f64> = results.iter().map(|r| r.mean_latency_ms).collect();
        let per_sink = celestial_sim::metrics::summarize(&sink_means);
        println!(
            "{label},sinks_with_alerts={},alerts={},mean_ms={:.1},sink_mean_min_ms={:.1},sink_mean_max_ms={:.1},inferences={}",
            results.len(),
            stats.count,
            stats.mean,
            per_sink.min,
            per_sink.max,
            app.inference_count()
        );
        let mut csv = String::from("sink,lat_deg,lon_deg,mean_latency_ms,alerts\n");
        for r in &results {
            csv.push_str(&format!(
                "{},{:.4},{:.4},{:.2},{}\n",
                r.name,
                r.position.latitude_deg(),
                r.position.longitude_deg(),
                r.mean_latency_ms,
                r.alerts
            ));
        }
        options.write_artifact(&format!("fig11_{label}.csv"), &csv);
    }
    println!("# expectation: the satellite deployment shifts the whole latency band downwards (paper: 22-183 ms -> 13-90 ms)");
}
