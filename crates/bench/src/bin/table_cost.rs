//! The §4.2 cost comparison: running a Celestial emulation on a handful of
//! cloud hosts vs. renting one cloud VM per satellite server.

use celestial::estimator::{CostModel, ResourceEstimator};
use celestial_bench::{meetup_testbed_config, FigureOptions};

fn main() {
    let options = FigureOptions::from_args();
    let config = meetup_testbed_config(&options);
    let estimate = ResourceEstimator::estimate(&config);
    let satellites: u32 = config.shells.iter().map(|s| s.satellite_count()).sum();
    let model = CostModel::default();

    println!("# Cost comparison (§4.2)");
    println!("estimated_required_vcpus,{:.0}", estimate.required_vcpus);
    println!("expected_active_satellites,{:.0}", estimate.expected_active_satellites);
    println!("recommended_hosts,{}", estimate.recommended_hosts);
    println!(
        "fleet_sufficient_with_overprovisioning,{}",
        ResourceEstimator::fleet_sufficient(&config, &estimate, 1.5)
    );

    // The paper: three hosts plus a coordinator; a 10-minute experiment with
    // 5 minutes of setup, repeated three times → 45 minutes of fleet time.
    let emulation_minutes = if options.quick { 15.0 } else { 45.0 };
    let emulation = model.emulation_cost_usd(config.hosts.len() as u32, emulation_minutes);
    // The naive alternative: one VM per satellite of the full phase-I
    // constellation for 15 minutes.
    let naive_satellites = 4_409u32;
    let naive = model.per_satellite_cost_usd(naive_satellites, 15.0);
    println!("emulation_hosts,{}", config.hosts.len());
    println!("emulation_minutes,{emulation_minutes}");
    println!("emulation_cost_usd,{emulation:.2}");
    println!("per_satellite_vms,{naive_satellites}");
    println!("per_satellite_cost_usd_15min,{naive:.2}");
    println!(
        "saving_factor,{:.0}x",
        naive / model.emulation_cost_usd(config.hosts.len() as u32, 15.0)
    );
    println!("configured_constellation_satellites,{satellites}");
    println!("# expectation: ~$3.30 for the emulation vs ~$540 for one VM per satellite (two orders of magnitude)");
}
